#!/usr/bin/env python
"""A Usenet-news-style flash crowd on a remote region.

The paper motivates demand-driven replication with news-like systems
(§1 cites Usenet). This scenario has a twist the §3 static algorithm
cannot handle: the flash crowd forms at a *peninsula* — a cluster of
replicas reachable only through a short chain off the core — and it
forms *after* the demand tables were first learned.

Topology: a 40-node Internet-like core, a 4-hop access chain, and a
5-replica site at its end. At t=2 the site's demand surges 30x (the
crowd); stories keep breaking at random core replicas every session.

We compare, per story, how many sessions it takes until the crowd site
can serve it (mean and worst replica of the site), under:

* static tables (§3) — beliefs frozen at t=0, before the crowd existed;
* the dynamic algorithm (§4) — periodic demand advertisements.

Both variants run fast consistency with push fanout 3: the chain's last
replica *can* flood the site the moment it gets a story — but only the
dynamic variant knows the site is worth flooding.

Run:  python examples/news_flash_crowd.py
"""

from repro import ReplicationSystem, dynamic_fast_consistency, static_table_consistency
from repro.core.metrics import reach_time
from repro.demand import FlashCrowdDemand, UniformRandomDemand
from repro.sim.rng import derive_seed
from repro.topology import internet_like

SEED = 21
CORE_N = 40
CHAIN_HOPS = 4
SITE_SIZE = 5
CROWD_START, CROWD_END, CROWD_FACTOR = 2.0, 14.0, 30.0
STORY_TIMES = [2.0 + i for i in range(8)]
PUSH_FANOUT = 3


def build_topology():
    """Core + access chain + crowd site; returns (topology, site nodes)."""
    topo = internet_like(CORE_N, seed=SEED)
    attach = CORE_N - 1  # any core node; the chain makes it remote anyway
    previous = attach
    next_id = CORE_N
    for _ in range(CHAIN_HOPS):
        topo.add_node(next_id, (1000.0 + next_id, 0.0))
        topo.add_edge(previous, next_id)
        previous = next_id
        next_id += 1
    site = []
    for _ in range(SITE_SIZE):
        topo.add_node(next_id, (1000.0 + next_id, 10.0))
        topo.add_edge(previous, next_id)
        site.append(next_id)
        next_id += 1
    return topo, site


def run(label, config):
    topology, site = build_topology()
    base = UniformRandomDemand(1.0, 10.0, seed=SEED)
    demand = FlashCrowdDemand(
        base, hot_nodes=site, start=CROWD_START, end=CROWD_END, factor=CROWD_FACTOR
    )
    system = ReplicationSystem(
        topology=topology, demand=demand, config=config, seed=SEED
    )
    system.start()

    stories = []
    for index, at in enumerate(STORY_TIMES):
        origin = derive_seed(SEED, f"story/{index}") % CORE_N
        system.run_until(at)
        stories.append((at, system.inject_write(origin, key=f"story{index}")))
    system.run_until(40.0)

    site_means, site_maxes = [], []
    for written_at, story in stories:
        times = system.apply_times(story.uid)
        deltas = [times[n] - written_at for n in site if n in times]
        site_means.append(sum(deltas) / len(deltas))
        site_maxes.append(max(deltas))
    mean_delay = sum(site_means) / len(site_means)
    worst_delay = sum(site_maxes) / len(site_maxes)
    print(f"\n{label}")
    print("  per-story mean sessions until the site had it: "
          + ", ".join(f"{d:.1f}" for d in site_means))
    print(f"  site mean: {mean_delay:.2f} sessions   "
          f"site worst replica: {worst_delay:.2f} sessions")
    return mean_delay


def main() -> None:
    print(
        f"{CORE_N}-node core + {CHAIN_HOPS}-hop chain + {SITE_SIZE}-replica site;\n"
        f"site demand surges {CROWD_FACTOR:.0f}x at t={CROWD_START:.0f}; "
        f"{len(STORY_TIMES)} stories break at random core replicas."
    )
    static_mean = run(
        "static tables (§3 — beliefs frozen before the crowd)",
        static_table_consistency(fast_fanout=PUSH_FANOUT),
    )
    dynamic_mean = run(
        "dynamic algorithm (§4 — advertised demand)",
        dynamic_fast_consistency(advert_period=0.5, fast_fanout=PUSH_FANOUT),
    )
    extra = demand_gain(static_mean, dynamic_mean)
    print(
        f"\nthe dynamic algorithm delivers stories to the crowd "
        f"{static_mean - dynamic_mean:.2f} sessions sooner on average"
        f" ({extra:.0f} extra crowd requests served fresh per story at "
        f"{CROWD_FACTOR * 5:.0f} req/session)."
    )


def demand_gain(static_mean: float, dynamic_mean: float) -> float:
    site_rate = CROWD_FACTOR * 5.0  # ~5 req/session base per site replica
    return max(0.0, static_mean - dynamic_mean) * site_rate


if __name__ == "__main__":
    main()
