#!/usr/bin/env python
"""A two-tier CDN: fast consistency across autonomous systems.

Real content networks are hierarchical: points of presence inside
provider networks (ASes) connected by a sparse inter-AS core. This
example builds a BRITE-style top-down topology (4 ASes x 12 routers),
gives one AS a Zipf-hot audience, and shows how fast consistency drives
fresh content into the hot AS ahead of the others — per-AS consistency
times make the demand-directed propagation visible at the tier level.

Run:  python examples/cdn_hierarchy.py
"""

from repro import ReplicationSystem, fast_consistency, weak_consistency
from repro.demand import ExplicitDemand
from repro.topology import HierarchicalConfig, as_members, hierarchical

SEED = 17
RUNS = 3
CONFIG = HierarchicalConfig(autonomous_systems=4, routers_per_as=12)
HOT_AS = 2  # this provider's audience is 20x hotter


def build_demand():
    table = {}
    for as_index in range(CONFIG.autonomous_systems):
        for rank, node in enumerate(as_members(as_index, CONFIG)):
            base = 100.0 / (rank + 1)  # Zipf within the AS
            table[node] = base * (20.0 if as_index == HOT_AS else 1.0)
    return ExplicitDemand(table)


def main() -> None:
    topology = hierarchical(CONFIG, seed=SEED)
    demand = build_demand()
    origin = as_members(0, CONFIG)[0]  # content published in AS 0
    print(
        f"topology: {CONFIG.autonomous_systems} ASes x "
        f"{CONFIG.routers_per_as} routers ({topology.num_nodes} replicas, "
        f"{topology.num_edges} links); AS {HOT_AS} is 20x hotter; "
        f"content published in AS 0\n"
    )
    header = ["variant"] + [
        f"AS {i}{' (hot)' if i == HOT_AS else ''}"
        for i in range(CONFIG.autonomous_systems)
    ]
    print("  ".join(f"{h:>12s}" for h in header))
    for name, config in (
        ("weak", weak_consistency()),
        ("fast", fast_consistency()),
    ):
        per_as = [0.0] * CONFIG.autonomous_systems
        for run in range(RUNS):
            system = ReplicationSystem(
                topology=topology, demand=demand, config=config, seed=SEED + run
            )
            system.start()
            update = system.inject_write(origin, key="asset", value="v2")
            system.run_until_replicated(update.uid, max_time=120.0)
            times = system.apply_times(update.uid)
            for as_index in range(CONFIG.autonomous_systems):
                members = as_members(as_index, CONFIG)
                per_as[as_index] += sum(times[m] for m in members) / len(members)
        cells = [f"{name:>12s}"]
        cells.extend(f"{total / RUNS:>12.2f}" for total in per_as)
        print("  ".join(cells))
    print(
        "\n(mean sessions per AS until a router serves the new asset, "
        f"over {RUNS} runs;\nunder fast consistency the hot AS is served "
        "ahead of the equally-distant\ncold ASes — demand steers "
        "propagation across the AS tier too)"
    )


if __name__ == "__main__":
    main()
