#!/usr/bin/env python
"""Watch an update flow downhill into demand valleys (Figs. 1-2).

Renders the demand landscape of a 10x10 grid, then injects a write at a
low-demand hill corner and snapshots which replicas are consistent at
increasing times, bucketed by demand band. High-demand replicas light
up first — the "relativistic" attraction of §1 made visible.

Run:  python examples/demand_surface.py
"""

from repro import ReplicationSystem, fast_consistency
from repro.demand import SurfaceDemand, Valley
from repro.topology import grid
from repro.viz.surface import render_surface, render_topology_demand

ROWS = COLS = 10
SEED = 11
CHECKPOINTS = (0.25, 1.0, 2.0, 4.0, 8.0)


def demand_band(value: float) -> str:
    if value >= 50.0:
        return "valley (>=50 req/s)"
    if value >= 10.0:
        return "slope  (10-50)"
    return "hill   (<10)"


def main() -> None:
    topology = grid(ROWS, COLS)
    field = SurfaceDemand.from_topology(
        topology,
        valleys=[Valley(center=(7.0, 7.0), peak=120.0, radius=2.2)],
        base=1.0,
    )
    print("demand landscape:")
    print(render_surface(field, width=40, height=14))
    print("\nreplica demand on the grid:")
    print(render_topology_demand(topology, field.snapshot(topology.nodes), 40, 14))

    system = ReplicationSystem(
        topology=topology, demand=field, config=fast_consistency(), seed=SEED
    )
    system.start()
    update = system.inject_write(0)  # corner (0, 0): a hill replica
    snapshot = field.snapshot(topology.nodes)
    bands = {}
    for node, value in snapshot.items():
        bands.setdefault(demand_band(value), []).append(node)

    print(f"\nwrite injected at replica 0 (demand {snapshot[0]:.1f}, a hill)")
    print(f"{'time':>6s}  " + "  ".join(f"{band:>20s}" for band in sorted(bands)))
    for checkpoint in CHECKPOINTS:
        system.run_until(checkpoint)
        reached = system.nodes_with(update.uid)
        cells = []
        for band in sorted(bands):
            members = bands[band]
            have = sum(1 for n in members if n in reached)
            cells.append(f"{have:3d}/{len(members):<3d} consistent")
        print(f"{checkpoint:>5.2f}s  " + "  ".join(f"{c:>20s}" for c in cells))
    print(
        "\nthe valley fills up first even though the write started on a "
        "hill:\nupdates are attracted to demand, like mass curving space (§1)."
    )


if __name__ == "__main__":
    main()
