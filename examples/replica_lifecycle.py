#!/usr/bin/env python
"""Replica lifecycle: log truncation and growing the replica set.

Two production concerns the paper's related-work section (§7, Bayou's
policy families) raises around any anti-entropy system:

1. **Write-log truncation** — logs cannot grow forever. This example
   runs Golding ack-vector truncation: acknowledgement tables gossip
   with the sessions and a write is purged once every replica is known
   to have it. A crashed replica stalls purging (safety), and purging
   resumes after it recovers.
2. **Creating new replicas** — a joining replica picks a *donor* to
   bootstrap from ("how complete their write-logs are", "band width of
   connections"); the bootstrap is a real anti-entropy session.

Run:  python examples/replica_lifecycle.py
"""

from repro import ReplicationSystem, weak_consistency
from repro.demand import ConstantDemand
from repro.replica.creation import MostCompleteLog, NearestDonor
from repro.topology import ring


def log_sizes(system) -> str:
    return " ".join(f"{n}:{len(s.log)}" for n, s in sorted(system.servers.items()))


def main() -> None:
    system = ReplicationSystem(
        topology=ring(6),
        demand=ConstantDemand(5.0),
        config=weak_consistency(log_truncation="acked"),
        seed=13,
    )
    system.start()

    print("== ack-vector log truncation ==")
    for i in range(4):
        system.inject_write(i, key=f"article-{i}")
    system.run_until(6.0)
    print(f"t={system.sim.now:4.1f}  log sizes after propagation: {log_sizes(system)}")
    system.run_until(30.0)
    purged = sum(n.ack_manager.total_purged for n in system.nodes.values())
    print(f"t={system.sim.now:4.1f}  after ack gossip: {log_sizes(system)} "
          f"({purged} entries purged; stores still hold all 4 articles)")

    print("\n== a crashed replica blocks purging ==")
    system.network.set_node_down(3)
    for i in range(4, 7):
        system.inject_write(i % 3, key=f"article-{i}")
    system.run_until(55.0)
    print(f"t={system.sim.now:4.1f}  node 3 down, 3 new writes: {log_sizes(system)} "
          "(new entries stuck — node 3 never acknowledged)")
    system.network.set_node_up(3)
    system.run_until(90.0)
    print(f"t={system.sim.now:4.1f}  node 3 recovered:          {log_sizes(system)}")

    print("\n== growing the replica set ==")
    grower = ReplicationSystem(
        topology=ring(6),
        demand=ConstantDemand(5.0),
        config=weak_consistency(),
        seed=14,
    )
    grower.start()
    update = grower.inject_write(0, key="catalog")
    grower.run_until_replicated(update.uid, max_time=40.0)
    # Give node 2 extra history so donor completeness differs.
    for i in range(3):
        grower.servers[2].local_write(f"local-{i}", i)
    donor_a = grower.add_replica(100, attach_to=[2, 4], donor_policy=MostCompleteLog())
    donor_b = grower.add_replica(101, attach_to=[2, 4], donor_policy=NearestDonor())
    grower.run_until(grower.sim.now + 5.0)
    print(f"replica 100 chose donor {donor_a} (most complete log)")
    print(f"replica 101 chose donor {donor_b} (nearest)")
    for new in (100, 101):
        server = grower.servers[new]
        print(
            f"replica {new}: bootstrapped {len(server.log)} writes, "
            f"catalog={server.store.value('catalog')!r}"
        )
    update2 = grower.inject_write(100, key="from-newcomer")
    done = grower.run_until_replicated(update2.uid, max_time=60.0)
    print(f"a write at the newcomer replicated to all "
          f"{grower.topology.num_nodes} replicas in {done:.2f} sessions")


if __name__ == "__main__":
    main()
