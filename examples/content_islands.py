#!/usr/bin/env python
"""§6 extension: demand islands bridged through elected leaders.

Two high-demand valleys sit on opposite corners of a 12x12 grid,
separated by a low-demand ridge. Fast consistency floods each valley
quickly but crosses the ridge only at anti-entropy speed; the island
overlay (detect islands -> elect leaders -> bridge leaders) fixes that.

The script renders the demand landscape (Fig. 1 style), lists the
detected islands, and compares propagation with and without bridges.

Run:  python examples/content_islands.py
"""

from repro import ReplicationSystem, bridge_system, fast_consistency
from repro.core.islands import detect_islands, elect_leaders
from repro.demand import two_valley_field
from repro.topology import grid
from repro.viz.surface import render_surface

ROWS = COLS = 12
SEED = 5


def main() -> None:
    topology = grid(ROWS, COLS)
    demand = two_valley_field(topology, plane_size=float(ROWS - 1), peak=120.0)
    print("demand landscape (Fig. 1 style — dense glyphs = valleys):\n")
    print(render_surface(demand, width=48, height=16))

    snapshot = demand.snapshot(topology.nodes)
    islands = elect_leaders(
        detect_islands(topology, snapshot, percentile=80.0, min_size=2), snapshot
    )
    print(f"\ndetected {len(islands)} islands:")
    for island in islands:
        print(
            f"  island {island.index}: {len(island.members)} replicas, "
            f"leader {island.leader} "
            f"(demand {snapshot[island.leader]:.1f}), "
            f"total demand {island.total_demand:.0f}"
        )

    origin = islands[0].leader
    far = islands[1]
    print(f"\nwrite injected at island 0's leader (replica {origin});")
    print(f"watching island 1 ({len(far.members)} replicas around {far.leader}):")
    for label, bridged in (("fast consistency", False), ("      + bridges", True)):
        system = ReplicationSystem(
            topology=topology, demand=demand, config=fast_consistency(), seed=SEED
        )
        if bridged:
            bridge_system(system, percentile=80.0, min_size=2)
        system.start()
        update = system.inject_write(origin)
        system.run_until_replicated(update.uid, max_time=120.0)
        times = system.apply_times(update.uid)
        leader_t = times[far.leader]
        member_mean = sum(times[m] for m in far.members) / len(far.members)
        print(
            f"  {label}: far leader consistent at {leader_t:5.2f} sessions, "
            f"island mean {member_mean:5.2f}"
        )
    print(
        "\nthe bridge carries the update leader-to-leader at link speed, "
        "so the far\nvalley no longer waits for the low-demand ridge — "
        "exactly §6's goal."
    )


if __name__ == "__main__":
    main()
