#!/usr/bin/env python
"""Internet-scale behaviour: power laws and the diameter effect (§5).

1. Generates BRITE-style topologies and verifies they satisfy the
   Faloutsos power laws the paper requires of its simulation setup.
2. Sweeps the network size and shows that sessions-to-consistency
   track the *diameter*, not the node count — the paper's argument for
   why the scheme scales to "the whole Internet with a huge number of
   hosts but a diameter in the order of 20".

Run:  python examples/internet_scale.py
"""

from repro import ReplicationSystem, fast_consistency, weak_consistency
from repro.demand import UniformRandomDemand
from repro.sim.rng import derive_seed
from repro.topology import diameter, internet_like, rank_exponent, verify_internet_like

SIZES = (25, 50, 100, 200)
REPS = 8
SEED = 3


def check_power_laws() -> None:
    topo = internet_like(200, seed=SEED)
    fits = verify_internet_like(topo, min_correlation=0.8)
    print(f"power laws on {topo} (|r| = goodness of fit):")
    for law, fit in fits.items():
        print(
            f"  {law:9s} exponent {fit.exponent:+.3f}   |r| {abs(fit.correlation):.3f}"
        )


def mean_sessions(n: int, config) -> tuple:
    total, total_diameter = 0.0, 0
    for rep in range(REPS):
        topo = internet_like(n, seed=derive_seed(SEED, f"t/{n}/{rep}"))
        system = ReplicationSystem(
            topology=topo,
            demand=UniformRandomDemand(seed=derive_seed(SEED, f"d/{n}/{rep}")),
            config=config,
            seed=derive_seed(SEED, f"s/{n}/{rep}"),
        )
        system.start()
        update = system.inject_write(0)
        done = system.run_until_replicated(update.uid, max_time=120.0)
        total += done if done is not None else 120.0
        total_diameter += diameter(topo)
    return total / REPS, total_diameter / REPS


def main() -> None:
    check_power_laws()
    print(f"\nsize sweep ({REPS} repetitions each):")
    print(f"{'nodes':>6s} {'diameter':>9s} {'weak':>7s} {'fast':>7s}")
    for n in SIZES:
        weak_mean, dia = mean_sessions(n, weak_consistency())
        fast_mean, _ = mean_sessions(n, fast_consistency())
        print(f"{n:>6d} {dia:>9.2f} {weak_mean:>7.2f} {fast_mean:>7.2f}")
    print(
        "\nnodes grow 8x but sessions barely move — they follow the "
        "diameter,\nwhich is why the paper argues this scales to the "
        "whole Internet."
    )


if __name__ == "__main__":
    main()
