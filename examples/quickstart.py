#!/usr/bin/env python
"""Quickstart: weak consistency vs fast consistency in ~30 lines.

Builds an Internet-like 50-replica system with random demand, injects
one write, and compares how long the three protocol variants of the
paper take to make (a) the most-demanded replica and (b) every replica
consistent.

Run:  python examples/quickstart.py
"""

from repro import (
    ReplicationSystem,
    fast_consistency,
    high_demand_consistency,
    weak_consistency,
)
from repro.core.metrics import reach_time
from repro.demand import UniformRandomDemand
from repro.topology import diameter, internet_like

SEED = 7
VARIANTS = [
    ("weak consistency (Golding)", weak_consistency()),
    ("ordered selection only", high_demand_consistency()),
    ("fast consistency (paper)", fast_consistency()),
]


def main() -> None:
    topology = internet_like(50, seed=SEED)
    demand = UniformRandomDemand(0.0, 100.0, seed=SEED)
    print(f"topology: {topology} (diameter {diameter(topology)})")
    print(f"{'variant':28s} {'top replica':>12s} {'all replicas':>13s}")

    hottest = demand.ranked(topology.nodes)[0]
    for name, config in VARIANTS:
        system = ReplicationSystem(
            topology=topology, demand=demand, config=config, seed=SEED
        )
        system.start()
        update = system.inject_write(node=0, key="article", value="breaking news")
        done = system.run_until_replicated(update.uid, max_time=60.0)
        times = system.apply_times(update.uid)
        top_time = reach_time(times, [hottest])
        print(f"{name:28s} {top_time:>10.2f}s* {done:>12.2f}s*")
    print("(* in mean-session-time units, the paper's clock)")


if __name__ == "__main__":
    main()
