"""Setup shim for offline editable installs.

All metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` works in environments without the ``wheel``
package (pip falls back to ``setup.py develop`` when no
``[build-system]`` table is present).
"""

from setuptools import setup

setup()
