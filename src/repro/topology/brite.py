"""BRITE-style random topology generation.

The paper generates its evaluation topologies with BRITE (Medina,
Lakhina, Matta, Byers), configured so that the result satisfies the
Internet power laws of Faloutsos et al. This module reimplements the two
router-level BRITE models the paper relies on:

* :func:`barabasi_albert` — incremental growth (factor F2) with
  preferential connectivity (factor F1): each new node attaches to ``m``
  existing nodes with probability proportional to their degree. This is
  the model the paper cites for why its topologies follow power laws.
* :func:`waxman` — incremental Waxman: new nodes attach to ``m``
  existing nodes with probability weight ``alpha * exp(-d / (beta * L))``
  where ``d`` is Euclidean distance and ``L`` the plane diagonal.

Both models place nodes on a BRITE-like plane first (uniform or
heavy-tailed placement) and produce connected graphs by construction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TopologyError
from .graph import Topology

#: Placement strategies for nodes on the plane.
PLACEMENT_RANDOM = "random"
PLACEMENT_HEAVY_TAIL = "heavy_tail"

_PLACEMENTS = (PLACEMENT_RANDOM, PLACEMENT_HEAVY_TAIL)


@dataclass(frozen=True)
class BriteConfig:
    """Parameters shared by the BRITE-style generators.

    Attributes:
        n: Number of nodes.
        m: Edges added per new node (BRITE's ``m``); the first ``m + 1``
            nodes form the connected seed core.
        plane_size: Side length of the placement plane (BRITE default
            1000 "HS" units).
        placement: ``"random"`` (uniform) or ``"heavy_tail"`` (BRITE's
            skewed placement: squares weighted by a Pareto draw).
        squares: Grid resolution used by heavy-tailed placement.
        waxman_alpha: Waxman ``alpha`` (edge-probability scale).
        waxman_beta: Waxman ``beta`` (distance sensitivity).
    """

    n: int = 50
    m: int = 2
    plane_size: float = 1000.0
    placement: str = PLACEMENT_RANDOM
    squares: int = 10
    waxman_alpha: float = 0.15
    waxman_beta: float = 0.2

    def validate(self) -> None:
        if self.n < 2:
            raise TopologyError(f"need at least 2 nodes, got {self.n}")
        if self.m < 1:
            raise TopologyError(f"m must be >= 1, got {self.m}")
        if self.m >= self.n:
            raise TopologyError(f"m={self.m} must be < n={self.n}")
        if self.plane_size <= 0:
            raise TopologyError("plane_size must be positive")
        if self.placement not in _PLACEMENTS:
            raise TopologyError(
                f"placement must be one of {_PLACEMENTS}, got {self.placement!r}"
            )
        if self.squares < 1:
            raise TopologyError("squares must be >= 1")
        if not (0 < self.waxman_alpha <= 1):
            raise TopologyError("waxman_alpha must be in (0, 1]")
        if not (0 < self.waxman_beta <= 1):
            raise TopologyError("waxman_beta must be in (0, 1]")


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


def place_nodes(config: BriteConfig, rng: random.Random) -> List[Tuple[float, float]]:
    """Place ``config.n`` points on the plane per the configured strategy."""
    config.validate()
    if config.placement == PLACEMENT_RANDOM:
        return [
            (rng.uniform(0, config.plane_size), rng.uniform(0, config.plane_size))
            for _ in range(config.n)
        ]
    return _heavy_tail_placement(config, rng)


def _heavy_tail_placement(
    config: BriteConfig, rng: random.Random
) -> List[Tuple[float, float]]:
    """BRITE-style skewed placement.

    The plane is divided into ``squares x squares`` cells; each cell
    receives a Pareto-distributed weight, and points pick their cell
    proportionally to the weights. This clusters nodes the way BRITE's
    bounded-Pareto assignment does, which is what makes heavy-tailed
    placement interesting for demand fields.
    """
    cells = config.squares * config.squares
    weights = [rng.paretovariate(1.2) for _ in range(cells)]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    side = config.plane_size / config.squares
    points: List[Tuple[float, float]] = []
    for _ in range(config.n):
        r = rng.random()
        # Binary search over the cumulative weights.
        lo, hi = 0, cells - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < r:
                lo = mid + 1
            else:
                hi = mid
        row, col = divmod(lo, config.squares)
        points.append(
            (col * side + rng.uniform(0, side), row * side + rng.uniform(0, side))
        )
    return points


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def _weighted_sample_distinct(
    candidates: Sequence[int],
    weights: Sequence[float],
    k: int,
    rng: random.Random,
) -> List[int]:
    """Sample ``k`` distinct candidates with probability ~ weights."""
    chosen: List[int] = []
    pool = list(candidates)
    pool_weights = list(weights)
    for _ in range(min(k, len(pool))):
        total = sum(pool_weights)
        if total <= 0:
            index = rng.randrange(len(pool))
        else:
            r = rng.random() * total
            acc = 0.0
            index = len(pool) - 1
            for i, w in enumerate(pool_weights):
                acc += w
                if r <= acc:
                    index = i
                    break
        chosen.append(pool.pop(index))
        pool_weights.pop(index)
    return chosen


def barabasi_albert(
    config: Optional[BriteConfig] = None,
    rng: Optional[random.Random] = None,
    **overrides,
) -> Topology:
    """Generate a BRITE/BA topology (preferential connectivity).

    Keyword overrides (``n=100, m=2, ...``) may be passed instead of a
    full :class:`BriteConfig`.
    """
    config = _resolve(config, overrides)
    rng = rng if rng is not None else random.Random(0)
    points = place_nodes(config, rng)
    topo = Topology(f"ba-{config.n}-m{config.m}")
    for node, point in enumerate(points):
        topo.add_node(node, point)

    # Seed core: m + 1 nodes connected in a clique, giving every seed a
    # non-zero degree so preferential attachment is well defined.
    core = list(range(config.m + 1))
    for i in core:
        for j in core[i + 1 :]:
            topo.add_edge(i, j)

    degrees: Dict[int, int] = {node: topo.degree(node) for node in core}
    for new in range(config.m + 1, config.n):
        existing = list(degrees)
        weights = [degrees[node] for node in existing]
        targets = _weighted_sample_distinct(existing, weights, config.m, rng)
        degrees[new] = 0
        for target in targets:
            topo.add_edge(new, target)
            degrees[new] += 1
            degrees[target] += 1
    return topo


def waxman(
    config: Optional[BriteConfig] = None,
    rng: Optional[random.Random] = None,
    **overrides,
) -> Topology:
    """Generate a BRITE-style incremental Waxman topology.

    New nodes connect to ``m`` existing nodes sampled with weight
    ``alpha * exp(-d / (beta * L))``; closer nodes are preferred, giving
    the locality structure of router-level maps without power laws.
    """
    config = _resolve(config, overrides)
    rng = rng if rng is not None else random.Random(0)
    points = place_nodes(config, rng)
    diagonal = math.hypot(config.plane_size, config.plane_size)
    topo = Topology(f"waxman-{config.n}-m{config.m}")
    for node, point in enumerate(points):
        topo.add_node(node, point)

    core = list(range(config.m + 1))
    for i in core:
        for j in core[i + 1 :]:
            topo.add_edge(i, j)

    def edge_weight_fn(a: int, b: int) -> float:
        (ax, ay), (bx, by) = points[a], points[b]
        d = math.hypot(ax - bx, ay - by)
        return config.waxman_alpha * math.exp(-d / (config.waxman_beta * diagonal))

    for new in range(config.m + 1, config.n):
        existing = list(range(new))
        weights = [edge_weight_fn(new, old) for old in existing]
        targets = _weighted_sample_distinct(existing, weights, config.m, rng)
        for target in targets:
            topo.add_edge(new, target)
    return topo


def internet_like(
    n: int, m: int = 2, seed: int = 0, placement: str = PLACEMENT_RANDOM
) -> Topology:
    """Convenience wrapper: the topology family used in the paper's §5.

    BA model on a 1000x1000 plane, seeded deterministically.
    """
    config = BriteConfig(n=n, m=m, placement=placement)
    return barabasi_albert(config, random.Random(seed))


def _resolve(config: Optional[BriteConfig], overrides: Dict) -> BriteConfig:
    if config is None:
        config = BriteConfig(**overrides)
    elif overrides:
        raise TopologyError("pass either a BriteConfig or keyword overrides, not both")
    config.validate()
    return config
