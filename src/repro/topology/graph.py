"""The :class:`Topology` graph type used throughout the library.

A topology is an undirected weighted graph with optional node
coordinates in the plane (BRITE places routers on a grid; coordinates
also drive the distance-based latency model and the Fig. 1 demand
surface). It is deliberately small and dependency-free — analysis
helpers live in :mod:`repro.topology.analysis`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import TopologyError

Coordinate = Tuple[float, float]
Edge = Tuple[int, int]


class Topology:
    """Undirected weighted graph over integer node ids.

    Args:
        name: Human-readable label used in experiment reports.

    Example:
        >>> topo = Topology("triangle")
        >>> for n in range(3):
        ...     topo.add_node(n)
        >>> _ = topo.add_edge(0, 1), topo.add_edge(1, 2), topo.add_edge(0, 2)
        >>> sorted(topo.neighbors(1))
        [0, 2]
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self._adjacency: Dict[int, Dict[int, float]] = {}
        self._coordinates: Dict[int, Coordinate] = {}
        #: Bumped on every structural mutation; lets consumers (and the
        #: neighbour cache below) invalidate derived state cheaply.
        self.version = 0
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: int, position: Optional[Coordinate] = None) -> int:
        """Add a node (idempotent); optionally place it in the plane."""
        node = int(node)
        if node < 0:
            raise TopologyError(f"node ids must be non-negative, got {node}")
        if node not in self._adjacency:
            self._adjacency[node] = {}
            self.version += 1
        if position is not None:
            self._coordinates[node] = (float(position[0]), float(position[1]))
        return node

    def add_edge(self, a: int, b: int, weight: Optional[float] = None) -> Edge:
        """Add an undirected edge.

        The weight defaults to the Euclidean distance between the
        endpoints when both are placed, else 1.0. Self-loops and
        duplicate edges are rejected — the protocols assume simple
        graphs.
        """
        if a == b:
            raise TopologyError(f"self-loop on node {a}")
        if a not in self._adjacency or b not in self._adjacency:
            raise TopologyError(f"edge ({a}, {b}) references unknown node")
        if b in self._adjacency[a]:
            raise TopologyError(f"duplicate edge ({a}, {b})")
        if weight is None:
            weight = self._default_weight(a, b)
        if weight <= 0:
            raise TopologyError(f"edge ({a}, {b}) weight must be positive")
        self._adjacency[a][b] = float(weight)
        self._adjacency[b][a] = float(weight)
        self.version += 1
        self._neighbor_cache.pop(a, None)
        self._neighbor_cache.pop(b, None)
        return (a, b) if a < b else (b, a)

    def _default_weight(self, a: int, b: int) -> float:
        pos_a = self._coordinates.get(a)
        pos_b = self._coordinates.get(b)
        if pos_a is None or pos_b is None:
            return 1.0
        return math.hypot(pos_a[0] - pos_b[0], pos_a[1] - pos_b[1]) or 1.0

    def remove_edge(self, a: int, b: int) -> None:
        """Remove an existing edge (raises if absent)."""
        if not self.has_edge(a, b):
            raise TopologyError(f"no edge ({a}, {b}) to remove")
        del self._adjacency[a][b]
        del self._adjacency[b][a]
        self.version += 1
        self._neighbor_cache.pop(a, None)
        self._neighbor_cache.pop(b, None)

    # -- queries ------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        """All node ids in insertion order."""
        return tuple(self._adjacency)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Neighbour ids of ``node`` (raises for unknown nodes).

        Cached per node (invalidated by edge mutations): partner
        selection and fast-update target ranking ask for the same
        tuples millions of times per run.
        """
        cached = self._neighbor_cache.get(node)
        if cached is None:
            try:
                cached = tuple(self._adjacency[node])
            except KeyError:
                raise TopologyError(f"unknown node {node}") from None
            self._neighbor_cache[node] = cached
        return cached

    def degree(self, node: int) -> int:
        return len(self._adjacency.get(node, ()))

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency.get(a, ())

    def edge_weight(self, a: int, b: int) -> float:
        """Weight of edge ``(a, b)`` (raises if absent)."""
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise TopologyError(f"no edge ({a}, {b})") from None

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield every edge once as ``(low, high, weight)``."""
        for a, nbrs in self._adjacency.items():
            for b, weight in nbrs.items():
                if a < b:
                    yield (a, b, weight)

    def position(self, node: int) -> Optional[Coordinate]:
        """Planar position of ``node`` if it was placed."""
        return self._coordinates.get(node)

    def set_position(self, node: int, position: Coordinate) -> None:
        if node not in self._adjacency:
            raise TopologyError(f"unknown node {node}")
        self._coordinates[node] = (float(position[0]), float(position[1]))

    def degrees(self) -> Dict[int, int]:
        """Mapping node -> degree."""
        return {n: len(nbrs) for n, nbrs in self._adjacency.items()}

    # -- structure ------------------------------------------------------------

    def connected_components(self) -> List[Set[int]]:
        """Connected components as sets of node ids."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nbr in self._adjacency[node]:
                    if nbr not in component:
                        component.add(nbr)
                        frontier.append(nbr)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True when the graph has one component (empty graphs count)."""
        return len(self.connected_components()) <= 1

    def subgraph(self, nodes: Iterable[int]) -> "Topology":
        """Induced subgraph on ``nodes`` (edges kept with weights)."""
        keep = set(int(n) for n in nodes)
        unknown = keep - set(self._adjacency)
        if unknown:
            raise TopologyError(f"subgraph references unknown nodes {sorted(unknown)}")
        sub = Topology(f"{self.name}-sub")
        for node in self._adjacency:
            if node in keep:
                sub.add_node(node, self._coordinates.get(node))
        for a, b, weight in self.edges():
            if a in keep and b in keep:
                sub.add_edge(a, b, weight)
        return sub

    def copy(self) -> "Topology":
        """Deep copy (adjacency and coordinates)."""
        dup = Topology(self.name)
        for node in self._adjacency:
            dup.add_node(node, self._coordinates.get(node))
        for a, b, weight in self.edges():
            dup.add_edge(a, b, weight)
        return dup

    def validate(self) -> None:
        """Check internal invariants (symmetry, no self-loops).

        Raises:
            TopologyError: If any invariant is violated; useful after
                hand-building topologies in tests and examples.
        """
        for a, nbrs in self._adjacency.items():
            for b, weight in nbrs.items():
                if a == b:
                    raise TopologyError(f"self-loop on {a}")
                back = self._adjacency.get(b, {}).get(a)
                if back != weight:
                    raise TopologyError(f"asymmetric edge ({a}, {b})")

    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
