"""Topology persistence.

Two formats are supported:

* a commented **edge-list** format (``save_edge_list`` /
  ``load_edge_list``) that round-trips everything the library uses
  (node positions and edge weights), and
* a **BRITE-like** export (``save_brite``) mirroring the layout of
  BRITE ``.brite`` files (Nodes / Edges sections) so generated graphs
  can be eyeballed against real BRITE output.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Union

from ..errors import TopologyError
from .graph import Topology

PathLike = Union[str, Path]


def dumps_edge_list(topo: Topology) -> str:
    """Serialize a topology to the edge-list text format."""
    out = _io.StringIO()
    out.write(f"# topology {topo.name}\n")
    out.write(f"# nodes {topo.num_nodes} edges {topo.num_edges}\n")
    for node in topo.nodes:
        pos = topo.position(node)
        if pos is None:
            out.write(f"node {node}\n")
        else:
            out.write(f"node {node} {pos[0]:.6f} {pos[1]:.6f}\n")
    for a, b, weight in topo.edges():
        out.write(f"edge {a} {b} {weight:.6f}\n")
    return out.getvalue()


def loads_edge_list(text: str) -> Topology:
    """Parse the edge-list text format back into a :class:`Topology`."""
    topo = Topology("loaded")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) >= 2 and parts[0] == "topology":
                topo.name = parts[1]
            continue
        parts = line.split()
        try:
            if parts[0] == "node":
                node = int(parts[1])
                if len(parts) >= 4:
                    topo.add_node(node, (float(parts[2]), float(parts[3])))
                else:
                    topo.add_node(node)
            elif parts[0] == "edge":
                topo.add_edge(int(parts[1]), int(parts[2]), float(parts[3]))
            else:
                raise ValueError(f"unknown record {parts[0]!r}")
        except (IndexError, ValueError) as exc:
            raise TopologyError(f"line {lineno}: cannot parse {line!r}: {exc}") from exc
    return topo


def save_edge_list(topo: Topology, path: PathLike) -> None:
    """Write the edge-list format to ``path``."""
    Path(path).write_text(dumps_edge_list(topo), encoding="utf-8")


def load_edge_list(path: PathLike) -> Topology:
    """Read a topology previously written by :func:`save_edge_list`."""
    return loads_edge_list(Path(path).read_text(encoding="utf-8"))


def dumps_brite(topo: Topology) -> str:
    """Serialize in a BRITE-flavoured format (Nodes/Edges sections).

    The export is best-effort (BRITE columns that have no equivalent —
    AS ids, node types — are written as constants) and is intended for
    inspection and interchange, not round-tripping; use the edge-list
    format for persistence.
    """
    out = _io.StringIO()
    out.write(f"Topology: ( {topo.num_nodes} Nodes, {topo.num_edges} Edges )\n")
    out.write("Model (1 - RTBarabasi):\n\n")
    out.write(f"Nodes: ({topo.num_nodes})\n")
    for node in topo.nodes:
        x, y = topo.position(node) or (0.0, 0.0)
        degree = topo.degree(node)
        out.write(f"{node}\t{x:.2f}\t{y:.2f}\t{degree}\t{degree}\t-1\tRT_NODE\n")
    out.write(f"\nEdges: ({topo.num_edges})\n")
    for index, (a, b, weight) in enumerate(topo.edges()):
        out.write(f"{index}\t{a}\t{b}\t{weight:.2f}\t0.0\t0.0\t-1\t-1\tE_RT\tU\n")
    return out.getvalue()


def save_brite(topo: Topology, path: PathLike) -> None:
    """Write the BRITE-flavoured export to ``path``."""
    Path(path).write_text(dumps_brite(topo), encoding="utf-8")
