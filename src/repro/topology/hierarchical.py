"""Hierarchical (top-down) topology generation, BRITE style.

BRITE's top-down mode first generates an AS-level graph, then a
router-level graph inside each AS, and finally connects ASes through
border routers. The paper's experiments use flat router-level graphs,
but Internet-scale deployments are hierarchical, so this utility exists
for the examples and for stress-testing the protocols on two-tier
structures (inter-AS edges are long; intra-AS edges are short — which
matters for the distance-based latency model).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import TopologyError
from .brite import BriteConfig, barabasi_albert, waxman
from .graph import Topology

MODEL_BA = "ba"
MODEL_WAXMAN = "waxman"
_MODELS = (MODEL_BA, MODEL_WAXMAN)


@dataclass(frozen=True)
class HierarchicalConfig:
    """Two-tier topology parameters.

    Attributes:
        autonomous_systems: Number of ASes (top-level nodes).
        routers_per_as: Router count inside each AS.
        as_m: Edges per new node at the AS level.
        router_m: Edges per new node at the router level.
        as_model / router_model: ``"ba"`` or ``"waxman"`` per tier.
        plane_size: Side of the global plane; each AS occupies one cell
            of a near-square grid over it.
        border_links: Parallel router-level links per AS-level edge.
    """

    autonomous_systems: int = 4
    routers_per_as: int = 12
    as_m: int = 2
    router_m: int = 2
    as_model: str = MODEL_BA
    router_model: str = MODEL_BA
    plane_size: float = 1000.0
    border_links: int = 1

    def validate(self) -> None:
        if self.autonomous_systems < 2:
            raise TopologyError("need at least 2 autonomous systems")
        if self.routers_per_as < 2:
            raise TopologyError("need at least 2 routers per AS")
        if self.as_model not in _MODELS or self.router_model not in _MODELS:
            raise TopologyError(f"models must be one of {_MODELS}")
        if self.border_links < 1:
            raise TopologyError("border_links must be >= 1")
        if min(self.as_m, self.router_m) < 1:
            raise TopologyError("m parameters must be >= 1")
        if self.as_m >= self.autonomous_systems:
            raise TopologyError("as_m must be < autonomous_systems")
        if self.router_m >= self.routers_per_as:
            raise TopologyError("router_m must be < routers_per_as")


def _generate(model: str, config: BriteConfig, rng: random.Random) -> Topology:
    if model == MODEL_BA:
        return barabasi_albert(config, rng)
    return waxman(config, rng)


def hierarchical(
    config: Optional[HierarchicalConfig] = None,
    seed: int = 0,
    **overrides,
) -> Topology:
    """Generate a two-tier AS/router topology.

    Node ids are ``as_index * routers_per_as + router_index``; use
    :func:`as_of` to map back. The result is connected by construction
    (each tier's generator is, and every AS edge gets border links).
    """
    if config is None:
        config = HierarchicalConfig(**overrides)
    elif overrides:
        raise TopologyError("pass either a config or keyword overrides, not both")
    config.validate()
    rng = random.Random(seed)

    as_graph = _generate(
        config.as_model,
        BriteConfig(n=config.autonomous_systems, m=config.as_m),
        rng,
    )

    # Lay ASes out on a near-square grid of cells.
    columns = max(1, math.ceil(math.sqrt(config.autonomous_systems)))
    rows = math.ceil(config.autonomous_systems / columns)
    cell_w = config.plane_size / columns
    cell_h = config.plane_size / rows

    topo = Topology(
        f"hier-{config.autonomous_systems}x{config.routers_per_as}"
    )
    for as_index in range(config.autonomous_systems):
        router_graph = _generate(
            config.router_model,
            BriteConfig(n=config.routers_per_as, m=config.router_m, plane_size=1.0),
            random.Random(rng.random()),
        )
        col, row = as_index % columns, as_index // columns
        for router in router_graph.nodes:
            x, y = router_graph.position(router)
            topo.add_node(
                as_index * config.routers_per_as + router,
                (col * cell_w + x * cell_w * 0.9, row * cell_h + y * cell_h * 0.9),
            )
        for a, b, _ in router_graph.edges():
            topo.add_edge(
                as_index * config.routers_per_as + a,
                as_index * config.routers_per_as + b,
            )

    # Border links realise AS-level edges between random routers.
    for as_a, as_b, _ in as_graph.edges():
        for _ in range(config.border_links):
            router_a = as_a * config.routers_per_as + rng.randrange(
                config.routers_per_as
            )
            router_b = as_b * config.routers_per_as + rng.randrange(
                config.routers_per_as
            )
            if not topo.has_edge(router_a, router_b):
                topo.add_edge(router_a, router_b)
    return topo


def as_of(node: int, config: HierarchicalConfig) -> int:
    """The AS index a router id belongs to."""
    if node < 0:
        raise TopologyError(f"negative node id {node}")
    return node // config.routers_per_as


def as_members(as_index: int, config: HierarchicalConfig) -> List[int]:
    """All router ids inside one AS."""
    if not 0 <= as_index < config.autonomous_systems:
        raise TopologyError(f"AS index {as_index} out of range")
    base = as_index * config.routers_per_as
    return list(range(base, base + config.routers_per_as))
