"""Faloutsos power-law diagnostics.

Faloutsos, Faloutsos & Faloutsos (SIGCOMM'99) — cited by the paper as
the ground truth its BRITE topologies must satisfy — describe four
power laws of Internet graphs:

1. **Rank exponent R**: node degree vs. degree rank.
2. **Outdegree exponent O**: degree frequency vs. degree.
3. **Hop-plot exponent H**: number of node pairs within *h* hops vs. *h*.
4. **Eigen exponent E**: adjacency eigenvalues vs. eigenvalue rank.

Each function fits the corresponding log-log regression and returns the
exponent together with the correlation coefficient, so tests and
experiments can assert "the generated topology is in the Internet-like
regime" quantitatively (|r| close to 1, negative exponents).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import TopologyError
from .analysis import diameter, hop_pair_counts
from .graph import Topology


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``y = c * x ** exponent``.

    Attributes:
        exponent: Slope of the log-log regression.
        intercept: Log-space intercept (``log(c)``).
        correlation: Pearson correlation of the log-log points; values
            near -1/+1 indicate the law holds.
        points: Number of (x, y) samples fitted.
    """

    exponent: float
    intercept: float
    correlation: float
    points: int

    @property
    def r_squared(self) -> float:
        return self.correlation * self.correlation

    def predict(self, x: float) -> float:
        """Evaluate the fitted law at ``x``."""
        return math.exp(self.intercept) * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log(y) = intercept + exponent * log(x)``."""
    if len(xs) != len(ys):
        raise TopologyError("x and y lengths differ")
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise TopologyError(f"need >= 2 positive points to fit, got {len(pairs)}")
    lx = [math.log(x) for x, _ in pairs]
    ly = [math.log(y) for _, y in pairs]
    n = len(pairs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    syy = sum((y - mean_y) ** 2 for y in ly)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    if sxx == 0:
        raise TopologyError("degenerate fit: all x values equal")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    if syy == 0:
        correlation = 1.0 if sxy >= 0 else -1.0
    else:
        correlation = sxy / math.sqrt(sxx * syy)
    return PowerLawFit(
        exponent=slope, intercept=intercept, correlation=correlation, points=n
    )


def rank_exponent(topo: Topology) -> PowerLawFit:
    """Power law 1: degree d_v vs. rank r_v (sorted decreasing)."""
    degrees = sorted(topo.degrees().values(), reverse=True)
    ranks = list(range(1, len(degrees) + 1))
    return fit_power_law(ranks, degrees)


def outdegree_exponent(topo: Topology) -> PowerLawFit:
    """Power law 2: frequency f_d of degree d vs. d."""
    freq: Dict[int, int] = {}
    for degree in topo.degrees().values():
        freq[degree] = freq.get(degree, 0) + 1
    degrees = sorted(freq)
    counts = [freq[d] for d in degrees]
    return fit_power_law(degrees, counts)


def hop_plot_exponent(topo: Topology) -> PowerLawFit:
    """Power law 3: pairs-within-h-hops P(h) vs. h, for h < diameter."""
    if not topo.is_connected():
        raise TopologyError("hop-plot exponent requires a connected topology")
    dia = diameter(topo)
    counts = hop_pair_counts(topo, max_hops=dia)
    hops = [h for h in sorted(counts) if 1 <= h <= max(1, dia - 1)]
    if len(hops) < 2:
        # Tiny/dense graphs saturate immediately; fit over what exists.
        hops = [h for h in sorted(counts) if h >= 1]
    values = [counts[h] for h in hops]
    return fit_power_law(hops, values)


def eigen_exponent(topo: Topology, k: int = 20) -> PowerLawFit:
    """Power law 4: i-th largest adjacency eigenvalue vs. i.

    Uses numpy's symmetric eigensolver on the dense adjacency matrix —
    fine for the evaluation sizes (tens to hundreds of nodes).
    """
    import numpy as np

    nodes = topo.nodes
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    if n == 0:
        raise TopologyError("empty topology")
    matrix = np.zeros((n, n))
    for a, b, _ in topo.edges():
        matrix[index[a], index[b]] = 1.0
        matrix[index[b], index[a]] = 1.0
    eigenvalues = np.linalg.eigvalsh(matrix)
    top = sorted((float(v) for v in eigenvalues), reverse=True)[: max(2, k)]
    positive = [v for v in top if v > 0]
    ranks = list(range(1, len(positive) + 1))
    return fit_power_law(ranks, positive)


def verify_internet_like(
    topo: Topology, min_correlation: float = 0.9
) -> Dict[str, PowerLawFit]:
    """Fit the rank/outdegree/eigen laws and check they hold.

    Returns the fits keyed by law name. Raises :class:`TopologyError`
    if any fitted |correlation| is below ``min_correlation`` — used by
    tests to guard the BRITE-replacement claim in DESIGN.md.
    """
    fits = {
        "rank": rank_exponent(topo),
        "outdegree": outdegree_exponent(topo),
        "eigen": eigen_exponent(topo),
    }
    for name, fit in fits.items():
        if abs(fit.correlation) < min_correlation:
            raise TopologyError(
                f"power law {name!r} does not hold: |r|="
                f"{abs(fit.correlation):.3f} < {min_correlation}"
            )
    return fits
