"""Topology substrate: graph type, generators, analysis, power laws.

This package replaces BRITE in the reproduction (see DESIGN.md §2): the
paper's evaluation topologies are random graphs satisfying the Internet
power laws, produced here by :func:`repro.topology.brite.barabasi_albert`
and verified by :mod:`repro.topology.powerlaws`.
"""

from .analysis import (
    DegreeStats,
    average_clustering,
    average_path_length,
    bfs_distances,
    clustering_coefficient,
    diameter,
    eccentricities,
    hop_pair_counts,
    radius,
    shortest_path,
    summarize,
)
from .brite import (
    PLACEMENT_HEAVY_TAIL,
    PLACEMENT_RANDOM,
    BriteConfig,
    barabasi_albert,
    internet_like,
    place_nodes,
    waxman,
)
from .graph import Topology
from .hierarchical import (
    HierarchicalConfig,
    as_members,
    as_of,
    hierarchical,
)
from .io import (
    dumps_brite,
    dumps_edge_list,
    load_edge_list,
    loads_edge_list,
    save_brite,
    save_edge_list,
)
from .powerlaws import (
    PowerLawFit,
    eigen_exponent,
    fit_power_law,
    hop_plot_exponent,
    outdegree_exponent,
    rank_exponent,
    verify_internet_like,
)
from .simple import (
    balanced_tree,
    complete,
    grid,
    hypercube,
    line,
    ring,
    star,
    torus,
)

__all__ = [
    "Topology",
    # generators
    "BriteConfig",
    "barabasi_albert",
    "waxman",
    "internet_like",
    "place_nodes",
    "PLACEMENT_RANDOM",
    "PLACEMENT_HEAVY_TAIL",
    "HierarchicalConfig",
    "hierarchical",
    "as_of",
    "as_members",
    "line",
    "ring",
    "star",
    "grid",
    "torus",
    "complete",
    "balanced_tree",
    "hypercube",
    # analysis
    "bfs_distances",
    "shortest_path",
    "diameter",
    "radius",
    "eccentricities",
    "average_path_length",
    "hop_pair_counts",
    "DegreeStats",
    "clustering_coefficient",
    "average_clustering",
    "summarize",
    # power laws
    "PowerLawFit",
    "fit_power_law",
    "rank_exponent",
    "outdegree_exponent",
    "hop_plot_exponent",
    "eigen_exponent",
    "verify_internet_like",
    # io
    "dumps_edge_list",
    "loads_edge_list",
    "save_edge_list",
    "load_edge_list",
    "dumps_brite",
    "save_brite",
]
