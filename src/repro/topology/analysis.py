"""Graph analysis helpers (hop metrics, degree statistics).

The paper's §5 observation — sessions-to-consistency tracks the network
*diameter* rather than the node count — makes these metrics part of the
evaluation itself, so they are first-class and tested.

All path metrics are in hops (unweighted BFS), matching how the paper
counts sessions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import TopologyError
from .graph import Topology


def bfs_distances(topo: Topology, source: int) -> Dict[int, int]:
    """Hop distance from ``source`` to every reachable node."""
    if source not in topo:
        raise TopologyError(f"unknown source node {source}")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_hop = distances[node] + 1
        for nbr in topo.neighbors(node):
            if nbr not in distances:
                distances[nbr] = next_hop
                queue.append(nbr)
    return distances


def shortest_path(topo: Topology, source: int, target: int) -> List[int]:
    """One shortest hop-path from ``source`` to ``target``.

    Raises:
        TopologyError: If no path exists.
    """
    if source == target:
        return [source]
    parents: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in topo.neighbors(node):
            if nbr in parents:
                continue
            parents[nbr] = node
            if nbr == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(nbr)
    raise TopologyError(f"no path from {source} to {target}")


def eccentricities(topo: Topology) -> Dict[int, int]:
    """Eccentricity of every node (graph must be connected)."""
    if not topo.is_connected():
        raise TopologyError("eccentricities require a connected topology")
    result: Dict[int, int] = {}
    for node in topo.nodes:
        distances = bfs_distances(topo, node)
        result[node] = max(distances.values(), default=0)
    return result


def diameter(topo: Topology) -> int:
    """Longest shortest path, in hops."""
    ecc = eccentricities(topo)
    return max(ecc.values(), default=0)


def radius(topo: Topology) -> int:
    """Smallest eccentricity."""
    ecc = eccentricities(topo)
    return min(ecc.values(), default=0)


def average_path_length(topo: Topology) -> float:
    """Mean hop distance over all ordered reachable pairs."""
    total = 0
    pairs = 0
    for node in topo.nodes:
        for dist in bfs_distances(topo, node).values():
            if dist > 0:
                total += dist
                pairs += 1
    return total / pairs if pairs else 0.0


def hop_pair_counts(topo: Topology, max_hops: Optional[int] = None) -> Dict[int, int]:
    """Number of ordered node pairs within ``h`` hops, for each ``h``.

    This is the quantity behind Faloutsos' hop-plot power law; it also
    includes ``h=0`` (the nodes themselves), matching the original
    definition ``P(h)``.
    """
    counts: Dict[int, int] = {}
    horizon = max_hops if max_hops is not None else topo.num_nodes
    for node in topo.nodes:
        for dist in bfs_distances(topo, node).values():
            if dist <= horizon:
                counts[dist] = counts.get(dist, 0) + 1
    # Cumulative: pairs within h hops, not exactly at h hops.
    cumulative: Dict[int, int] = {}
    running = 0
    for h in range(0, max(counts, default=0) + 1):
        running += counts.get(h, 0)
        cumulative[h] = running
    return cumulative


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a topology's degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float

    @classmethod
    def of(cls, topo: Topology) -> "DegreeStats":
        degrees = sorted(topo.degrees().values())
        if not degrees:
            return cls(0, 0, 0.0, 0.0)
        n = len(degrees)
        median = (
            float(degrees[n // 2])
            if n % 2
            else (degrees[n // 2 - 1] + degrees[n // 2]) / 2.0
        )
        return cls(
            minimum=degrees[0],
            maximum=degrees[-1],
            mean=sum(degrees) / n,
            median=median,
        )


def clustering_coefficient(topo: Topology, node: int) -> float:
    """Fraction of a node's neighbour pairs that are themselves linked."""
    nbrs = topo.neighbors(node)
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    for i, a in enumerate(nbrs):
        for b in nbrs[i + 1 :]:
            if topo.has_edge(a, b):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(topo: Topology) -> float:
    """Mean clustering coefficient over all nodes."""
    if topo.num_nodes == 0:
        return 0.0
    return sum(clustering_coefficient(topo, n) for n in topo.nodes) / topo.num_nodes


def summarize(topo: Topology) -> Dict[str, object]:
    """One-call structural summary used by experiment reports."""
    stats = DegreeStats.of(topo)
    connected = topo.is_connected()
    return {
        "name": topo.name,
        "nodes": topo.num_nodes,
        "edges": topo.num_edges,
        "connected": connected,
        "diameter": diameter(topo) if connected and topo.num_nodes else None,
        "avg_path_length": average_path_length(topo) if connected else None,
        "degree_min": stats.minimum,
        "degree_max": stats.maximum,
        "degree_mean": stats.mean,
        "clustering": average_clustering(topo),
    }
