"""Deterministic reference topologies.

Section 5 of the paper reports "similar results ... with simpler uniform
topologies (linear, ring, grid), with different number of nodes"; these
constructors build those plus a few classics that are useful in tests
(star, tree, complete, hypercube, torus). All are connected by
construction and place nodes on the plane so distance-based latency and
surface rendering work uniformly.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import TopologyError
from .graph import Topology


def _require_positive(n: int, what: str = "n") -> int:
    n = int(n)
    if n <= 0:
        raise TopologyError(f"{what} must be positive, got {n}")
    return n


def line(n: int, spacing: float = 1.0) -> Topology:
    """A path of ``n`` nodes: 0 - 1 - ... - (n-1)."""
    n = _require_positive(n)
    topo = Topology(f"line-{n}")
    for i in range(n):
        topo.add_node(i, (i * spacing, 0.0))
    for i in range(n - 1):
        topo.add_edge(i, i + 1, spacing)
    return topo


def ring(n: int, radius: Optional[float] = None) -> Topology:
    """A cycle of ``n >= 3`` nodes laid out on a circle."""
    n = _require_positive(n)
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
    radius = radius if radius is not None else n / (2 * math.pi)
    topo = Topology(f"ring-{n}")
    for i in range(n):
        angle = 2 * math.pi * i / n
        topo.add_node(i, (radius * math.cos(angle), radius * math.sin(angle)))
    for i in range(n):
        topo.add_edge(i, (i + 1) % n, 1.0)
    return topo


def star(n: int) -> Topology:
    """Node 0 is the hub; nodes 1..n-1 are leaves."""
    n = _require_positive(n)
    if n < 2:
        raise TopologyError(f"a star needs at least 2 nodes, got {n}")
    topo = Topology(f"star-{n}")
    topo.add_node(0, (0.0, 0.0))
    for i in range(1, n):
        angle = 2 * math.pi * i / (n - 1)
        topo.add_node(i, (math.cos(angle), math.sin(angle)))
        topo.add_edge(0, i, 1.0)
    return topo


def grid(rows: int, cols: int, spacing: float = 1.0) -> Topology:
    """A rows x cols 4-neighbour mesh; node id = row * cols + col."""
    rows = _require_positive(rows, "rows")
    cols = _require_positive(cols, "cols")
    topo = Topology(f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            topo.add_node(r * cols + c, (c * spacing, r * spacing))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                topo.add_edge(node, node + 1, spacing)
            if r + 1 < rows:
                topo.add_edge(node, node + cols, spacing)
    return topo


def torus(rows: int, cols: int) -> Topology:
    """A grid with wrap-around edges in both dimensions (each >= 3)."""
    rows = _require_positive(rows, "rows")
    cols = _require_positive(cols, "cols")
    if rows < 3 or cols < 3:
        raise TopologyError("torus dimensions must each be >= 3")
    topo = Topology(f"torus-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            topo.add_node(r * cols + c, (float(c), float(r)))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if not topo.has_edge(node, right):
                topo.add_edge(node, right, 1.0)
            if not topo.has_edge(node, down):
                topo.add_edge(node, down, 1.0)
    return topo


def complete(n: int) -> Topology:
    """The complete graph K_n."""
    n = _require_positive(n)
    topo = Topology(f"complete-{n}")
    for i in range(n):
        angle = 2 * math.pi * i / n
        topo.add_node(i, (math.cos(angle), math.sin(angle)))
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_edge(i, j, 1.0)
    return topo


def balanced_tree(branching: int, height: int) -> Topology:
    """A rooted tree where every internal node has ``branching`` children.

    Node 0 is the root; children of node *v* are numbered breadth-first.
    """
    branching = _require_positive(branching, "branching")
    height = int(height)
    if height < 0:
        raise TopologyError(f"height must be >= 0, got {height}")
    topo = Topology(f"tree-{branching}-{height}")
    topo.add_node(0, (0.0, 0.0))
    frontier = [0]
    next_id = 1
    for level in range(1, height + 1):
        new_frontier = []
        width = branching**level
        for parent_index, parent in enumerate(frontier):
            for child_index in range(branching):
                child = next_id
                next_id += 1
                slot = parent_index * branching + child_index
                x = (slot - (width - 1) / 2.0) * (2.0 ** (height - level))
                topo.add_node(child, (x, -float(level)))
                topo.add_edge(parent, child, 1.0)
                new_frontier.append(child)
        frontier = new_frontier
    return topo


def hypercube(dimension: int) -> Topology:
    """The ``dimension``-dimensional hypercube (2^d nodes)."""
    dimension = int(dimension)
    if dimension < 1:
        raise TopologyError(f"dimension must be >= 1, got {dimension}")
    n = 1 << dimension
    topo = Topology(f"hypercube-{dimension}")
    for i in range(n):
        # Lay out on a circle; coordinates are only cosmetic here.
        angle = 2 * math.pi * i / n
        topo.add_node(i, (math.cos(angle), math.sin(angle)))
    for i in range(n):
        for bit in range(dimension):
            j = i ^ (1 << bit)
            if i < j:
                topo.add_edge(i, j, 1.0)
    return topo
