"""CSV export of experiment artefacts.

The ASCII plots are for the terminal; these exporters produce data
files that external plotting tools (gnuplot, pandas, spreadsheets) can
consume to redraw the paper's figures at publication quality.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Mapping, Sequence, Union

from ..errors import ExperimentError

PathLike = Union[str, Path]


def curves_to_csv(
    curves: Mapping[str, Sequence[float]],
    xs: Sequence[float],
    x_label: str = "sessions",
) -> str:
    """Serialize shared-x curves (e.g. the Figs. 5-6 CDFs) as CSV text.

    Columns: the x axis followed by one column per curve.
    """
    if not curves:
        raise ExperimentError("no curves to export")
    for name, ys in curves.items():
        if len(ys) != len(xs):
            raise ExperimentError(
                f"curve {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = list(curves)
    writer.writerow([x_label] + names)
    for index, x in enumerate(xs):
        writer.writerow([f"{x:g}"] + [f"{curves[n][index]:.6f}" for n in names])
    return buffer.getvalue()


def save_curves_csv(
    curves: Mapping[str, Sequence[float]],
    xs: Sequence[float],
    path: PathLike,
    x_label: str = "sessions",
) -> None:
    """Write :func:`curves_to_csv` output to ``path``."""
    Path(path).write_text(curves_to_csv(curves, xs, x_label), encoding="utf-8")


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Serialize result-table rows (what the benches print) as CSV."""
    headers = list(headers)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        writer.writerow(list(row))
    return buffer.getvalue()


def save_rows_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]], path: PathLike
) -> None:
    """Write :func:`rows_to_csv` output to ``path``."""
    Path(path).write_text(rows_to_csv(headers, rows), encoding="utf-8")
