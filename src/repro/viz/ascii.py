"""ASCII plotting (no matplotlib in the offline environment).

Good enough to eyeball the Figs. 5-6 CDF curves and the Fig. 3 series in
a terminal; the quantitative record lives in the result objects and
EXPERIMENTS.md, not in these plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError

#: Glyph per curve, assigned in insertion order.
CURVE_GLYPHS = "*o+x#@%&"


def line_plot(
    series: Dict[str, Sequence[float]],
    xs: Sequence[float],
    width: int = 64,
    height: int = 16,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x values as ASCII art.

    Args:
        series: name -> y values (same length as ``xs``).
        xs: The shared x axis values (monotonically increasing).
    """
    if not series:
        raise ExperimentError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ExperimentError(
                f"series {name!r} has {len(ys)} points for {len(xs)} x values"
            )
    if len(xs) < 2:
        raise ExperimentError("need at least two x values")
    all_values = [y for ys in series.values() for y in ys]
    lo = min(all_values) if y_min is None else y_min
    hi = max(all_values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = xs[0], xs[-1]

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        glyph = CURVE_GLYPHS[index % len(CURVE_GLYPHS)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.2f}"
    bottom_label = f"{lo:.2f}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis_line = (
        " " * label_width
        + "  "
        + f"{x_lo:g}".ljust(width // 2)
        + f"{x_hi:g}".rjust(width - width // 2)
    )
    lines.append(x_axis_line)
    if x_label:
        lines.append(" " * label_width + "  " + x_label.center(width))
    legend = "  ".join(
        f"{CURVE_GLYPHS[i % len(CURVE_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def cdf_plot(
    curves: Dict[str, Sequence[float]],
    grid: Sequence[float],
    title: str = "",
    width: int = 64,
    height: int = 16,
) -> str:
    """Convenience wrapper fixing the y range to [0, 1] (probabilities)."""
    return line_plot(
        curves,
        grid,
        width=width,
        height=height,
        y_min=0.0,
        y_max=1.0,
        title=title,
        x_label="sessions",
    )


def bar_chart(
    values: Dict[str, float], width: int = 48, title: str = ""
) -> str:
    """Horizontal bar chart for variant comparisons."""
    if not values:
        raise ExperimentError("nothing to chart")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{name.ljust(label_width)} | {bar} {value:.3f}")
    return "\n".join(lines)
