"""Terminal visualisation: ASCII line/CDF plots and demand surfaces."""

from .ascii import bar_chart, cdf_plot, line_plot
from .export import (
    curves_to_csv,
    rows_to_csv,
    save_curves_csv,
    save_rows_csv,
)
from .surface import render_surface, render_topology_demand

__all__ = [
    "line_plot",
    "cdf_plot",
    "bar_chart",
    "render_surface",
    "render_topology_demand",
    "curves_to_csv",
    "save_curves_csv",
    "rows_to_csv",
    "save_rows_csv",
]
