"""ASCII rendering of demand surfaces (paper Fig. 1).

The paper draws demand as a 3-D landscape — hills (low demand) and
valleys (high demand). :func:`render_surface` samples a
:class:`repro.demand.field.SurfaceDemand` on a character grid and maps
demand to a density ramp, which makes the valleys visually obvious in a
terminal; :func:`render_topology_demand` overlays node markers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..demand.field import SurfaceDemand
from ..errors import DemandError
from ..topology.graph import Topology

#: Density ramp from low demand (hills) to high demand (valleys).
RAMP = " .:-=+*#%@"


def _ramp_char(value: float, lo: float, hi: float) -> str:
    if hi <= lo:
        return RAMP[0]
    fraction = (value - lo) / (hi - lo)
    index = min(len(RAMP) - 1, max(0, int(fraction * (len(RAMP) - 1))))
    return RAMP[index]


def render_surface(
    field: SurfaceDemand,
    bounds: Optional[Tuple[float, float, float, float]] = None,
    width: int = 60,
    height: int = 24,
    with_scale: bool = True,
) -> str:
    """Sample the continuous demand surface onto a character grid.

    Args:
        bounds: ``(x_min, y_min, x_max, y_max)``; defaults to the
            bounding box of the field's node positions.
    """
    if bounds is None:
        xs = [p[0] for p in field.positions.values()]
        ys = [p[1] for p in field.positions.values()]
        bounds = (min(xs), min(ys), max(xs), max(ys))
    x_min, y_min, x_max, y_max = bounds
    if x_max <= x_min or y_max <= y_min:
        raise DemandError(f"degenerate bounds {bounds}")
    samples = []
    for row in range(height):
        y = y_max - (y_max - y_min) * row / (height - 1 if height > 1 else 1)
        line = []
        for col in range(width):
            x = x_min + (x_max - x_min) * col / (width - 1 if width > 1 else 1)
            line.append(field.demand_at((x, y)))
        samples.append(line)
    lo = min(min(line) for line in samples)
    hi = max(max(line) for line in samples)
    lines = [
        "".join(_ramp_char(v, lo, hi) for v in line) for line in samples
    ]
    if with_scale:
        lines.append("")
        lines.append(
            f"demand scale: '{RAMP[0]}'={lo:.1f} (hills) ... '{RAMP[-1]}'={hi:.1f}"
            " (valleys = high demand)"
        )
    return "\n".join(lines)


def render_topology_demand(
    topology: Topology,
    demand: Dict[int, float],
    width: int = 60,
    height: int = 24,
) -> str:
    """Scatter nodes on the plane, glyph intensity = that node's demand."""
    positions = {}
    for node in topology.nodes:
        pos = topology.position(node)
        if pos is None:
            raise DemandError(f"node {node} has no position")
        positions[node] = pos
    xs = [p[0] for p in positions.values()]
    ys = [p[1] for p in positions.values()]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    span_x = (x_max - x_min) or 1.0
    span_y = (y_max - y_min) or 1.0
    lo = min(demand.values())
    hi = max(demand.values())
    grid = [[" "] * width for _ in range(height)]
    for node, (x, y) in positions.items():
        col = int((x - x_min) / span_x * (width - 1))
        row = int((y - y_min) / span_y * (height - 1))
        glyph = _ramp_char(demand.get(node, lo), lo, hi)
        grid[height - 1 - row][col] = glyph
    lines = ["".join(row) for row in grid]
    lines.append("")
    lines.append(f"node demand: '{RAMP[1]}'~{lo:.1f} ... '{RAMP[-1]}'~{hi:.1f}")
    return "\n".join(lines)
