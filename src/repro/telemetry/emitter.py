"""Periodic newline-JSON snapshot emission for live registries.

A :class:`SnapshotEmitter` appends one self-contained JSON line per
call to a file (or any writable text stream): the registry snapshot
plus a wall-clock stamp and free-form context fields.  ``repro serve
--metrics-interval`` drives one from the cluster's event loop, so a
live cluster's telemetry trail uses exactly the same schema as the
campaign sidecar — one reader consumes both worlds.

Each line is flushed as written (crash-safe by construction, like the
campaign checkpoint); a consumer tails the file and JSON-parses each
line independently.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, TextIO, Union

from ..errors import ExperimentError
from .registry import MetricRegistry

__all__ = ["SnapshotEmitter", "read_snapshots"]

PathLike = Union[str, Path]


class SnapshotEmitter:
    """Append registry snapshots as newline-JSON records.

    Args:
        registry: The registry to snapshot on each :meth:`emit`.
        path: File to append to (opened lazily, parents created).
        stream: Alternatively, an open text stream to write to; exactly
            one of ``path``/``stream`` must be given.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        path: Optional[PathLike] = None,
        stream: Optional[TextIO] = None,
    ):
        if (path is None) == (stream is None):
            raise ExperimentError("pass exactly one of path= or stream=")
        self.registry = registry
        self.path = Path(path) if path is not None else None
        self._stream = stream
        self.emitted = 0

    def emit(self, **context: object) -> Dict[str, object]:
        """Write one snapshot line; returns the record written."""
        record: Dict[str, object] = {"t": time.time(), **context}
        record["telemetry"] = self.registry.snapshot()
        line = json.dumps(record, sort_keys=True)
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.path.open("a", encoding="utf-8")
        self._stream.write(line + "\n")
        self._stream.flush()
        self.emitted += 1
        return record

    def close(self) -> None:
        if self.path is not None and self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "SnapshotEmitter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_snapshots(path: PathLike) -> Iterator[Dict[str, object]]:
    """Parse an emitted trail; skips a torn final line, like every
    newline-JSON reader in the repo."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no snapshot trail at {path}")
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue
