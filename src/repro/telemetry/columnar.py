"""Columnar export of campaign checkpoints, stdlib only.

``repro campaign export --columnar DIR`` turns a JSON-lines checkpoint
into one packed binary file per :class:`TrialResult` column plus a
``manifest.json``, so offline analysis (numpy ``fromfile``, pandas,
duckdb...) reads a 10**6-trial campaign without parsing a million JSON
objects.  The export itself streams: each checkpoint line is parsed,
appended to the open column files, and dropped — peak memory is one
record, not the campaign.

Layout (schema ``repro-columnar/1``)::

    DIR/
      manifest.json       # schema, row count, column dtypes, null counts
      keys.txt            # scenario key per row, newline-separated
      time_all.bin        # little-endian float64, NaN = null
      messages.bin        # little-endian int64
      ...

Columns are derived from the :class:`TrialResult` dataclass: required
integer fields pack as ``<q`` (int64), optional fields as ``<d``
(float64) with NaN standing for null — uniform eight bytes per row per
column either way.  New result fields automatically become new columns.
"""

from __future__ import annotations

import dataclasses
import json
import math
import struct
import sys
from array import array
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ExperimentError
from ..experiments.results import PathLike, TrialResult

__all__ = ["COLUMN_DTYPES", "export_columnar", "read_column", "read_manifest"]

#: Export document schema tag; bump on incompatible layout changes.
SCHEMA = "repro-columnar/1"

_INT = "<q"
_FLOAT = "<d"


def _column_dtypes() -> Dict[str, str]:
    """Column name -> struct dtype, derived from the dataclass.

    Fields without a default are the original required measurements and
    pack as int64; every later, optional field packs as float64 with
    NaN for null.
    """
    dtypes: Dict[str, str] = {}
    for field in dataclasses.fields(TrialResult):
        required = (
            field.default is dataclasses.MISSING
            and field.default_factory is dataclasses.MISSING
        )
        if required and field.name in ("rep", "origin", "diameter", "messages", "bytes_sent"):
            dtypes[field.name] = _INT
        else:
            dtypes[field.name] = _FLOAT
    return dtypes


COLUMN_DTYPES: Dict[str, str] = _column_dtypes()


def _iter_trial_rows(path: Path) -> Iterator[Tuple[str, Dict[str, object]]]:
    """Stream ``(key, trial_dict)`` from a checkpoint, tolerant of the
    truncated final line an interrupted writer leaves behind."""
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line of a killed (or live) writer
            if not isinstance(row, dict) or row.get("kind") != "trial":
                continue
            key = row.get("key")
            trial = row.get("trial")
            if key is None or not isinstance(trial, dict):
                continue  # torn at a freak JSON-valid boundary
            yield str(key), trial


def export_columnar(
    checkpoint: PathLike, out_dir: PathLike
) -> Dict[str, object]:
    """Stream a JSON-lines checkpoint into a columnar directory.

    Returns the manifest (also written to ``DIR/manifest.json``).
    Raises :class:`ExperimentError` when the checkpoint does not exist.
    """
    checkpoint = Path(checkpoint)
    if not checkpoint.exists():
        raise ExperimentError(f"no checkpoint at {checkpoint}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    names = list(COLUMN_DTYPES)
    nulls = {name: 0 for name in names}
    rows = 0
    handles = {name: (out / f"{name}.bin").open("wb") for name in names}
    try:
        with (out / "keys.txt").open("w", encoding="utf-8") as keys_fh:
            for key, trial in _iter_trial_rows(checkpoint):
                keys_fh.write(key + "\n")
                for name in names:
                    value = trial.get(name)
                    dtype = COLUMN_DTYPES[name]
                    if dtype == _INT:
                        if value is None:
                            raise ExperimentError(
                                f"required column {name!r} is null in row {rows}"
                            )
                        packed = struct.pack(_INT, int(value))
                    else:
                        if value is None:
                            nulls[name] += 1
                            packed = struct.pack(_FLOAT, math.nan)
                        else:
                            packed = struct.pack(_FLOAT, float(value))
                    handles[name].write(packed)
                rows += 1
    finally:
        for handle in handles.values():
            handle.close()

    manifest: Dict[str, object] = {
        "schema": SCHEMA,
        "rows": rows,
        "source": str(checkpoint),
        "keys_file": "keys.txt",
        "columns": {
            name: {
                "file": f"{name}.bin",
                "dtype": COLUMN_DTYPES[name],
                "nulls": nulls[name],
            }
            for name in names
        },
    }
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return manifest


def read_manifest(out_dir: PathLike) -> Dict[str, object]:
    path = Path(out_dir) / "manifest.json"
    if not path.exists():
        raise ExperimentError(f"no columnar manifest at {path}")
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if manifest.get("schema") != SCHEMA:
        raise ExperimentError(
            f"unknown columnar schema {manifest.get('schema')!r}"
        )
    return manifest


def read_column(out_dir: PathLike, name: str) -> List[Optional[float]]:
    """Read one exported column back (None where the export wrote null).

    A convenience for tests and quick offline looks; bulk analysis
    should ``numpy.fromfile`` the ``.bin`` directly.
    """
    out = Path(out_dir)
    manifest = read_manifest(out)
    columns = manifest["columns"]
    if name not in columns:
        raise ExperimentError(
            f"unknown column {name!r}; known: {sorted(columns)}"
        )
    info = columns[name]
    typecode = "q" if info["dtype"] == _INT else "d"
    values = array(typecode)
    with (out / info["file"]).open("rb") as fh:
        values.frombytes(fh.read())
    if sys.byteorder == "big":  # files are always little-endian
        values.byteswap()
    if typecode == "q":
        return list(values)
    return [None if math.isnan(v) else v for v in values]
