"""Streaming telemetry: O(1)-memory aggregates shared by every world.

The subsystem has four layers, smallest first:

* **Primitives** — :class:`Counter` / :class:`Gauge`,
  :class:`RunningMoments` (Welford, exact, mergeable) and
  :class:`QuantileSketch` (deterministic compactor, mergeable, with a
  *certified* rank-error bound it tracks about itself).
* **Registry** — :class:`MetricRegistry` composes labeled series of the
  primitives with one JSON snapshot/merge/restore schema
  (``repro-telemetry/1``), used verbatim by the campaign sink sidecar,
  the live cluster's ``stats()``, and the ``repro serve`` snapshot
  emitter.
* **Emission** — :class:`SnapshotEmitter` appends newline-JSON snapshot
  records for live tails (``repro serve --metrics-interval``).
* **Columnar export** — :func:`export_columnar` streams a JSON-lines
  campaign checkpoint into packed per-column binaries for offline
  analysis (lazy import: it needs the experiments layer).

Everything is pure python and picklable; sketches and moments fold one
observation at a time, so a 10**6-trial campaign summarises in the
same few kilobytes as a 10-trial one.
"""

from .emitter import SnapshotEmitter, read_snapshots
from .moments import RunningMoments
from .registry import SCHEMA, Counter, Gauge, MetricRegistry, series_id
from .sketch import DEFAULT_K, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "RunningMoments",
    "QuantileSketch",
    "MetricRegistry",
    "SnapshotEmitter",
    "read_snapshots",
    "series_id",
    "SCHEMA",
    "DEFAULT_K",
    # lazy (see __getattr__): columnar export needs the experiments layer
    "export_columnar",
    "read_column",
    "read_manifest",
]

_LAZY_COLUMNAR = ("export_columnar", "read_column", "read_manifest", "COLUMN_DTYPES")


def __getattr__(name: str):
    # PEP 562: the columnar module imports repro.experiments.results, and
    # repro.experiments imports this package for the streaming sink —
    # loading it lazily keeps the import graph acyclic.
    if name in _LAZY_COLUMNAR:
        from . import columnar

        return getattr(columnar, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
