"""Streaming first/second moments: Welford's online algorithm, mergeable.

A :class:`RunningMoments` folds a stream of values one at a time and
answers count/mean/variance/min/max without ever holding the stream —
the campaign sink and the live cluster both use it so a million-trial
series costs the same five floats as a ten-trial one.  Two instances
merge exactly (Chan et al.'s parallel update), which is what lets
per-worker or per-shard aggregates combine into one campaign-wide
summary, and what makes checkpointed aggregates resumable.

Counts and means are *exact* (floating-point associativity aside, the
merge formula is algebraically identical to one-pass Welford over the
concatenated stream; the property tests pin agreement to 1e-9).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..errors import ExperimentError

__all__ = ["RunningMoments"]


class RunningMoments:
    """Mean/variance/min/max/count of a stream, in O(1) memory.

    >>> m = RunningMoments()
    >>> for x in (1.0, 2.0, 3.0):
    ...     m.add(x)
    >>> m.count, m.mean, m.minimum, m.maximum
    (3, 2.0, 1.0, 3.0)
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    # -- folding ----------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one observation (Welford's update)."""
        value = float(value)
        if math.isnan(value):
            raise ExperimentError("cannot fold NaN into RunningMoments")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "RunningMoments") -> None:
        """Fold ``other`` in, as if its stream had been appended here."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        if other.minimum is not None and other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum is not None and other.maximum > self.maximum:
            self.maximum = other.maximum

    # -- queries ----------------------------------------------------------

    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 below two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def std(self) -> float:
        return math.sqrt(self.variance())

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunningMoments":
        try:
            moments = cls()
            moments.count = int(data["count"])
            moments.mean = float(data["mean"])
            moments._m2 = float(data["m2"])
            moments.minimum = None if data["min"] is None else float(data["min"])
            moments.maximum = None if data["max"] is None else float(data["max"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed moments payload: {exc}") from exc
        return moments

    # Pickling rides __reduce__ because of __slots__.
    def __reduce__(self):
        return (_restore_moments, (self.to_dict(),))

    def __repr__(self) -> str:
        return (
            f"RunningMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std():.6g}, min={self.minimum}, max={self.maximum})"
        )


def _restore_moments(data: Dict[str, object]) -> RunningMoments:
    return RunningMoments.from_dict(data)
