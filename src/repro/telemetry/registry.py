"""A registry of labeled metric series with one JSON snapshot schema.

Every telemetry producer in the repo — the campaign's streaming sink,
the live :class:`~repro.runtime.cluster.ReplicaCluster`, benchmarks —
registers its series here, so the simulated and live worlds report
through one schema and their snapshots diff, merge and restore with the
same code.

A *series* is a metric name plus a label set, e.g.::

    registry.counter("campaign.trials", plan="ring", series="fast")
    registry.sketch("trial.time_all", plan="ring", series="fast")

Four primitive types compose a registry:

* :class:`Counter` — a monotone integer (trials recorded, puts served);
* :class:`Gauge` — a last-wins float (uptime, queue depth);
* :class:`~repro.telemetry.moments.RunningMoments` — streaming
  mean/var/min/max, exact and mergeable;
* :class:`~repro.telemetry.sketch.QuantileSketch` — streaming
  quantiles within a certified rank-error bound, mergeable.

``snapshot()`` emits a plain-JSON document (schema
``repro-telemetry/1``), ``restore()`` rebuilds the registry from one,
and ``merge()`` folds another registry in series-by-series — counters
add, gauges last-win, moments and sketches merge exactly as their
streams concatenated.  Snapshots are deterministic (series sorted by
identity) so two registries fed the same stream serialise identically.

The registry itself is not synchronised; callers that fold from
several threads hold their own lock (the cluster does).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

from ..errors import ExperimentError
from .moments import RunningMoments
from .sketch import DEFAULT_K, QuantileSketch

__all__ = ["Counter", "Gauge", "MetricRegistry", "SCHEMA", "series_id"]

#: Snapshot document schema tag; bump on incompatible layout changes.
SCHEMA = "repro-telemetry/1"

Labels = Tuple[Tuple[str, str], ...]
Metric = Union["Counter", "Gauge", RunningMoments, QuantileSketch]


class Counter:
    """A monotone integer series member."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ExperimentError(f"counter increment must be >= 0, got {amount}")
        self.value += int(amount)

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A last-written-wins float series member."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


def _freeze_labels(labels: Mapping[str, object]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_id(name: str, labels: Labels = ()) -> str:
    """Canonical display identity, ``name{a=b,c=d}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


_TYPE_NAMES = {
    Counter: "counter",
    Gauge: "gauge",
    RunningMoments: "moments",
    QuantileSketch: "sketch",
}


class MetricRegistry:
    """Labeled metric series with snapshot/merge/restore."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Labels], Metric] = {}

    # -- get-or-create accessors ------------------------------------------

    def _get_or_create(self, name: str, labels: Labels, factory) -> Metric:
        key = (str(name), labels)
        metric = self._series.get(key)
        if metric is None:
            metric = factory()
            self._series[key] = metric
            return metric
        expected = factory().__class__
        if not isinstance(metric, expected):
            raise ExperimentError(
                f"series {series_id(*key)!r} is a "
                f"{_TYPE_NAMES[type(metric)]}, not a {_TYPE_NAMES[expected]}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get_or_create(name, _freeze_labels(labels), Counter)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get_or_create(name, _freeze_labels(labels), Gauge)

    def moments(self, name: str, **labels: object) -> RunningMoments:
        return self._get_or_create(name, _freeze_labels(labels), RunningMoments)

    def sketch(
        self, name: str, k: int = DEFAULT_K, **labels: object
    ) -> QuantileSketch:
        return self._get_or_create(
            name, _freeze_labels(labels), lambda: QuantileSketch(k=k)
        )

    # -- introspection ----------------------------------------------------

    def get(self, name: str, **labels: object) -> Optional[Metric]:
        """The series if it exists, else None (never creates)."""
        return self._series.get((str(name), _freeze_labels(labels)))

    def series(self) -> Iterator[Tuple[str, Dict[str, str], Metric]]:
        """Every ``(name, labels, metric)``, sorted by identity."""
        for (name, labels), metric in sorted(
            self._series.items(), key=lambda item: series_id(*item[0])
        ):
            yield name, dict(labels), metric

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._series)

    # -- merge ------------------------------------------------------------

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other`` in: counters add, gauges last-win, moments and
        sketches merge as if their streams had been concatenated."""
        for (name, labels), theirs in other._series.items():
            if isinstance(theirs, Counter):
                self._get_or_create(name, labels, Counter).inc(theirs.value)
            elif isinstance(theirs, Gauge):
                self._get_or_create(name, labels, Gauge).set(theirs.value)
            elif isinstance(theirs, RunningMoments):
                self._get_or_create(name, labels, RunningMoments).merge(theirs)
            elif isinstance(theirs, QuantileSketch):
                mine = self._get_or_create(
                    name, labels, lambda k=theirs.k: QuantileSketch(k=k)
                )
                mine.merge(theirs)
            else:  # pragma: no cover - registry only holds the four types
                raise ExperimentError(f"unmergeable metric type {type(theirs)!r}")

    # -- persistence ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-JSON document of every series (deterministic order)."""
        metrics = []
        for name, labels, metric in self.series():
            entry: Dict[str, object] = {
                "name": name,
                "labels": labels,
                "type": _TYPE_NAMES[type(metric)],
            }
            if isinstance(metric, (Counter, Gauge)):
                entry["value"] = metric.value
            elif isinstance(metric, RunningMoments):
                entry["state"] = metric.to_dict()
                entry["std"] = metric.std()
            else:
                entry["state"] = metric.to_dict()
                entry["rank_error"] = metric.rank_error
            metrics.append(entry)
        return {"schema": SCHEMA, "metrics": metrics}

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    @classmethod
    def restore(cls, data: Mapping[str, object]) -> "MetricRegistry":
        """Rebuild a registry from a :meth:`snapshot` document."""
        if data.get("schema") != SCHEMA:
            raise ExperimentError(
                f"unknown telemetry schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        registry = cls()
        try:
            for entry in data["metrics"]:
                name = str(entry["name"])
                labels = _freeze_labels(entry["labels"])
                kind = entry["type"]
                if kind == "counter":
                    registry._get_or_create(name, labels, Counter).inc(
                        int(entry["value"])
                    )
                elif kind == "gauge":
                    registry._get_or_create(name, labels, Gauge).set(
                        float(entry["value"])
                    )
                elif kind == "moments":
                    registry._series[(name, labels)] = RunningMoments.from_dict(
                        entry["state"]
                    )
                elif kind == "sketch":
                    registry._series[(name, labels)] = QuantileSketch.from_dict(
                        entry["state"]
                    )
                else:
                    raise ExperimentError(f"unknown metric type {kind!r}")
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed telemetry snapshot: {exc}") from exc
        return registry

    @classmethod
    def from_json(cls, text: str) -> "MetricRegistry":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"unparseable telemetry snapshot: {exc}") from exc
        return cls.restore(data)
