"""Mergeable rank-error-bounded quantile sketch, pure python.

:class:`QuantileSketch` summarises a stream of floats in
``O(k log(n/k))`` memory and answers any quantile to within a *rank*
error the sketch tracks about itself.  It is the deterministic
compactor scheme (MRL/KLL family): items live in levels, level ``h``
items each standing for ``2**h`` original observations.  When a level
overflows its ``k``-slot buffer, the buffer is sorted and every other
element is promoted with doubled weight — a *compaction*.  One
compaction of weight-``w`` items perturbs any rank query by at most
``w``: keeping even-indexed elements can only overestimate a rank (by
``<= w``), odd-indexed only underestimate.  The sketch alternates
between the two deterministically, always picking the direction used
less so far, which keeps the two error budgets balanced; the advertised
bound is therefore

    rank_error = sum over levels of max(n_even, n_odd) * 2**h

an integer number of ranks, *certified* — the property tests assert
every quantile lands inside the exact data's ``±rank_error`` rank
window.  Streams of up to ``k`` values have had no compaction and are
answered exactly.

Determinism (no RNG) keeps campaign resume bit-identical: folding the
same trial stream in the same order always yields the same sketch.
Merging adds the two error budgets level-wise and is itself order
deterministic, with ``merge(a, b)`` within the combined bound of the
concatenated stream (also property-tested).

Everything is plain attributes: sketches pickle across process pools
and serialise to JSON (floats round-trip through ``repr`` exactly) for
the checkpoint sidecar and the live-cluster snapshot emitter.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ExperimentError

__all__ = ["QuantileSketch", "DEFAULT_K"]

#: Default compactor width: streams up to this size are exact, and the
#: rank-error fraction at 10**6 observations stays around 1-2%.
DEFAULT_K = 512


class _Level:
    """One compactor level: a buffer plus its error bookkeeping."""

    __slots__ = ("buffer", "n_even", "n_odd")

    def __init__(self) -> None:
        self.buffer: List[float] = []
        self.n_even = 0  # compactions that kept even indices (rank over-estimates)
        self.n_odd = 0  # compactions that kept odd indices (rank under-estimates)


class QuantileSketch:
    """Streaming quantiles with a certified rank-error bound.

    Args:
        k: Compactor width. Larger is more accurate and bigger; the
            first ``k`` observations are summarised exactly.

    >>> sketch = QuantileSketch(k=64)
    >>> for value in range(1000):
    ...     sketch.add(float(value))
    >>> abs(sketch.quantile(0.5) - 500) <= sketch.rank_error
    True
    """

    def __init__(self, k: int = DEFAULT_K):
        if k < 8:
            raise ExperimentError(f"sketch width k must be >= 8, got {k}")
        self.k = int(k)
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._levels: List[_Level] = [_Level()]

    # -- folding ----------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one observation."""
        value = float(value)
        if math.isnan(value):
            raise ExperimentError("cannot fold NaN into QuantileSketch")
        self.count += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self._levels[0].buffer.append(value)
        if len(self._levels[0].buffer) >= self.k:
            self._compact(0)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _compact(self, h: int) -> None:
        """Promote half of level ``h`` to level ``h+1`` (cascading)."""
        level = self._levels[h]
        level.buffer.sort()
        # An odd element stays behind at its own level, error-free.
        leftover: Optional[float] = None
        if len(level.buffer) % 2:
            leftover = level.buffer.pop()
        # Alternate deterministically, always topping up the smaller
        # budget: the bound is max(n_even, n_odd) * 2**h per level.
        if level.n_even <= level.n_odd:
            start = 0
            level.n_even += 1
        else:
            start = 1
            level.n_odd += 1
        promoted = level.buffer[start::2]
        level.buffer = [] if leftover is None else [leftover]
        if h + 1 >= len(self._levels):
            self._levels.append(_Level())
        upper = self._levels[h + 1].buffer
        upper.extend(promoted)
        if len(upper) >= self.k:
            self._compact(h + 1)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` in; the rank-error budgets add level-wise."""
        if other.count == 0:
            return
        self.count += other.count
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum
        while len(self._levels) < len(other._levels):
            self._levels.append(_Level())
        for h, theirs in enumerate(other._levels):
            mine = self._levels[h]
            mine.buffer.extend(theirs.buffer)
            mine.n_even += theirs.n_even
            mine.n_odd += theirs.n_odd
        # Re-establish the capacity invariant bottom-up; a compaction
        # may push level h+1 over, which the loop reaches next.
        for h in range(len(self._levels)):
            while len(self._levels[h].buffer) >= self.k:
                self._compact(h)

    # -- queries ----------------------------------------------------------

    @property
    def rank_error(self) -> int:
        """Certified bound, in ranks: any quantile answer's true rank is
        within ``rank_error`` of the requested one.  0 = exact."""
        return sum(
            max(level.n_even, level.n_odd) << h
            for h, level in enumerate(self._levels)
        )

    def error_fraction(self) -> float:
        """The rank bound as a fraction of the stream (0.0 = exact)."""
        if self.count == 0:
            return 0.0
        return self.rank_error / self.count

    def _weighted(self) -> List[Tuple[float, int]]:
        pairs: List[Tuple[float, int]] = []
        for h, level in enumerate(self._levels):
            weight = 1 << h
            pairs.extend((value, weight) for value in level.buffer)
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def quantile(self, p: float) -> float:
        """Estimated p-quantile (true rank within ``rank_error``)."""
        if not 0.0 <= p <= 1.0:
            raise ExperimentError(f"quantile {p} outside [0, 1]")
        if self.count == 0:
            raise ExperimentError("quantile of an empty sketch")
        if p == 0.0:
            return self.minimum
        if p == 1.0:
            return self.maximum
        target = p * self.count
        cumulative = 0
        pairs = self._weighted()
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= target:
                return value
        return pairs[-1][0]

    def quantiles(self, ps: Iterable[float]) -> List[float]:
        """Several quantiles in one sorted pass."""
        return [self.quantile(p) for p in ps]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(k={self.k}, count={self.count}, "
            f"rank_error={self.rank_error}, levels={len(self._levels)})"
        )

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "levels": [
                {"buf": list(level.buffer), "even": level.n_even, "odd": level.n_odd}
                for level in self._levels
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuantileSketch":
        try:
            sketch = cls(k=int(data["k"]))
            sketch.count = int(data["count"])
            sketch.minimum = None if data["min"] is None else float(data["min"])
            sketch.maximum = None if data["max"] is None else float(data["max"])
            sketch._levels = []
            for row in data["levels"]:
                level = _Level()
                level.buffer = [float(v) for v in row["buf"]]
                level.n_even = int(row["even"])
                level.n_odd = int(row["odd"])
                sketch._levels.append(level)
            if not sketch._levels:
                sketch._levels.append(_Level())
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed sketch payload: {exc}") from exc
        return sketch

    # _Level carries __slots__; route pickle through the dict form.
    def __reduce__(self):
        return (_restore_sketch, (self.to_dict(),))


def _restore_sketch(data: Dict[str, object]) -> QuantileSketch:
    return QuantileSketch.from_dict(data)
