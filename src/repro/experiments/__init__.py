"""Evaluation harness: plans, backends, trials, CDFs, figure drivers.

The layer is split in three:

* **Declarative plans** (:mod:`repro.experiments.plan`) — an
  :class:`ExperimentPlan` names topology/demand/variants by registry
  key and expands ``reps x variants`` into picklable
  :class:`ScenarioSpec` objects.
* **Execution backends** (:mod:`repro.experiments.backends`) — a
  :class:`SerialBackend` or :class:`ProcessPoolBackend` turns scenarios
  into :class:`TrialResult` rows; all backends are bit-identical, only
  wall-clock differs. Backends are persistent (a pool is spawned once
  and reused until ``close()``) and can stream results as they
  complete.
* **Campaigns** (:mod:`repro.experiments.campaign`) — a
  :class:`Campaign` runs many named plans over one shared backend,
  checkpointing every completed trial to a
  :class:`~repro.experiments.sink.JsonLinesSink` so interrupted runs
  resume bit-identically.
* **Figure drivers** (:mod:`repro.experiments.figures`) — every
  table/figure of the paper maps to one driver; see DESIGN.md for the
  index and EXPERIMENTS.md for recorded paper-vs-measured values.

The legacy factory-based :func:`run_experiment` remains for scenarios
the registries cannot express.
"""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    resolve_backend,
)
from .campaign import Campaign, CampaignPaused, CampaignResult, scenario_key
from .cdf import EmpiricalCdf, SummaryStats, session_grid
from .figures import (
    PAPER,
    AblationResult,
    Figure3Result,
    FigureCdfResult,
    IslandsResult,
    OverheadResult,
    ScalingResult,
    StrongCostResult,
    Table1Result,
    Table2Result,
    UniformTopologiesResult,
    ablation_experiment,
    figure3,
    figure5,
    figure6,
    figure_cdf,
    islands_experiment,
    overhead_experiment,
    scaling_experiment,
    strong_cost_experiment,
    table1_orderings,
    table2_dynamic,
    uniform_topologies,
)
from .figures import (
    CAMPAIGNS,
    build_campaign,
    figure_cdf_plan,
    figures_campaign,
    robustness_campaign,
    scaling_campaign,
    scaling_plans,
    smoke_campaign,
)
from .sink import (
    CheckpointStatus,
    JsonLinesSink,
    ResultSink,
    StreamingSink,
    default_sidecar,
    sink_status,
    stream_status,
)
from .harness import (
    DEFAULT_TOP_FRACTION,
    LiveTrial,
    RepSeeds,
    TrialSpec,
    rep_seeds,
    run_experiment,
    run_trial,
)
from .plan import ExperimentPlan, ScenarioSpec, run_plan, run_scenario
from .results import ExperimentResult, TrialResult, VariantSeries
from .scenarios import (
    DEMANDS,
    FAULTS,
    TOPOLOGIES,
    VARIANTS,
    build_demand,
    build_faults,
    build_system,
    build_topology,
    build_variant,
)
from .tables import format_kv, format_table

__all__ = [
    "EmpiricalCdf",
    "SummaryStats",
    "session_grid",
    "ExperimentResult",
    "TrialResult",
    "VariantSeries",
    "TrialSpec",
    "run_trial",
    "run_experiment",
    "DEFAULT_TOP_FRACTION",
    "RepSeeds",
    "rep_seeds",
    "LiveTrial",
    # declarative pipeline
    "ExperimentPlan",
    "ScenarioSpec",
    "run_plan",
    "run_scenario",
    "figure_cdf_plan",
    "scaling_plans",
    # execution backends
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    # campaigns & checkpoint sinks
    "Campaign",
    "CampaignResult",
    "CampaignPaused",
    "scenario_key",
    "JsonLinesSink",
    "StreamingSink",
    "ResultSink",
    "sink_status",
    "stream_status",
    "CheckpointStatus",
    "default_sidecar",
    "CAMPAIGNS",
    "build_campaign",
    "scaling_campaign",
    "figures_campaign",
    "robustness_campaign",
    "smoke_campaign",
    "format_table",
    "format_kv",
    # figure drivers
    "PAPER",
    "figure_cdf",
    "figure5",
    "figure6",
    "figure3",
    "table1_orderings",
    "table2_dynamic",
    "scaling_experiment",
    "uniform_topologies",
    "islands_experiment",
    "overhead_experiment",
    "ablation_experiment",
    "strong_cost_experiment",
    "FigureCdfResult",
    "Figure3Result",
    "Table1Result",
    "Table2Result",
    "ScalingResult",
    "UniformTopologiesResult",
    "IslandsResult",
    "OverheadResult",
    "AblationResult",
    "StrongCostResult",
    # scenario registry
    "TOPOLOGIES",
    "DEMANDS",
    "VARIANTS",
    "FAULTS",
    "build_topology",
    "build_demand",
    "build_variant",
    "build_faults",
    "build_system",
]
