"""Evaluation harness: trials, repetitions, CDFs, per-figure drivers.

Every table/figure of the paper maps to one driver in
:mod:`repro.experiments.figures`; see DESIGN.md for the index and
EXPERIMENTS.md for recorded paper-vs-measured values.
"""

from .cdf import EmpiricalCdf, SummaryStats, session_grid
from .figures import (
    PAPER,
    AblationResult,
    Figure3Result,
    FigureCdfResult,
    IslandsResult,
    OverheadResult,
    ScalingResult,
    StrongCostResult,
    Table1Result,
    Table2Result,
    UniformTopologiesResult,
    ablation_experiment,
    figure3,
    figure5,
    figure6,
    figure_cdf,
    islands_experiment,
    overhead_experiment,
    scaling_experiment,
    strong_cost_experiment,
    table1_orderings,
    table2_dynamic,
    uniform_topologies,
)
from .harness import (
    DEFAULT_TOP_FRACTION,
    TrialSpec,
    run_experiment,
    run_trial,
)
from .results import ExperimentResult, TrialResult, VariantSeries
from .scenarios import (
    DEMANDS,
    TOPOLOGIES,
    VARIANTS,
    build_demand,
    build_system,
    build_topology,
    build_variant,
)
from .tables import format_kv, format_table

__all__ = [
    "EmpiricalCdf",
    "SummaryStats",
    "session_grid",
    "ExperimentResult",
    "TrialResult",
    "VariantSeries",
    "TrialSpec",
    "run_trial",
    "run_experiment",
    "DEFAULT_TOP_FRACTION",
    "format_table",
    "format_kv",
    # figure drivers
    "PAPER",
    "figure_cdf",
    "figure5",
    "figure6",
    "figure3",
    "table1_orderings",
    "table2_dynamic",
    "scaling_experiment",
    "uniform_topologies",
    "islands_experiment",
    "overhead_experiment",
    "ablation_experiment",
    "strong_cost_experiment",
    "FigureCdfResult",
    "Figure3Result",
    "Table1Result",
    "Table2Result",
    "ScalingResult",
    "UniformTopologiesResult",
    "IslandsResult",
    "OverheadResult",
    "AblationResult",
    "StrongCostResult",
    # scenario registry
    "TOPOLOGIES",
    "DEMANDS",
    "VARIANTS",
    "build_topology",
    "build_demand",
    "build_variant",
    "build_system",
]
