"""Empirical CDFs and summary statistics.

Figures 5 and 6 of the paper are CDFs of sessions-to-consistency over
repeated experiments; :class:`EmpiricalCdf` provides exactly the
operations the harness and the ASCII plots need (evaluation on a grid,
quantiles, means), with censored samples (runs that never converged
within the horizon) tracked explicitly rather than silently dropped.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ExperimentError


@dataclass(frozen=True)
class SummaryStats:
    """Mean / spread / quantiles of a sample set."""

    count: int
    censored: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    def row(self) -> Tuple[object, ...]:
        """Tuple form used by the table renderer."""
        return (
            self.count,
            self.censored,
            f"{self.mean:.3f}",
            f"{self.std:.3f}",
            f"{self.median:.3f}",
            f"{self.p90:.3f}",
            f"{self.maximum:.3f}",
        )


class EmpiricalCdf:
    """Empirical distribution of completion times.

    Args:
        samples: Observed values; ``None`` entries are *censored*
            (the event did not happen within the horizon) and are
            excluded from the distribution but counted.
    """

    def __init__(self, samples: Iterable[Optional[float]]):
        values: List[float] = []
        censored = 0
        for sample in samples:
            if sample is None:
                censored += 1
            else:
                values.append(float(sample))
        self._values = sorted(values)
        self.censored = censored

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)

    def evaluate(self, x: float) -> float:
        """P(sample <= x) among uncensored samples."""
        if not self._values:
            raise ExperimentError("CDF of an empty sample set")
        return bisect.bisect_right(self._values, x) / len(self._values)

    def on_grid(self, grid: Sequence[float]) -> List[float]:
        """CDF evaluated at each grid point (the plot series)."""
        return [self.evaluate(x) for x in grid]

    def quantile(self, p: float) -> float:
        """Inverse CDF via linear interpolation."""
        if not 0 <= p <= 1:
            raise ExperimentError(f"quantile {p} outside [0, 1]")
        if not self._values:
            raise ExperimentError("quantile of an empty sample set")
        if len(self._values) == 1:
            return self._values[0]
        index = p * (len(self._values) - 1)
        low = int(index)
        high = min(low + 1, len(self._values) - 1)
        weight = index - low
        result = self._values[low] * (1 - weight) + self._values[high] * weight
        # Clamp: float rounding must not push the interpolant past the
        # bracketing samples (e.g. 63*(1-w) + 63*w can exceed 63 by 1 ulp).
        return min(max(result, self._values[low]), self._values[high])

    def mean(self) -> float:
        if not self._values:
            raise ExperimentError("mean of an empty sample set")
        return sum(self._values) / len(self._values)

    def std(self) -> float:
        if len(self._values) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(
            sum((v - mu) ** 2 for v in self._values) / (len(self._values) - 1)
        )

    def summary(self) -> SummaryStats:
        """One-shot summary for tables."""
        if not self._values:
            raise ExperimentError("summary of an empty sample set")
        return SummaryStats(
            count=self.count,
            censored=self.censored,
            mean=self.mean(),
            std=self.std(),
            minimum=self._values[0],
            median=self.quantile(0.5),
            p90=self.quantile(0.9),
            maximum=self._values[-1],
        )


def session_grid(max_sessions: float = 12.0, step: float = 0.5) -> List[float]:
    """The x-axis of Figs. 5-6 (0 .. ~11 sessions)."""
    if step <= 0 or max_sessions <= 0:
        raise ExperimentError("grid parameters must be positive")
    count = int(round(max_sessions / step))
    return [round(i * step, 10) for i in range(count + 1)]
