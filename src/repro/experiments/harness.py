"""Experiment runner.

One *trial* = build a fresh random topology and demand assignment,
inject a write at a random replica, and run one protocol variant until
the write is everywhere (the paper's §5 procedure). The harness repeats
trials with derived seeds and — crucially — gives every variant the
*same* topology, demand, origin and timer streams within a repetition,
so variant comparisons are paired and low-variance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.config import ProtocolConfig
from ..core.metrics import mean_reach_time, reach_time
from ..core.system import ReplicationSystem
from ..demand.base import DemandModel
from ..errors import ExperimentError
from ..sim.rng import derive_seed
from ..topology.analysis import diameter as topo_diameter
from ..topology.graph import Topology
from .results import ExperimentResult, TrialResult, VariantSeries

#: Builds the repetition's topology from a derived seed.
TopologyFactory = Callable[[int], Topology]

#: Builds the repetition's demand model from the topology and a seed.
DemandFactory = Callable[[Topology, int], DemandModel]

#: Fraction of nodes counted as the "high demand" subset (Figs. 5-6).
DEFAULT_TOP_FRACTION = 0.1


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to run one repetition of one variant."""

    topology: Topology
    demand: DemandModel
    config: ProtocolConfig
    seed: int
    origin: int
    max_time: float = 80.0
    top_fraction: float = DEFAULT_TOP_FRACTION
    bridge_islands: bool = False
    island_percentile: float = 75.0
    loss: float = 0.0


def run_trial(spec: TrialSpec) -> Tuple[TrialResult, ReplicationSystem]:
    """Execute one trial; returns the measurements and the used system."""
    system = ReplicationSystem(
        topology=spec.topology,
        demand=spec.demand,
        config=spec.config,
        seed=spec.seed,
        loss=spec.loss,
    )
    if spec.bridge_islands:
        from ..core.islands import bridge_system

        bridge_system(system, percentile=spec.island_percentile)
    system.sim.trace.disable()
    system.start()
    update = system.inject_write(spec.origin)
    t0 = system.sim.now
    system.run_until_replicated(update.uid, max_time=spec.max_time)
    times = system.apply_times(update.uid)
    nodes = spec.topology.nodes
    top_nodes = spec.demand.top_fraction(nodes, spec.top_fraction, time=0.0)
    top1 = spec.demand.ranked(nodes, time=0.0)[0]
    trial = TrialResult(
        rep=-1,
        origin=spec.origin,
        time_all=reach_time(times, nodes, t0),
        time_top=reach_time(times, top_nodes, t0),
        time_top1=reach_time(times, [top1], t0),
        mean_time=mean_reach_time(times, nodes, t0),
        diameter=topo_diameter(spec.topology),
        messages=system.network.counters.messages_sent,
        bytes_sent=system.network.counters.bytes_sent,
    )
    return trial, system


def run_experiment(
    name: str,
    variants: Mapping[str, ProtocolConfig],
    topology_factory: TopologyFactory,
    demand_factory: DemandFactory,
    reps: int = 50,
    seed: int = 0,
    max_time: float = 80.0,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    loss: float = 0.0,
    params: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Run ``reps`` paired repetitions of every variant.

    For repetition *i*, every variant sees the same topology (seed
    ``derive(seed, 'topo', i)``), demand (``derive(seed, 'demand', i)``),
    origin replica and simulator seed — only the protocol differs.
    """
    if reps < 1:
        raise ExperimentError(f"reps must be >= 1, got {reps}")
    if not variants:
        raise ExperimentError("no variants given")
    result = ExperimentResult(
        name=name,
        params={
            "reps": reps,
            "seed": seed,
            "max_time": max_time,
            "top_fraction": top_fraction,
            "loss": loss,
            **(params or {}),
        },
    )
    for rep in range(reps):
        topo_seed = derive_seed(seed, f"topo/{rep}")
        demand_seed = derive_seed(seed, f"demand/{rep}")
        sim_seed = derive_seed(seed, f"sim/{rep}")
        topology = topology_factory(topo_seed)
        demand = demand_factory(topology, demand_seed)
        origin_rng = random.Random(derive_seed(seed, f"origin/{rep}"))
        origin = origin_rng.choice(list(topology.nodes))
        for variant_name, config in variants.items():
            trial, _system = run_trial(
                TrialSpec(
                    topology=topology,
                    demand=demand,
                    config=config,
                    seed=sim_seed,
                    origin=origin,
                    max_time=max_time,
                    top_fraction=top_fraction,
                    loss=loss,
                )
            )
            result.variant(variant_name).add(
                TrialResult(
                    rep=rep,
                    origin=trial.origin,
                    time_all=trial.time_all,
                    time_top=trial.time_top,
                    time_top1=trial.time_top1,
                    mean_time=trial.mean_time,
                    diameter=trial.diameter,
                    messages=trial.messages,
                    bytes_sent=trial.bytes_sent,
                )
            )
    return result
