"""Experiment runner.

One *trial* = build a fresh random topology and demand assignment,
inject a write at a random replica, and run one protocol variant until
the write is everywhere (the paper's §5 procedure). The harness repeats
trials with derived seeds and — crucially — gives every variant the
*same* topology, demand, origin and timer streams within a repetition,
so variant comparisons are paired and low-variance.

Two front ends share this machinery:

* :class:`~repro.experiments.plan.ExperimentPlan` — the declarative,
  picklable path: scenarios are named by registry key, expand into
  :class:`~repro.experiments.plan.ScenarioSpec` objects and run on any
  :class:`~repro.experiments.backends.ExecutionBackend` (serial or
  process pool). Prefer this for anything registry-expressible.
* :func:`run_experiment` — the legacy factory-based path, kept for
  custom topologies/demands that are not in the registries. It is a
  thin wrapper over the same repetition expansion and backend protocol;
  live objects restrict it to in-process backends unless they pickle.

Both derive per-repetition seeds with :func:`rep_seeds`, so the two
paths produce bit-identical results for equivalent inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Mapping, NamedTuple, Optional, Tuple

from ..core.config import ProtocolConfig
from ..core.metrics import mean_reach_time, post_heal_convergence_time, reach_time
from ..core.system import ReplicationSystem
from ..demand.base import DemandModel
from ..errors import ExperimentError
from ..faults.process import FaultProcess, prepare_demand
from ..faults.schedule import FaultSchedule
from ..placement.controller import PlacementController
from ..placement.metrics import capacity_satisfied_series, placement_traffic
from ..placement.policies import PlacementSetup
from ..sim.rng import derive_seed
from ..topology.analysis import diameter as topo_diameter
from ..topology.graph import Topology
from .results import ExperimentResult, TrialResult

#: Builds the repetition's topology from a derived seed.
TopologyFactory = Callable[[int], Topology]

#: Builds the repetition's demand model from the topology and a seed.
DemandFactory = Callable[[Topology, int], DemandModel]

#: Fraction of nodes counted as the "high demand" subset (Figs. 5-6).
DEFAULT_TOP_FRACTION = 0.1


class RepSeeds(NamedTuple):
    """The five independent seed streams of one repetition."""

    topology: int
    demand: int
    simulator: int
    origin: int
    faults: int


def rep_seeds(seed: int, rep: int) -> RepSeeds:
    """Derive repetition ``rep``'s seeds from the master ``seed``.

    This is the single source of truth for the derivation scheme; the
    declarative plan layer and the legacy factory loop both use it, so
    the same (seed, rep) always reproduces the same trial no matter
    which path — or which process — runs it. The faults stream is
    independent of the others, so adding a fault regime to a sweep never
    perturbs the topology, demand, simulator or origin of a repetition.
    """
    return RepSeeds(
        topology=derive_seed(seed, f"topo/{rep}"),
        demand=derive_seed(seed, f"demand/{rep}"),
        simulator=derive_seed(seed, f"sim/{rep}"),
        origin=derive_seed(seed, f"origin/{rep}"),
        faults=derive_seed(seed, f"faults/{rep}"),
    )


@dataclass(frozen=True)
class TrialSpec:
    """Everything needed to run one repetition of one variant."""

    topology: Topology
    demand: DemandModel
    config: ProtocolConfig
    seed: int
    origin: int
    max_time: float = 80.0
    top_fraction: float = DEFAULT_TOP_FRACTION
    bridge_islands: bool = False
    island_percentile: float = 75.0
    loss: float = 0.0
    faults: Optional[FaultSchedule] = None
    placement: Optional[PlacementSetup] = None


def run_trial(spec: TrialSpec) -> Tuple[TrialResult, ReplicationSystem]:
    """Execute one trial; returns the measurements and the used system.

    With ``spec.faults``, the schedule is armed on the simulator before
    the run starts (demand shocks wrap the demand model first — see
    :func:`repro.faults.process.prepare_demand`), and the trial
    additionally records the post-heal convergence time when the
    schedule contains a healed partition.

    With ``spec.placement``, the trial measures the capacity-aware
    satisfaction area (and, unless the regime is ``"static"``, runs a
    :class:`~repro.placement.controller.PlacementController` at the
    origin that spawns/retires replicas from live demand). Placement
    trials keep simulating to ``max_time`` after convergence so the
    scale-down half of the trajectory is observed, and all convergence
    metrics are computed over the *base* topology nodes — spawned
    copies accelerate serving capacity, they do not move the goalposts.
    """
    demand = prepare_demand(spec.demand, spec.faults)
    system = ReplicationSystem(
        topology=spec.topology,
        demand=demand,
        config=spec.config,
        seed=spec.seed,
        loss=spec.loss,
    )
    if spec.bridge_islands:
        from ..core.islands import bridge_system

        bridge_system(system, percentile=spec.island_percentile)
    if spec.faults is not None and spec.faults.events:
        system.fault_process = FaultProcess(system, spec.faults)
    # Trial metrics consume the topic bus and traffic counters only —
    # no trace category at all (METRIC_TRACE_CATEGORIES documents what
    # the optional trace-reading helpers need) — so sweeps turn the
    # tracer off wholesale: a disabled tracer costs one attribute check
    # per would-be record.
    system.sim.trace.disable()
    # Captured before the run: a placement controller grows the (shared)
    # topology object as it spawns copies.
    base_nodes = spec.topology.nodes
    diameter = topo_diameter(spec.topology)
    controller = None
    if spec.placement is not None and spec.placement.policy != "static":
        controller = PlacementController(
            system, spec.placement, home=spec.origin, sites=base_nodes
        )
    system.start()
    if controller is not None:
        controller.start()
    update = system.inject_write(spec.origin)
    t0 = system.sim.now
    system.run_until_replicated(update.uid, max_time=spec.max_time)
    if spec.placement is not None and system.sim.now < spec.max_time:
        # Keep the demand/placement dynamics running to the horizon so
        # the satisfaction series and scale-down events are complete.
        system.run_until(spec.max_time)
    times = system.apply_times(update.uid)
    nodes = base_nodes
    top_nodes = spec.demand.top_fraction(nodes, spec.top_fraction, time=0.0)
    top1 = spec.demand.ranked(nodes, time=0.0)[0]
    time_post_heal = None
    time_top_shocked = None
    if spec.faults is not None:
        heal_at = spec.faults.last_heal_time()
        if heal_at is not None:
            time_post_heal = post_heal_convergence_time(times, nodes, heal_at)
        shock_at = spec.faults.last_shock_time()
        if shock_at is not None:
            # Rank by the *post-shock* demand surface (system.demand is
            # the ShockableDemand wrapper here): without this, no sweep
            # metric could tell whether a variant re-routed toward the
            # newly hot region — the point of the demand_shock regime.
            shocked_top = system.demand.top_fraction(
                nodes, spec.top_fraction, time=shock_at
            )
            time_top_shocked = reach_time(times, shocked_top, t0)
    satisfied_area = None
    replicas_spawned = None
    replicas_retired = None
    replicas_peak = None
    placement_bytes = None
    if spec.placement is not None:
        horizon = max(1, int(round(spec.max_time - t0)))
        events = controller.events if controller is not None else ()
        series = capacity_satisfied_series(
            times,
            system.demand,
            horizon,
            nodes,
            spec.placement.capacity,
            events,
            t0,
        )
        satisfied_area = sum(series)
        replicas_spawned = controller.spawned_total if controller else 0
        replicas_retired = controller.retired_total if controller else 0
        replicas_peak = controller.peak_copies if controller else 0
        placement_bytes = placement_traffic(system.network).bytes
    trial = TrialResult(
        rep=-1,
        origin=spec.origin,
        time_all=reach_time(times, nodes, t0),
        time_top=reach_time(times, top_nodes, t0),
        time_top1=reach_time(times, [top1], t0),
        mean_time=mean_reach_time(times, nodes, t0),
        diameter=diameter,
        messages=system.network.counters.messages_sent,
        bytes_sent=system.network.counters.bytes_sent,
        n_nodes=len(nodes),
        time_post_heal=time_post_heal,
        time_top_shocked=time_top_shocked,
        satisfied_area=satisfied_area,
        replicas_spawned=replicas_spawned,
        replicas_retired=replicas_retired,
        replicas_peak=replicas_peak,
        placement_bytes=placement_bytes,
    )
    return trial, system


@dataclass(frozen=True)
class LiveTrial:
    """A backend work unit wrapping an already-built :class:`TrialSpec`.

    The declarative path ships :class:`~repro.experiments.plan.ScenarioSpec`
    objects to workers; this is its live-object counterpart used by the
    legacy factory loop. It satisfies the same ``.run()`` contract, so a
    backend does not care which kind of unit it executes (a process pool
    additionally needs the payload to pickle, which live topologies and
    demand models built from plain data do).
    """

    rep: int
    spec: TrialSpec

    def run(self) -> TrialResult:
        trial, _system = run_trial(self.spec)
        return replace(trial, rep=self.rep)


def run_experiment(
    name: str,
    variants: Mapping[str, ProtocolConfig],
    topology_factory: TopologyFactory,
    demand_factory: DemandFactory,
    reps: int = 50,
    seed: int = 0,
    max_time: float = 80.0,
    top_fraction: float = DEFAULT_TOP_FRACTION,
    loss: float = 0.0,
    params: Optional[Dict[str, object]] = None,
    backend: Optional["ExecutionBackend"] = None,
) -> ExperimentResult:
    """Run ``reps`` paired repetitions of every variant.

    For repetition *i*, every variant sees the same topology (seed
    ``derive(seed, 'topo', i)``), demand (``derive(seed, 'demand', i)``),
    origin replica and simulator seed — only the protocol differs.

    This is the factory-based compatibility front end: it expands the
    grid into :class:`LiveTrial` units and hands them to ``backend``
    (serial by default). Registry-expressible experiments should build
    an :class:`~repro.experiments.plan.ExperimentPlan` instead, whose
    picklable scenarios parallelise without restrictions.
    """
    if reps < 1:
        raise ExperimentError(f"reps must be >= 1, got {reps}")
    if not variants:
        raise ExperimentError("no variants given")

    def expand() -> Iterator[LiveTrial]:
        # A generator, not a list: a serial backend consumes it rep by
        # rep, so only one repetition's topology/demand are alive at a
        # time even for paper-fidelity reps counts.
        for rep in range(reps):
            seeds = rep_seeds(seed, rep)
            topology = topology_factory(seeds.topology)
            demand = demand_factory(topology, seeds.demand)
            origin = random.Random(seeds.origin).choice(list(topology.nodes))
            for config in variants.values():
                yield LiveTrial(
                    rep=rep,
                    spec=TrialSpec(
                        topology=topology,
                        demand=demand,
                        config=config,
                        seed=seeds.simulator,
                        origin=origin,
                        max_time=max_time,
                        top_fraction=top_fraction,
                        loss=loss,
                    ),
                )

    if backend is None:
        from .backends import SerialBackend

        backend = SerialBackend()
    # Stream results and place them by input index: the serial backend
    # still consumes the generator lazily (one repetition's live objects
    # at a time), a pool may complete chunks out of order, and either
    # way the assembled list is in expansion order. The grid size is
    # known up front, so no materialised spec list is needed.
    total = reps * len(variants)
    slots: List[Optional[TrialResult]] = [None] * total
    runner = getattr(backend, "run_trials_iter", None)
    if runner is None:  # pre-lifecycle third-party backend
        for index, trial in enumerate(backend.run_trials(expand())):
            slots[index] = trial
    else:
        for index, trial in runner(expand()):
            slots[index] = trial
    if any(trial is None for trial in slots):
        raise ExperimentError(
            f"backend {backend.name} returned fewer trials than the "
            f"{total}-trial grid"
        )
    trials = slots
    variant_names = [name_ for _ in range(reps) for name_ in variants]
    result = ExperimentResult(
        name=name,
        params={
            "reps": reps,
            "seed": seed,
            "max_time": max_time,
            "top_fraction": top_fraction,
            "loss": loss,
            **(params or {}),
        },
    )
    for variant_name, trial in zip(variant_names, trials):
        result.variant(variant_name).add(trial)
    return result
