"""Streaming result sinks: JSON-lines checkpoints for long runs.

A *sink* receives every completed trial the moment the backend yields
it, instead of waiting for the whole grid to finish. The JSON-lines
format makes the checkpoint crash-safe by construction: each line is a
self-contained record, appended and flushed as it happens, so a killed
campaign keeps every trial that was yielded and recorded — what is
lost is the in-flight work the backend had not yielded yet (a process
pool yields per completed *chunk*, so up to one chunk per worker) plus
at most one truncated final line, which :class:`JsonLinesSink`
tolerates when it loads.

Records are keyed by the scenario's stable identity
(``plan/rep=../faults=../variant=..`` — see
:meth:`~repro.experiments.plan.ScenarioSpec.key`). A resumed run asks
the sink which keys are already recorded, skips them, and splices the
stored :class:`~repro.experiments.results.TrialResult` rows back into
the assembled result. Floats round-trip through ``repr`` exactly, so a
resumed result is bit-identical to an uninterrupted one.

The file optionally starts with a single *header* record describing the
campaign (name, per-plan totals); ``repro campaign status`` reads
progress from the file alone, and a resume refuses a checkpoint whose
header belongs to a different campaign.

:class:`StreamingSink` extends the checkpoint with **O(1)-memory
aggregates**: every recorded trial is folded into a
:class:`~repro.telemetry.registry.MetricRegistry` of per-series
counters, running moments and quantile sketches, and the registry is
checkpointed to a JSON *sidecar* next to the trial log.  Resume
restores the aggregates from the sidecar and folds only the trials
recorded past its watermark — no re-read of the whole log — and
:func:`stream_status` answers ``repro campaign status`` by streaming
the file line-by-line without materialising a single
:class:`TrialResult`, so both stay O(1) in trial count.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Protocol, Tuple, runtime_checkable

from ..errors import ExperimentError
from ..telemetry.registry import MetricRegistry
from .plan import series_label
from .results import PathLike, TrialResult

#: Sidecar document schema tag; bump on incompatible layout changes.
SIDECAR_SCHEMA = "repro-telemetry-sidecar/1"


@runtime_checkable
class ResultSink(Protocol):
    """Checkpoint protocol: record completed trials, replay them later."""

    def record(self, key: str, trial: TrialResult) -> None:
        """Persist one completed trial under its stable scenario key."""
        ...

    def get(self, key: str) -> Optional[TrialResult]:
        """Return the recorded trial for ``key``, or None."""
        ...


class JsonLinesSink:
    """Append-only JSON-lines checkpoint file.

    Existing records are loaded eagerly on construction, so ``get`` is a
    dict lookup and a resumed run never re-executes a recorded scenario.
    The file handle is opened lazily on the first ``record`` and every
    record is flushed immediately — an interrupted run keeps everything
    it completed.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._fh = None
        self._trials: Dict[str, TrialResult] = {}
        self._header: Optional[Dict[str, object]] = None
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                # A kill mid-write leaves at most one truncated line;
                # everything parseable before it is still good.
                continue
            kind = row.get("kind")
            if kind == "header":
                self._header = {k: v for k, v in row.items() if k != "kind"}
            elif kind == "trial":
                try:
                    self._ingest_loaded(str(row["key"]), row["trial"])
                except (KeyError, TypeError) as exc:
                    raise ExperimentError(
                        f"malformed trial record in {self.path}: {exc}"
                    ) from exc

    def _ingest_loaded(self, key: str, payload: Dict[str, object]) -> None:
        """Absorb one trial record replayed from disk (subclass hook)."""
        self._trials[key] = TrialResult(**payload)

    # -- introspection ----------------------------------------------------

    @property
    def header(self) -> Optional[Dict[str, object]]:
        """The campaign header record, if the file carries one."""
        return self._header

    def __len__(self) -> int:
        return len(self._trials)

    def __contains__(self, key: str) -> bool:
        return key in self._trials

    def get(self, key: str) -> Optional[TrialResult]:
        return self._trials.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._trials)

    def counts_by_prefix(self) -> Dict[str, int]:
        """Recorded trials per plan (the segment before the ``::``)."""
        counts: Dict[str, int] = {}
        for key in self._trials:
            prefix = key.split("::", 1)[0]
            counts[prefix] = counts.get(prefix, 0) + 1
        return counts

    # -- writing ----------------------------------------------------------

    def _append(self, row: Dict[str, object]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()

    def write_header(self, meta: Dict[str, object]) -> None:
        """Record (or verify) the campaign identity this file belongs to.

        The first writer stamps the header; later opens verify that the
        checkpoint matches, so two different campaigns cannot silently
        interleave records in one file.
        """
        if self._header is not None:
            if self._header != meta:
                differing = sorted(
                    key
                    for key in set(self._header) | set(meta)
                    if self._header.get(key) != meta.get(key)
                )
                raise ExperimentError(
                    f"checkpoint {self.path} belongs to a different campaign "
                    f"(recorded {self._header.get('campaign', '?')!r}; "
                    f"differs in: {', '.join(differing)}); delete the file or "
                    "resume with the original parameters"
                )
            return
        self._append({"kind": "header", **meta})
        self._header = dict(meta)

    def record(self, key: str, trial: TrialResult) -> None:
        if key in self:
            return  # already checkpointed; keep the file append-only
        self._append({"kind": "trial", "key": key, "trial": asdict(trial)})
        self._trials[key] = trial

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def default_sidecar(path: PathLike) -> Path:
    """Where a checkpoint's telemetry sidecar lives by convention."""
    path = Path(path)
    return path.with_name(path.name + ".telemetry.json")


def _scenario_parts(key: str) -> Tuple[str, str]:
    """``(plan, series)`` from a checkpoint key.

    Keys look like ``plan::rep=0/faults=none/variant=demand`` (see
    :meth:`~repro.experiments.plan.ScenarioSpec.key`); unparseable keys
    fold into plan ``"?"`` / series ``"?"`` rather than raising, so one
    foreign record cannot poison a whole resume.
    """
    plan, sep, scenario = key.partition("::")
    if not sep:
        plan, scenario = "?", key
    fields = {"faults": "none", "placement": "none"}
    for segment in scenario.split("/"):
        name, eq, value = segment.partition("=")
        if eq:
            fields[name] = value
    variant = fields.get("variant")
    if variant is None:
        return plan, "?"
    return plan, series_label(variant, fields["faults"], fields["placement"])


#: TrialResult fields summarised as running moments, unconditionally
#: present (every trial carries them, though times may be null).
_MOMENT_FIELDS = (
    "time_all",
    "time_top",
    "time_top1",
    "mean_time",
    "messages",
    "bytes_sent",
    "time_post_heal",
    "time_top_shocked",
    "satisfied_area",
)

#: Fields whose full distribution matters (CDF figures, p95/p99 gates):
#: these additionally feed a quantile sketch per series.
_SKETCH_FIELDS = ("time_all", "time_top", "time_top1")


class StreamingSink(JsonLinesSink):
    """A :class:`JsonLinesSink` that keeps O(1)-memory aggregates.

    Every recorded trial folds into a :class:`MetricRegistry` of
    per-``(plan, series)`` counters, running moments and quantile
    sketches, and the registry checkpoints to an atomic JSON *sidecar*
    next to the trial log (every ``checkpoint_every`` records and on
    close).  A reopened sink restores the registry from the sidecar and
    folds only the trial records past its watermark — the aggregates of
    an interrupted-then-resumed campaign are identical to an
    uninterrupted one's, without re-reading the log.

    Args:
        path: The JSON-lines checkpoint file.
        telemetry_path: Sidecar location; defaults to
            ``<path>.telemetry.json``.
        checkpoint_every: Sidecar write cadence in records (0 = only on
            :meth:`close`).
        materialize: Keep each :class:`TrialResult` in memory for
            ``get`` splicing (what a resumed campaign needs).  Pass
            False for aggregate-only consumers — memory stays flat in
            trial count, and ``get`` on a recorded key raises.
    """

    def __init__(
        self,
        path: PathLike,
        telemetry_path: Optional[PathLike] = None,
        checkpoint_every: int = 256,
        materialize: bool = True,
    ):
        self.telemetry_path = (
            Path(telemetry_path) if telemetry_path is not None
            else default_sidecar(path)
        )
        self.checkpoint_every = int(checkpoint_every)
        self.materialize = bool(materialize)
        self.registry = MetricRegistry()
        self._keys: Dict[str, None] = {}  # insertion-ordered key set
        self._count = 0  # trial records in the file (= sidecar watermark)
        self._watermark = 0  # records the restored sidecar had folded
        self._pending = 0  # folds since the last sidecar write
        self._load_sidecar()
        super().__init__(path)  # replays the log through _ingest_loaded
        if self._watermark > self._count:
            # The sidecar claims more folds than the log holds: the log
            # was truncated or the sidecar belongs elsewhere.  Aggregates
            # are rebuildable state — refold the whole log instead of
            # trusting the sidecar.
            self._refold()

    # -- sidecar ----------------------------------------------------------

    def _load_sidecar(self) -> None:
        if not self.telemetry_path.exists():
            return
        try:
            doc = json.loads(self.telemetry_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            # Sidecar writes are atomic (tmp + rename), so a torn sidecar
            # is foreign damage; the log refolds it from scratch.
            return
        if not isinstance(doc, dict) or doc.get("schema") != SIDECAR_SCHEMA:
            raise ExperimentError(
                f"{self.telemetry_path} is not a telemetry sidecar "
                f"(expected schema {SIDECAR_SCHEMA!r})"
            )
        self.registry = MetricRegistry.restore(doc["telemetry"])
        self._watermark = int(doc.get("folded", 0))

    def checkpoint(self) -> None:
        """Atomically write the registry sidecar (tmp + rename)."""
        doc = {
            "schema": SIDECAR_SCHEMA,
            "folded": self._count,
            "source": self.path.name,
            "telemetry": self.registry.snapshot(),
        }
        self.telemetry_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.telemetry_path.with_name(self.telemetry_path.name + ".tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8")
        os.replace(tmp, self.telemetry_path)
        self._pending = 0

    def _refold(self) -> None:
        self.registry = MetricRegistry()
        self._watermark = 0
        self._pending = 0
        count = 0
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and row.get("kind") == "trial":
                try:
                    key, payload = str(row["key"]), row["trial"]
                except KeyError:
                    continue
                if isinstance(payload, dict):
                    self._fold(key, payload)
                    count += 1
        self._pending = count

    # -- folding ----------------------------------------------------------

    def _fold(self, key: str, payload: Dict[str, object]) -> None:
        """Absorb one trial's measurements into the registry."""
        plan, series = _scenario_parts(key)
        labels = {"plan": plan, "series": series}
        self.registry.counter("campaign.trials", **labels).inc()
        if payload.get("time_all") is not None:
            self.registry.counter("campaign.converged", **labels).inc()
        for name in _MOMENT_FIELDS:
            value = payload.get(name)
            if value is None:
                continue
            value = float(value)
            self.registry.moments(f"trial.{name}", **labels).add(value)
            if name in _SKETCH_FIELDS:
                self.registry.sketch(f"trial.{name}.sketch", **labels).add(value)

    def _ingest_loaded(self, key: str, payload: Dict[str, object]) -> None:
        index = self._count
        self._count += 1
        self._keys[key] = None
        if self.materialize:
            self._trials[key] = TrialResult(**payload)
        if index >= self._watermark:
            self._fold(key, payload)
            self._pending += 1

    # -- the sink protocol over the key set, not the trial dict -----------

    def record(self, key: str, trial: TrialResult) -> None:
        if key in self:
            return
        payload = asdict(trial)
        self._append({"kind": "trial", "key": key, "trial": payload})
        self._count += 1
        self._keys[key] = None
        if self.materialize:
            self._trials[key] = trial
        self._fold(key, payload)
        self._pending += 1
        if self.checkpoint_every and self._pending >= self.checkpoint_every:
            self.checkpoint()

    def get(self, key: str) -> Optional[TrialResult]:
        trial = self._trials.get(key)
        if trial is None and key in self._keys:
            raise ExperimentError(
                f"trial {key!r} was recorded but not materialized "
                "(sink opened with materialize=False)"
            )
        return trial

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def keys(self) -> Iterator[str]:
        return iter(self._keys)

    def counts_by_prefix(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for key in self._keys:
            prefix = key.split("::", 1)[0]
            counts[prefix] = counts.get(prefix, 0) + 1
        return counts

    def close(self) -> None:
        if self._pending:
            self.checkpoint()
        super().close()


def sink_status(path: PathLike) -> Tuple[Optional[Dict[str, object]], Dict[str, int]]:
    """Read a checkpoint's header and per-plan recorded counts.

    Raises :class:`ExperimentError` when the file does not exist — a
    status query on a never-started campaign is a caller mistake, not an
    empty result.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no checkpoint at {path}")
    sink = JsonLinesSink(path)
    try:
        return sink.header, sink.counts_by_prefix()
    finally:
        sink.close()


@dataclass
class CheckpointStatus:
    """What :func:`stream_status` learned from one pass over a checkpoint.

    Attributes:
        path: The checkpoint file read.
        header: Campaign header record, if the file carries one.
        counts: Recorded trials per plan prefix.
        trials: Total well-formed trial records.
        torn_lines: Lines that were unparseable or structurally
            incomplete — at most one for a cleanly killed writer, and
            exactly the in-flight line while a run is live.  Counts are
            *partial* (a lower bound) whenever this is non-zero.
        telemetry: Aggregates restored from the sidecar, when one
            exists and parses; None otherwise.
        folded: Trial records the sidecar had folded (its watermark);
            0 without a sidecar.
    """

    path: Path
    header: Optional[Dict[str, object]] = None
    counts: Dict[str, int] = field(default_factory=dict)
    trials: int = 0
    torn_lines: int = 0
    telemetry: Optional[MetricRegistry] = None
    folded: int = 0

    @property
    def partial(self) -> bool:
        """True when a torn line made the counts a lower bound."""
        return self.torn_lines > 0


def stream_status(
    path: PathLike, telemetry_path: Optional[PathLike] = None
) -> CheckpointStatus:
    """Read campaign progress in one O(1)-memory pass.

    Unlike :func:`sink_status` this never materialises a
    :class:`TrialResult` — each line is parsed, counted and dropped —
    so a 10**5-trial checkpoint answers in flat memory, and a record
    the writer has not finished (truncated line, or a structurally
    incomplete-but-valid JSON fragment) is *counted as torn* instead of
    raising: ``repro campaign status`` against a live run reports
    partial counts rather than failing.

    When the telemetry sidecar exists (``<path>.telemetry.json`` by
    default, written by :class:`StreamingSink`) its registry rides
    along, giving status access to streaming means and quantiles at the
    same O(1) cost.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no checkpoint at {path}")
    status = CheckpointStatus(path=path)
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                status.torn_lines += 1
                continue
            if not isinstance(row, dict):
                status.torn_lines += 1
                continue
            kind = row.get("kind")
            if kind == "header":
                status.header = {k: v for k, v in row.items() if k != "kind"}
            elif kind == "trial":
                key = row.get("key")
                if key is None or not isinstance(row.get("trial"), dict):
                    status.torn_lines += 1  # torn at a JSON-valid boundary
                    continue
                prefix = str(key).split("::", 1)[0]
                status.counts[prefix] = status.counts.get(prefix, 0) + 1
                status.trials += 1
    sidecar = (
        Path(telemetry_path) if telemetry_path is not None
        else default_sidecar(path)
    )
    if sidecar.exists():
        try:
            doc = json.loads(sidecar.read_text(encoding="utf-8"))
            status.telemetry = MetricRegistry.restore(doc["telemetry"])
            status.folded = int(doc.get("folded", 0))
        except (json.JSONDecodeError, KeyError, TypeError, ExperimentError):
            pass  # status is best-effort: a bad sidecar just means no aggregates
    return status
