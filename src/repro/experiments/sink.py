"""Streaming result sinks: JSON-lines checkpoints for long runs.

A *sink* receives every completed trial the moment the backend yields
it, instead of waiting for the whole grid to finish. The JSON-lines
format makes the checkpoint crash-safe by construction: each line is a
self-contained record, appended and flushed as it happens, so a killed
campaign keeps every trial that was yielded and recorded — what is
lost is the in-flight work the backend had not yielded yet (a process
pool yields per completed *chunk*, so up to one chunk per worker) plus
at most one truncated final line, which :class:`JsonLinesSink`
tolerates when it loads.

Records are keyed by the scenario's stable identity
(``plan/rep=../faults=../variant=..`` — see
:meth:`~repro.experiments.plan.ScenarioSpec.key`). A resumed run asks
the sink which keys are already recorded, skips them, and splices the
stored :class:`~repro.experiments.results.TrialResult` rows back into
the assembled result. Floats round-trip through ``repr`` exactly, so a
resumed result is bit-identical to an uninterrupted one.

The file optionally starts with a single *header* record describing the
campaign (name, per-plan totals); ``repro campaign status`` reads
progress from the file alone, and a resume refuses a checkpoint whose
header belongs to a different campaign.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterator, Optional, Protocol, Tuple, runtime_checkable

from ..errors import ExperimentError
from .results import PathLike, TrialResult


@runtime_checkable
class ResultSink(Protocol):
    """Checkpoint protocol: record completed trials, replay them later."""

    def record(self, key: str, trial: TrialResult) -> None:
        """Persist one completed trial under its stable scenario key."""
        ...

    def get(self, key: str) -> Optional[TrialResult]:
        """Return the recorded trial for ``key``, or None."""
        ...


class JsonLinesSink:
    """Append-only JSON-lines checkpoint file.

    Existing records are loaded eagerly on construction, so ``get`` is a
    dict lookup and a resumed run never re-executes a recorded scenario.
    The file handle is opened lazily on the first ``record`` and every
    record is flushed immediately — an interrupted run keeps everything
    it completed.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._fh = None
        self._trials: Dict[str, TrialResult] = {}
        self._header: Optional[Dict[str, object]] = None
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                # A kill mid-write leaves at most one truncated line;
                # everything parseable before it is still good.
                continue
            kind = row.get("kind")
            if kind == "header":
                self._header = {k: v for k, v in row.items() if k != "kind"}
            elif kind == "trial":
                try:
                    self._trials[str(row["key"])] = TrialResult(**row["trial"])
                except (KeyError, TypeError) as exc:
                    raise ExperimentError(
                        f"malformed trial record in {self.path}: {exc}"
                    ) from exc

    # -- introspection ----------------------------------------------------

    @property
    def header(self) -> Optional[Dict[str, object]]:
        """The campaign header record, if the file carries one."""
        return self._header

    def __len__(self) -> int:
        return len(self._trials)

    def __contains__(self, key: str) -> bool:
        return key in self._trials

    def get(self, key: str) -> Optional[TrialResult]:
        return self._trials.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._trials)

    def counts_by_prefix(self) -> Dict[str, int]:
        """Recorded trials per plan (the segment before the ``::``)."""
        counts: Dict[str, int] = {}
        for key in self._trials:
            prefix = key.split("::", 1)[0]
            counts[prefix] = counts.get(prefix, 0) + 1
        return counts

    # -- writing ----------------------------------------------------------

    def _append(self, row: Dict[str, object]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()

    def write_header(self, meta: Dict[str, object]) -> None:
        """Record (or verify) the campaign identity this file belongs to.

        The first writer stamps the header; later opens verify that the
        checkpoint matches, so two different campaigns cannot silently
        interleave records in one file.
        """
        if self._header is not None:
            if self._header != meta:
                differing = sorted(
                    key
                    for key in set(self._header) | set(meta)
                    if self._header.get(key) != meta.get(key)
                )
                raise ExperimentError(
                    f"checkpoint {self.path} belongs to a different campaign "
                    f"(recorded {self._header.get('campaign', '?')!r}; "
                    f"differs in: {', '.join(differing)}); delete the file or "
                    "resume with the original parameters"
                )
            return
        self._append({"kind": "header", **meta})
        self._header = dict(meta)

    def record(self, key: str, trial: TrialResult) -> None:
        if key in self._trials:
            return  # already checkpointed; keep the file append-only
        self._append({"kind": "trial", "key": key, "trial": asdict(trial)})
        self._trials[key] = trial

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def sink_status(path: PathLike) -> Tuple[Optional[Dict[str, object]], Dict[str, int]]:
    """Read a checkpoint's header and per-plan recorded counts.

    Raises :class:`ExperimentError` when the file does not exist — a
    status query on a never-started campaign is a caller mistake, not an
    empty result.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no checkpoint at {path}")
    sink = JsonLinesSink(path)
    try:
        return sink.header, sink.counts_by_prefix()
    finally:
        sink.close()
