"""Per-figure and per-table experiment drivers.

Each public function regenerates one artefact of the paper (see the
per-experiment index in DESIGN.md) and returns a structured result the
benchmarks and the CLI render. Paper reference values are collected in
:data:`PAPER` so reports always print paper-vs-measured side by side.

Registry-expressible drivers (:func:`figure_cdf`, the Figs. 5-6 grids,
:func:`scaling_experiment`) build declarative
:class:`~repro.experiments.plan.ExperimentPlan` objects and accept a
``backend`` argument, so their repetition grids parallelise over an
:class:`~repro.experiments.backends.ExecutionBackend` with bit-identical
results; the bespoke scenarios (fixed chains, scheduled demand shifts,
partitions) keep their hand-rolled loops over the live-object harness.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import ProtocolConfig
from ..core.islands import bridge_system, detect_islands, elect_leaders
from ..core.metrics import reach_time, satisfied_requests_series
from ..core.strong import StrongConsistencySystem
from ..core.system import ReplicationSystem
from ..core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    high_demand_consistency,
    push_only_consistency,
    static_table_consistency,
    weak_consistency,
)
from ..demand.base import DemandModel
from ..demand.dynamic import FIG4_REPLICAS, ScheduledDemand, paper_fig4_demand
from ..demand.field import two_valley_field
from ..demand.static import (
    SECTION2_REPLICAS,
    UniformRandomDemand,
    paper_section2_demand,
)
from ..errors import ExperimentError
from ..sim.rng import derive_seed
from ..topology.brite import internet_like
from ..topology.graph import Topology
from ..topology.simple import grid as grid_topology
from ..topology.simple import line as line_topology
from ..topology.simple import ring as ring_topology
from ..topology.simple import star as star_topology
from .campaign import Campaign
from .cdf import EmpiricalCdf, session_grid
from .harness import TrialSpec, run_experiment, run_trial
from .plan import ExperimentPlan
from .results import ExperimentResult

#: Reference values quoted in the paper (§2, §5).
PAPER: Dict[str, object] = {
    "fig3_worst": [9.0, 13.0, 20.0, 28.0],
    "fig3_optimal": [14.0, 21.0, 25.0, 28.0],
    "fig5_weak_mean": 6.1499,
    "fig5_fast_mean": 3.9261,
    "fig5_top_mean": 1.0,
    "fig6_weak_mean": 6.982,
    "fig6_fast_mean": 4.78117,
    "fig6_top_mean": 1.0,
    "speedup_high_demand": 6.0,  # "up to six times quicker"
    "internet_diameter": 20,  # §5: Internet diameter "in the order of 20"
}


def _quiet_start(system: ReplicationSystem) -> None:
    """Start an experiment system with tracing disabled (throughput)."""
    system.sim.trace.disable()
    system.start()


# ---------------------------------------------------------------------------
# Figures 5 & 6 — CDFs of sessions-to-consistency
# ---------------------------------------------------------------------------


@dataclass
class FigureCdfResult:
    """Everything figs. 5-6 plot, plus the underlying experiment."""

    name: str
    n: int
    reps: int
    grid: List[float]
    curves: Dict[str, List[float]]
    means: Dict[str, float]
    speedup_high_demand: float
    mean_diameter: float
    experiment: ExperimentResult

    def rows(self) -> List[Tuple[object, ...]]:
        """Paper-vs-measured table rows."""
        prefix = "fig5" if self.n == 50 else "fig6"
        ref = {
            "weak (all replicas)": PAPER.get(f"{prefix}_weak_mean"),
            "fast (all replicas)": PAPER.get(f"{prefix}_fast_mean"),
            "fast (high demand)": PAPER.get(f"{prefix}_top_mean"),
            "ordered-only (all)": None,
            "fast (top 10% subset)": None,
        }
        rows = []
        for curve, mean in self.means.items():
            paper_value = ref.get(curve)
            rows.append(
                (
                    curve,
                    "-" if paper_value is None else f"{paper_value}",
                    f"{mean:.3f}",
                )
            )
        rows.append(
            (
                "speedup (weak-all / fast-top)",
                f"~{PAPER['speedup_high_demand']}x",
                f"{self.speedup_high_demand:.2f}x",
            )
        )
        return rows


def figure_cdf_plan(
    n: int,
    reps: int = 120,
    seed: int = 1,
    m: int = 2,
    top_fraction: float = 0.1,
    max_time: float = 80.0,
) -> ExperimentPlan:
    """The declarative plan behind Figs. 5-6 (see :func:`figure_cdf`)."""
    if m not in (2, 3):
        raise ExperimentError(
            f"figure_cdf_plan supports the registered BA topologies (m=2, 3), got m={m}"
        )
    return ExperimentPlan(
        name=f"fig-cdf-{n}",
        topology="ba" if m == 2 else "ba-m3",
        demand="uniform",
        variants=("weak", "ordered", "fast"),
        n=n,
        reps=reps,
        seed=seed,
        max_time=max_time,
        top_fraction=top_fraction,
        params={"m": m},
    )


def figure_cdf(
    n: int,
    reps: int = 120,
    seed: int = 1,
    m: int = 2,
    top_fraction: float = 0.1,
    max_time: float = 80.0,
    backend=None,
) -> FigureCdfResult:
    """The Figs. 5-6 experiment for ``n`` replicas.

    BRITE-BA topologies, uniform random demands, a write injected at a
    random replica, repeated ``reps`` times (paper: 10,000 — pass a
    larger ``reps`` via the CLI for full fidelity). Runs through the
    declarative plan pipeline for the registered BA densities (m=2, 3),
    so passing a parallel ``backend`` (e.g. ``ProcessPoolBackend``) fans
    the repetitions out over cores with bit-identical results; other
    ``m`` values fall back to the factory-based harness.
    """
    if m in (2, 3):
        experiment = figure_cdf_plan(
            n, reps=reps, seed=seed, m=m, top_fraction=top_fraction, max_time=max_time
        ).run(backend)
    else:
        experiment = run_experiment(
            name=f"fig-cdf-{n}",
            variants={
                "weak": weak_consistency(),
                "ordered": high_demand_consistency(),
                "fast": fast_consistency(),
            },
            topology_factory=lambda s: internet_like(n, m=m, seed=s),
            demand_factory=lambda topo, s: UniformRandomDemand(0.0, 100.0, seed=s),
            reps=reps,
            seed=seed,
            max_time=max_time,
            top_fraction=top_fraction,
            params={"n": n, "m": m},
            backend=backend,
        )
    grid = session_grid(12.0, 0.5)
    weak_all = experiment.series["weak"].cdf_all()
    ordered_all = experiment.series["ordered"].cdf_all()
    fast_all = experiment.series["fast"].cdf_all()
    # "Consistency high demand": sessions until the replica with most
    # demand is consistent (§5 measures "the replica with most demand").
    fast_top = experiment.series["fast"].cdf_top1()
    fast_top_subset = experiment.series["fast"].cdf_top()
    curves = {
        "weak (all replicas)": weak_all.on_grid(grid),
        "ordered-only (all)": ordered_all.on_grid(grid),
        "fast (all replicas)": fast_all.on_grid(grid),
        "fast (high demand)": fast_top.on_grid(grid),
    }
    means = {
        "weak (all replicas)": weak_all.mean(),
        "ordered-only (all)": ordered_all.mean(),
        "fast (all replicas)": fast_all.mean(),
        "fast (high demand)": fast_top.mean(),
        "fast (top 10% subset)": fast_top_subset.mean(),
    }
    diameters = [t.diameter for t in experiment.series["weak"].trials]
    speedup = (
        means["weak (all replicas)"] / means["fast (high demand)"]
        if means["fast (high demand)"] > 0
        else float("inf")
    )
    return FigureCdfResult(
        name=f"figure{'5' if n == 50 else '6' if n == 100 else f'-cdf-{n}'}",
        n=n,
        reps=reps,
        grid=grid,
        curves=curves,
        means=means,
        speedup_high_demand=speedup,
        mean_diameter=sum(diameters) / len(diameters),
        experiment=experiment,
    )


def figure5(reps: int = 120, seed: int = 1, **kwargs) -> FigureCdfResult:
    """Fig. 5: CDF of number of sessions, 50 nodes."""
    return figure_cdf(50, reps=reps, seed=seed, **kwargs)


def figure6(reps: int = 120, seed: int = 1, **kwargs) -> FigureCdfResult:
    """Fig. 6: CDF of number of sessions, 100 nodes."""
    return figure_cdf(100, reps=reps, seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# §2 worked example: Table 1 orderings and Figure 3
# ---------------------------------------------------------------------------

#: §2 demand table (A..E) used by table1/fig3.
SECTION2_DEMANDS: Dict[str, float] = {"A": 4.0, "B": 6.0, "C": 3.0, "D": 8.0, "E": 7.0}


def _ordering_series(order: Sequence[str]) -> List[float]:
    """Cumulative satisfied requests per session for one visit order.

    B holds the update at time 0 and visits its neighbours in ``order``,
    one session per time unit; after session k, B plus the first k
    visited replicas serve their demand with updated content.
    """
    times = {SECTION2_REPLICAS["B"]: 0.0}
    for step, name in enumerate(order, start=1):
        times[SECTION2_REPLICAS[name]] = float(step)
    demand = {SECTION2_REPLICAS[k]: v for k, v in SECTION2_DEMANDS.items()}
    return satisfied_requests_series(times, demand, horizon=len(order))


@dataclass
class Table1Result:
    """All 24 visit orders ranked by cumulative satisfied requests."""

    orders: List[Tuple[Tuple[str, ...], List[float], float]]
    worst: Tuple[str, ...]
    best: Tuple[str, ...]

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for order, series, area in self.orders:
            rows.append(("-".join(order), *(f"{v:.0f}" for v in series), f"{area:.0f}"))
        return rows


def table1_orderings() -> Table1Result:
    """§2's worst/best-case session orders, enumerated exhaustively.

    The paper presents two extreme orders (B-C,B-A,B-E,B-D vs
    B-D,B-E,B-A,B-C); enumerating all 4! orders verifies they are the
    true extremes under the cumulative-satisfied-requests objective.
    """
    neighbors = [name for name in SECTION2_DEMANDS if name != "B"]
    scored = []
    for order in itertools.permutations(neighbors):
        series = _ordering_series(order)
        scored.append((order, series, sum(series)))
    scored.sort(key=lambda item: item[2])
    worst = scored[0][0]
    best = scored[-1][0]
    return Table1Result(orders=scored, worst=worst, best=best)


@dataclass
class Figure3Result:
    """Fig. 3 series: worst case, optimal case, and simulated fast."""

    sessions: List[int]
    worst: List[float]
    optimal: List[float]
    fast_simulated: List[float]
    reps: int

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for i, step in enumerate(self.sessions):
            rows.append(
                (
                    step,
                    f"{self.worst[i]:.0f}",
                    f"{self.optimal[i]:.0f}",
                    f"{self.fast_simulated[i]:.1f}",
                )
            )
        return rows


def figure3(reps: int = 60, seed: int = 1) -> Figure3Result:
    """Fig. 3: requests satisfied with consistent content over time.

    The worst/optimal curves are the paper's analytic example (one
    B-initiated session per time unit). The fast-consistency curve is
    *simulated* on the same five replicas (star around B, ids from
    :data:`repro.demand.static.SECTION2_REPLICAS`) and — as §2 claims —
    beats the optimal case because the push to D happens at link speed
    instead of waiting for the first session.
    """
    worst = _ordering_series(("C", "A", "E", "D"))
    optimal = _ordering_series(("D", "E", "A", "C"))
    demand_model = paper_section2_demand()
    demand = {SECTION2_REPLICAS[k]: v for k, v in SECTION2_DEMANDS.items()}
    horizon = 4
    totals = [0.0] * horizon
    b = SECTION2_REPLICAS["B"]
    for rep in range(reps):
        topo = star_topology(5)  # node 0 is the hub
        # Map the §2 replicas onto the star: B must be the hub, so swap
        # ids 0 (hub) and B's id in the demand table.
        mapping = _star_mapping()
        model = _remap_demand(demand_model, mapping)
        system = ReplicationSystem(
            topology=topo,
            demand=model,
            config=fast_consistency(),
            seed=derive_seed(seed, f"fig3/{rep}"),
        )
        _quiet_start(system)
        update = system.inject_write(mapping[b])
        system.run_until_replicated(update.uid, max_time=40.0)
        times = system.apply_times(update.uid)
        remapped_demand = {mapping[n]: v for n, v in demand.items()}
        series = satisfied_requests_series(times, remapped_demand, horizon)
        for i, value in enumerate(series):
            totals[i] += value
    fast_series = [v / reps for v in totals]
    return Figure3Result(
        sessions=list(range(1, horizon + 1)),
        worst=worst,
        optimal=optimal,
        fast_simulated=fast_series,
        reps=reps,
    )


def _star_mapping() -> Dict[int, int]:
    """Map §2 replica ids (A=0..E=4) onto star node ids (hub=0).

    B (id 1) becomes the hub (0); the hub's old occupant A takes B's
    id. Everyone else keeps their id.
    """
    return {0: 1, 1: 0, 2: 2, 3: 3, 4: 4}


class _RemappedDemand(DemandModel):
    """Demand model composed with a node-id permutation."""

    def __init__(self, inner: DemandModel, mapping: Mapping[int, int]):
        self._inner = inner
        self._inverse = {new: old for old, new in mapping.items()}

    def demand(self, node: int, time: float) -> float:
        return self._inner.demand(self._inverse.get(int(node), int(node)), time)


def _remap_demand(inner: DemandModel, mapping: Mapping[int, int]) -> DemandModel:
    return _RemappedDemand(inner, mapping)


# ---------------------------------------------------------------------------
# §3-§4: Table 2 — dynamic demand (Fig. 4 scenario)
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    """Static vs dynamic neighbour tables under shifting demand.

    ``sequences`` is the paper's literal §4 table — the partners B picks
    at times 1, 2 and 3 under frozen vs current beliefs. The remaining
    fields come from the simulated chain scenario (see
    :func:`table2_dynamic`).
    """

    reps: int
    sequences: Dict[str, List[str]]
    mean_time_to_c: Dict[str, float]
    mean_time_all: Dict[str, float]
    satisfied_at: Dict[str, List[float]]

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for variant in self.mean_time_to_c:
            rows.append(
                (
                    variant,
                    f"{self.mean_time_to_c[variant]:.2f}",
                    f"{self.mean_time_all[variant]:.2f}",
                    *(f"{v:.1f}" for v in self.satisfied_at[variant]),
                )
            )
        return rows

    def sequence_rows(self) -> List[Tuple[object, ...]]:
        return [
            (variant, *picks) for variant, picks in self.sequences.items()
        ]


def table2_selection_sequence() -> Dict[str, List[str]]:
    """The §4 worked example, reproduced exactly.

    B's neighbours are A, C, D with demands from Fig. 4 (D=13, A=2,
    C=0; at t=2 A falls to 0 and C rises to 9). B selects one partner
    per time step. With a frozen table B visits D, A, C; re-reading
    demand before each selection yields the paper's B-D, B-C', B-A'.
    """
    from ..core.policies import DemandOrderedPolicy
    from ..demand.views import OracleDemandView, SnapshotDemandView

    model = paper_fig4_demand()
    names = {node: name for name, node in FIG4_REPLICAS.items()}
    b = FIG4_REPLICAS["B"]
    neighbors = [n for n in FIG4_REPLICAS.values() if n != b]

    static_policy = DemandOrderedPolicy(
        SnapshotDemandView(model, FIG4_REPLICAS.values(), at_time=1.0)
    )
    clock = {"now": 1.0}
    dynamic_policy = DemandOrderedPolicy(
        OracleDemandView(model, clock=lambda: clock["now"])
    )
    sequences: Dict[str, List[str]] = {"static": [], "dynamic": []}
    for step in (1.0, 2.0, 3.0):
        clock["now"] = step
        sequences["static"].append(names[static_policy.select(neighbors)])
        picked = dynamic_policy.select(neighbors)
        suffix = "'" if model.demand(picked, step) != model.demand(picked, 1.0) else ""
        sequences["dynamic"].append(names[picked] + suffix)
    return sequences


def table2_dynamic(reps: int = 80, seed: int = 1) -> Table2Result:
    """§3-4: demand shifts *while* an update propagates.

    Topology: B - x1 - x2 - x3 - C chain plus hot decoy D and fading
    decoy A attached to B. Demands: B=6, x*=1, D=13 (stays hot),
    A: 2 -> 0 and C: 0 -> 9 at t=2 (the Fig. 4 shift, displaced to the
    end of a chain so the update is still in flight when it happens).

    A write lands at B at t=0 and walks the chain by anti-entropy. By
    the time it reaches x3, C has become hot: the *dynamic* variants see
    the new demand and fast-push the final hop immediately, while the
    *static-table* variant still believes C is cold and leaves C' to
    pull on its own schedule. Measured: sessions until C' is consistent
    and requests satisfied with updated content per step.
    """
    variants = {
        "static-table": static_table_consistency(),
        "dynamic-oracle": fast_consistency(),
        "dynamic-advertised": dynamic_fast_consistency(advert_period=0.5),
    }
    topo, model, node_c = _fig4_chain_scenario()
    b = 0
    horizon = 6
    time_to_c: Dict[str, List[float]] = {v: [] for v in variants}
    time_all: Dict[str, List[float]] = {v: [] for v in variants}
    satisfied: Dict[str, List[float]] = {v: [0.0] * horizon for v in variants}
    for rep in range(reps):
        sim_seed = derive_seed(seed, f"table2/{rep}")
        for variant, config in variants.items():
            system = ReplicationSystem(
                topology=topo, demand=model, config=config, seed=sim_seed
            )
            _quiet_start(system)
            update = system.inject_write(b)
            system.run_until_replicated(update.uid, max_time=60.0)
            times = system.apply_times(update.uid)
            t_c = times.get(node_c)
            if t_c is None or reach_time(times, topo.nodes) is None:
                raise ExperimentError(f"fig4 chain run did not converge ({variant})")
            time_to_c[variant].append(t_c)
            time_all[variant].append(reach_time(times, topo.nodes))
            for step in range(1, horizon + 1):
                total = sum(
                    model.demand(node, float(step))
                    for node in topo.nodes
                    if times.get(node) is not None and times[node] <= step
                )
                satisfied[variant][step - 1] += total
    return Table2Result(
        reps=reps,
        sequences=table2_selection_sequence(),
        mean_time_to_c={v: sum(ts) / len(ts) for v, ts in time_to_c.items()},
        mean_time_all={v: sum(ts) / len(ts) for v, ts in time_all.items()},
        satisfied_at={
            v: [total / reps for total in series] for v, series in satisfied.items()
        },
    )


def _fig4_chain_scenario() -> Tuple[Topology, ScheduledDemand, int]:
    """Build the displaced Fig. 4 scenario (see :func:`table2_dynamic`).

    Returns (topology, demand model, id of the C replica).
    """
    topo = Topology("fig4-chain")
    # 0=B, 1..3 = chain x1..x3, 4=C, 5=D (hot decoy), 6=A (fading decoy)
    for node in range(7):
        topo.add_node(node, (float(node), 0.0))
    topo.add_edge(0, 1)
    topo.add_edge(1, 2)
    topo.add_edge(2, 3)
    topo.add_edge(3, 4)
    topo.add_edge(0, 5)
    topo.add_edge(0, 6)
    model = ScheduledDemand(
        initial={0: 6.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 0.0, 5: 13.0, 6: 2.0},
        changes={4: [(2.0, 9.0)], 6: [(2.0, 0.0)]},
    )
    return topo, model, 4


# ---------------------------------------------------------------------------
# §5: scaling with node count vs diameter; uniform topologies
# ---------------------------------------------------------------------------


@dataclass
class ScalingResult:
    """Mean sessions-to-consistency across topology sizes."""

    sizes: List[int]
    rows_by_size: Dict[int, Dict[str, float]]
    reps: int

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for n in self.sizes:
            data = self.rows_by_size[n]
            rows.append(
                (
                    n,
                    f"{data['diameter']:.2f}",
                    f"{data['weak_mean']:.3f}",
                    f"{data['fast_mean']:.3f}",
                    f"{data['fast_top_mean']:.3f}",
                )
            )
        return rows


def scaling_plans(
    sizes: Sequence[int] = (25, 50, 100, 200),
    reps: int = 40,
    seed: int = 1,
) -> Dict[int, ExperimentPlan]:
    """One declarative plan per network size of the §5 scaling sweep."""
    return {
        n: ExperimentPlan(
            name=f"scaling-{n}",
            topology="ba",
            demand="uniform",
            variants=("weak", "fast"),
            n=n,
            reps=reps,
            seed=derive_seed(seed, f"scaling/{n}"),
        )
        for n in sizes
    }


def scaling_campaign(
    sizes: Sequence[int] = (25, 50, 100, 200),
    reps: int = 40,
    seed: int = 1,
) -> Campaign:
    """The §5 scaling sweep as one campaign (one plan per size).

    Running the sizes as a campaign — instead of looping ``plan.run`` —
    means a process-pool backend spawns its workers once for the whole
    sweep, and a checkpoint sink makes the sweep resumable.
    """
    return Campaign(
        "scaling",
        scaling_plans(sizes, reps=reps, seed=seed),
        params={"sizes": list(sizes), "reps": reps, "seed": seed},
    )


def scaling_experiment(
    sizes: Sequence[int] = (25, 50, 100, 200),
    reps: int = 40,
    seed: int = 1,
    backend=None,
    sink=None,
) -> ScalingResult:
    """§5's observation: doubling nodes barely moves the session count.

    The paper notes 50 -> 100 nodes moves fast consistency only from
    3.93 to 4.78 sessions and ties this to the diameter; this experiment
    reports mean diameter and mean sessions per size so the correlation
    is visible (and testable). The sizes run as one
    :class:`~repro.experiments.campaign.Campaign` over a single shared
    ``backend`` — a process pool is spawned once for the whole sweep,
    not once per size — and an optional checkpoint ``sink`` makes the
    sweep resumable.
    """
    outcome = scaling_campaign(sizes, reps=reps, seed=seed).run(backend, sink=sink)
    rows: Dict[int, Dict[str, float]] = {}
    for n in sizes:
        experiment = outcome.results[str(n)]
        weak_cdf = experiment.series["weak"].cdf_all()
        fast_cdf = experiment.series["fast"].cdf_all()
        fast_top = experiment.series["fast"].cdf_top()
        diameters = [t.diameter for t in experiment.series["weak"].trials]
        rows[n] = {
            "diameter": sum(diameters) / len(diameters),
            "weak_mean": weak_cdf.mean(),
            "fast_mean": fast_cdf.mean(),
            "fast_top_mean": fast_top.mean(),
        }
    return ScalingResult(sizes=list(sizes), rows_by_size=rows, reps=reps)


@dataclass
class UniformTopologiesResult:
    """Weak vs fast on the paper's simple uniform topologies."""

    rows_by_name: Dict[str, Dict[str, float]]
    reps: int

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for name, data in self.rows_by_name.items():
            rows.append(
                (
                    name,
                    int(data["n"]),
                    int(data["diameter"]),
                    f"{data['weak_mean']:.3f}",
                    f"{data['fast_mean']:.3f}",
                    f"{data['fast_top_mean']:.3f}",
                )
            )
        return rows


def uniform_topologies(reps: int = 30, seed: int = 1) -> UniformTopologiesResult:
    """§5: "similar results ... with simpler uniform topologies"."""
    cases = {
        "line-24": lambda s: line_topology(24),
        "ring-24": lambda s: ring_topology(24),
        "grid-5x5": lambda s: grid_topology(5, 5),
    }
    rows: Dict[str, Dict[str, float]] = {}
    for name, factory in cases.items():
        experiment = run_experiment(
            name=f"uniform-{name}",
            variants={"weak": weak_consistency(), "fast": fast_consistency()},
            topology_factory=factory,
            demand_factory=lambda topo, s: UniformRandomDemand(0.0, 100.0, seed=s),
            reps=reps,
            seed=derive_seed(seed, f"uniform/{name}"),
            max_time=200.0,
            params={"topology": name},
        )
        weak_cdf = experiment.series["weak"].cdf_all()
        fast_cdf = experiment.series["fast"].cdf_all()
        fast_top = experiment.series["fast"].cdf_top()
        sample = factory(0)
        rows[name] = {
            "n": sample.num_nodes,
            "diameter": experiment.series["weak"].trials[0].diameter,
            "weak_mean": weak_cdf.mean(),
            "fast_mean": fast_cdf.mean(),
            "fast_top_mean": fast_top.mean(),
        }
    return UniformTopologiesResult(rows_by_name=rows, reps=reps)


# ---------------------------------------------------------------------------
# §6: islands
# ---------------------------------------------------------------------------


@dataclass
class IslandsResult:
    """Fast consistency with vs without leader bridges (§6)."""

    reps: int
    islands_detected: int
    mean_far_leader: Dict[str, float]
    mean_far_island: Dict[str, float]
    mean_all: Dict[str, float]

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                variant,
                f"{self.mean_far_leader[variant]:.3f}",
                f"{self.mean_far_island[variant]:.3f}",
                f"{self.mean_all[variant]:.3f}",
            )
            for variant in self.mean_far_island
        ]


def islands_experiment(
    reps: int = 30, seed: int = 1, rows: int = 10, cols: int = 10
) -> IslandsResult:
    """Two demand valleys on a grid; does bridging help across the ridge?

    A write originates at the leader of one island; we measure sessions
    until the *other* island's leader and members are consistent, with
    and without the §6 leader-bridge overlay. Member times are averaged
    per island (the max is dominated by each member's own session timer
    and hides the bridging effect).
    """
    leader_times: Dict[str, List[float]] = {"fast": [], "fast+bridges": []}
    far_times: Dict[str, List[float]] = {"fast": [], "fast+bridges": []}
    all_times: Dict[str, List[float]] = {"fast": [], "fast+bridges": []}
    islands_detected = 0
    for rep in range(reps):
        sim_seed = derive_seed(seed, f"islands/{rep}")
        for variant, bridged in (("fast", False), ("fast+bridges", True)):
            topo = grid_topology(rows, cols)
            demand = two_valley_field(
                topo, plane_size=float(max(rows, cols) - 1), peak=100.0, base=1.0
            )
            system = ReplicationSystem(
                topology=topo,
                demand=demand,
                config=fast_consistency(),
                seed=sim_seed,
            )
            snapshot = demand.snapshot(topo.nodes, 0.0)
            raw_islands = detect_islands(topo, snapshot, percentile=80.0, min_size=2)
            islands = elect_leaders(raw_islands, snapshot)
            if len(islands) < 2:
                raise ExperimentError(
                    "two-valley field produced fewer than two islands; "
                    "increase the grid or the peak"
                )
            if bridged:
                bridge_system(system, percentile=80.0, min_size=2)
            origin_island = max(islands, key=lambda i: i.total_demand)
            far_island = min(
                (i for i in islands if i.index != origin_island.index),
                key=lambda i: -i.total_demand,
            )
            _quiet_start(system)
            update = system.inject_write(origin_island.leader)
            system.run_until_replicated(update.uid, max_time=120.0)
            times = system.apply_times(update.uid)
            far_members = sorted(far_island.members)
            far_mean = sum(times[m] for m in far_members) / len(far_members)
            everyone = reach_time(times, topo.nodes)
            if everyone is None:
                raise ExperimentError("islands run did not converge")
            leader_times[variant].append(times[far_island.leader])
            far_times[variant].append(far_mean)
            all_times[variant].append(everyone)
            if not bridged:
                islands_detected = len(islands)
    return IslandsResult(
        reps=reps,
        islands_detected=islands_detected,
        mean_far_leader={v: sum(t) / len(t) for v, t in leader_times.items()},
        mean_far_island={v: sum(t) / len(t) for v, t in far_times.items()},
        mean_all={v: sum(t) / len(t) for v, t in all_times.items()},
    )


# ---------------------------------------------------------------------------
# §8 claims: overhead; ablation of the two optimisations
# ---------------------------------------------------------------------------


@dataclass
class OverheadResult:
    """Traffic of weak vs fast over a fixed horizon (§8 byte claim)."""

    reps: int
    horizon: float
    rows_by_variant: Dict[str, Dict[str, float]]

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for variant, data in self.rows_by_variant.items():
            rows.append(
                (
                    variant,
                    f"{data['messages']:.0f}",
                    f"{data['bytes']:.0f}",
                    f"{data['fast_bytes']:.0f}",
                    f"{100 * data['fast_share']:.2f}%",
                    f"{data['time_top']:.3f}",
                )
            )
        return rows


def overhead_experiment(
    reps: int = 20, seed: int = 1, n: int = 50, horizon: float = 10.0
) -> OverheadResult:
    """Measure total traffic for weak vs fast over the same fixed window.

    Both variants run for exactly ``horizon`` session times on identical
    topologies/demands with one injected write, so byte counts are
    directly comparable: the fast-update machinery should add only a
    small fraction of bytes while slashing high-demand latency.
    """
    from ..core.metrics import TrafficMeter

    variants = {"weak": weak_consistency(), "fast": fast_consistency()}
    acc: Dict[str, Dict[str, float]] = {
        v: {"messages": 0.0, "bytes": 0.0, "fast_bytes": 0.0, "time_top": 0.0}
        for v in variants
    }
    for rep in range(reps):
        topo_seed = derive_seed(seed, f"overhead-topo/{rep}")
        demand_seed = derive_seed(seed, f"overhead-demand/{rep}")
        sim_seed = derive_seed(seed, f"overhead-sim/{rep}")
        for variant, config in variants.items():
            topo = internet_like(n, m=2, seed=topo_seed)
            demand = UniformRandomDemand(0.0, 100.0, seed=demand_seed)
            system = ReplicationSystem(
                topology=topo, demand=demand, config=config, seed=sim_seed
            )
            _quiet_start(system)
            origin = random.Random(sim_seed).choice(list(topo.nodes))
            update = system.inject_write(origin)
            system.run_until(horizon)
            report = TrafficMeter(system.network).report()
            times = system.apply_times(update.uid)
            top = demand.top_fraction(topo.nodes, 0.1)
            t_top = reach_time(times, top)
            acc[variant]["messages"] += report.messages_total
            acc[variant]["bytes"] += report.bytes_total
            acc[variant]["fast_bytes"] += report.bytes_fast
            acc[variant]["time_top"] += t_top if t_top is not None else horizon
    rows = {}
    for variant, sums in acc.items():
        bytes_total = sums["bytes"] / reps
        fast_bytes = sums["fast_bytes"] / reps
        rows[variant] = {
            "messages": sums["messages"] / reps,
            "bytes": bytes_total,
            "fast_bytes": fast_bytes,
            "fast_share": (fast_bytes / bytes_total) if bytes_total else 0.0,
            "time_top": sums["time_top"] / reps,
        }
    return OverheadResult(reps=reps, horizon=horizon, rows_by_variant=rows)


@dataclass
class AblationResult:
    """Contribution of each optimisation (§2's "two optimizations")."""

    reps: int
    rows_by_variant: Dict[str, Dict[str, float]]

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (variant, f"{data['mean_all']:.3f}", f"{data['mean_top']:.3f}")
            for variant, data in self.rows_by_variant.items()
        ]


def ablation_experiment(
    reps: int = 40, seed: int = 1, n: int = 50
) -> AblationResult:
    """Decompose fast consistency into its two optimisations.

    Variants: weak (neither), ordered-only (opt. 1), push-only (opt. 2),
    fast (both), fast with the unconditional ``always`` push rule, and
    fast with fanout 2 — quantifying each §2 design choice.
    """
    variants = {
        "weak": weak_consistency(),
        "ordered-only": high_demand_consistency(),
        "push-only": push_only_consistency(),
        "fast": fast_consistency(),
        "fast-always": fast_consistency(push_rule="always"),
        "fast-fanout2": fast_consistency(fast_fanout=2),
    }
    experiment = run_experiment(
        name="ablation",
        variants=variants,
        topology_factory=lambda s: internet_like(n, m=2, seed=s),
        demand_factory=lambda topo, s: UniformRandomDemand(0.0, 100.0, seed=s),
        reps=reps,
        seed=seed,
        params={"n": n},
    )
    rows = {}
    for variant in variants:
        series = experiment.series[variant]
        rows[variant] = {
            "mean_all": series.cdf_all().mean(),
            "mean_top": series.cdf_top().mean(),
        }
    return AblationResult(reps=reps, rows_by_variant=rows)


@dataclass
class SkewResult:
    """Sensitivity of fast consistency to demand skew (§8 worst case)."""

    reps: int
    rows_by_skew: Dict[str, Dict[str, float]]

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                skew,
                f"{data['weak_all']:.3f}",
                f"{data['fast_all']:.3f}",
                f"{data['fast_top']:.3f}",
                f"{100 * data['push_fraction']:.1f}%",
            )
            for skew, data in self.rows_by_skew.items()
        ]


def skew_experiment(reps: int = 25, seed: int = 1, n: int = 40) -> SkewResult:
    """Sweep demand non-uniformity from flat to heavily skewed.

    Demand skew is the paper's enabling assumption: with equal demands
    the algorithm "behaves like a normal weak consistency algorithm"
    (§8), and the more skewed the demand, the more work the push can do.
    For each skew level we measure weak vs fast convergence and the
    fraction of replicas that received the update via the push path.
    """
    from ..core.metrics import ConvergenceTracker
    from ..demand.static import ConstantDemand, UniformRandomDemand, ZipfDemand

    def demand_factory(skew: str, topo, demand_seed: int):
        if skew == "flat":
            return ConstantDemand(10.0)
        if skew == "uniform":
            return UniformRandomDemand(0.0, 100.0, seed=demand_seed)
        exponent = float(skew.split("/")[1])
        return ZipfDemand(topo.nodes, exponent=exponent, seed=demand_seed)

    skews = ("flat", "uniform", "zipf/0.5", "zipf/1.5")
    acc: Dict[str, Dict[str, float]] = {
        s: {"weak_all": 0.0, "fast_all": 0.0, "fast_top": 0.0, "push": 0.0, "nodes": 0.0}
        for s in skews
    }
    for rep in range(reps):
        topo_seed = derive_seed(seed, f"skew-topo/{rep}")
        sim_seed = derive_seed(seed, f"skew-sim/{rep}")
        topo = internet_like(n, m=2, seed=topo_seed)
        origin = random.Random(sim_seed).choice(list(topo.nodes))
        for skew in skews:
            demand = demand_factory(skew, topo, derive_seed(seed, f"skew-d/{rep}"))
            for variant, config in (
                ("weak", weak_consistency()),
                ("fast", fast_consistency()),
            ):
                system = ReplicationSystem(
                    topology=topo, demand=demand, config=config, seed=sim_seed
                )
                tracker = ConvergenceTracker(system.sim)
                _quiet_start(system)
                update = system.inject_write(origin)
                done = system.run_until_replicated(update.uid, max_time=120.0)
                if done is None:
                    raise ExperimentError(f"skew run did not converge ({skew})")
                if variant == "weak":
                    acc[skew]["weak_all"] += done
                    continue
                acc[skew]["fast_all"] += done
                top1 = demand.ranked(topo.nodes)[0]
                times = system.apply_times(update.uid)
                acc[skew]["fast_top"] += times[top1]
                breakdown = tracker.delivery_breakdown(update.uid)
                acc[skew]["push"] += breakdown.get("fast", 0)
                acc[skew]["nodes"] += topo.num_nodes - 1
    rows = {}
    for skew, sums in acc.items():
        rows[skew] = {
            "weak_all": sums["weak_all"] / reps,
            "fast_all": sums["fast_all"] / reps,
            "fast_top": sums["fast_top"] / reps,
            "push_fraction": sums["push"] / sums["nodes"] if sums["nodes"] else 0.0,
        }
    return SkewResult(reps=reps, rows_by_skew=rows)


@dataclass
class PartitionResult:
    """Weak/fast behaviour across a network partition (§1 motivation)."""

    reps: int
    heal_time: float
    rows_by_variant: Dict[str, Dict[str, float]]
    strong_commit_rate_during_partition: float

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                variant,
                f"{data['time_side_a']:.2f}",
                f"{data['time_all']:.2f}",
                f"{data['after_heal']:.2f}",
            )
            for variant, data in self.rows_by_variant.items()
        ]


def partition_experiment(
    reps: int = 20, seed: int = 1, n: int = 30, heal_time: float = 5.0
) -> PartitionResult:
    """§1: weak consistency "withstand[s] segmentation"; strong does not.

    The network splits into two halves at t=0 (the write's side A and
    the far side B) and heals at ``heal_time``. Weak/fast replicas
    converge within side A during the partition and finish the far side
    shortly after healing; a synchronous write attempted during the
    partition can never commit.
    """
    variants = {"weak": weak_consistency(), "fast": fast_consistency()}
    acc: Dict[str, Dict[str, float]] = {
        v: {"time_side_a": 0.0, "time_all": 0.0, "after_heal": 0.0} for v in variants
    }
    strong_commits = 0
    for rep in range(reps):
        topo_seed = derive_seed(seed, f"part-topo/{rep}")
        sim_seed = derive_seed(seed, f"part-sim/{rep}")
        topo = internet_like(n, m=2, seed=topo_seed)
        demand = UniformRandomDemand(0.0, 100.0, seed=topo_seed)
        nodes = sorted(topo.nodes)
        side_a = nodes[: n // 2]
        side_b = nodes[n // 2 :]
        origin = side_a[0]
        for variant, config in variants.items():
            system = ReplicationSystem(
                topology=topo, demand=demand, config=config, seed=sim_seed
            )
            system.network.partition([side_a, side_b])
            _quiet_start(system)
            update = system.inject_write(origin)
            system.run_until(heal_time)
            times_during = system.apply_times(update.uid)
            assert all(node in side_a for node in times_during), (
                "partition leaked an update to the far side"
            )
            system.network.heal_partition()
            done = system.run_until_replicated(update.uid, max_time=120.0)
            times = system.apply_times(update.uid)
            t_side_a = reach_time(times, side_a)
            if done is None or t_side_a is None:
                raise ExperimentError(f"partition run did not converge ({variant})")
            acc[variant]["time_side_a"] += t_side_a
            acc[variant]["time_all"] += done
            acc[variant]["after_heal"] += done - heal_time

        # A synchronous write attempted mid-partition cannot commit.
        strong = StrongConsistencySystem(
            topo,
            seed=derive_seed(seed, f"part-strong/{rep}"),
            write_timeout=heal_time - 0.5,
        )
        strong.network.partition([side_a, side_b])
        wid = strong.write(origin=origin)
        strong.sim.run(until=heal_time)
        if strong.committed(wid):
            strong_commits += 1
    rows = {
        variant: {key: value / reps for key, value in sums.items()}
        for variant, sums in acc.items()
    }
    return PartitionResult(
        reps=reps,
        heal_time=heal_time,
        rows_by_variant=rows,
        strong_commit_rate_during_partition=strong_commits / reps,
    )


@dataclass
class StalenessResult:
    """How stale may §4's demand knowledge get before it stops helping?"""

    reps: int
    rows_by_variant: Dict[str, Dict[str, float]]

    def rows(self) -> List[Tuple[object, ...]]:
        return [
            (
                variant,
                f"{data['mean_top']:.3f}",
                f"{data['mean_all']:.3f}",
                f"{data['advert_bytes']:.0f}",
            )
            for variant, data in self.rows_by_variant.items()
        ]


def staleness_experiment(
    reps: int = 30, seed: int = 1, n: int = 40
) -> StalenessResult:
    """Sweep the advertisement period under drifting demand.

    Demand follows a bounded random walk (it "changes with time", §3);
    fast consistency runs with oracle knowledge, advertised knowledge at
    several periods, and a frozen snapshot. The faster the adverts, the
    closer to the oracle — and the more advert bytes are spent; the
    frozen snapshot is the §3 straw man the sweep converges away from.
    """
    from ..demand.dynamic import RandomWalkDemand
    from ..demand.static import uniform_snapshot_for

    variants: Dict[str, ProtocolConfig] = {
        "oracle": fast_consistency(),
        "advertised/0.5": dynamic_fast_consistency(advert_period=0.5),
        "advertised/2": dynamic_fast_consistency(advert_period=2.0),
        "advertised/8": dynamic_fast_consistency(advert_period=8.0),
        "snapshot (§3)": static_table_consistency(),
    }
    acc: Dict[str, Dict[str, float]] = {
        v: {"mean_top": 0.0, "mean_all": 0.0, "advert_bytes": 0.0} for v in variants
    }
    completed = {v: 0 for v in variants}
    for rep in range(reps):
        topo_seed = derive_seed(seed, f"stale-topo/{rep}")
        sim_seed = derive_seed(seed, f"stale-sim/{rep}")
        topo = internet_like(n, m=2, seed=topo_seed)
        initial = uniform_snapshot_for(
            topo.nodes, 0.0, 100.0, seed=derive_seed(seed, f"stale-dem/{rep}")
        )
        demand = RandomWalkDemand(
            initial, step=25.0, low=0.0, high=100.0,
            seed=derive_seed(seed, f"stale-walk/{rep}"),
        )
        # Let demand drift before the write so snapshots are stale.
        for variant, config in variants.items():
            system = ReplicationSystem(
                topology=topo, demand=demand, config=config, seed=sim_seed
            )
            _quiet_start(system)
            system.run_until(6.0)
            origin = random.Random(sim_seed).choice(list(topo.nodes))
            update = system.inject_write(origin)
            system.run_until_replicated(update.uid, max_time=80.0)
            times = system.apply_times(update.uid)
            top1 = demand.ranked(topo.nodes, time=6.0)[0]
            t_top = reach_time(times, [top1], t0=6.0)
            t_all = reach_time(times, topo.nodes, t0=6.0)
            if t_top is None or t_all is None:
                continue
            completed[variant] += 1
            acc[variant]["mean_top"] += t_top
            acc[variant]["mean_all"] += t_all
            acc[variant]["advert_bytes"] += system.network.counters.bytes_by_kind.get(
                "demand-advert", 0
            )
    rows = {}
    for variant, sums in acc.items():
        count = max(1, completed[variant])
        rows[variant] = {key: value / count for key, value in sums.items()}
    return StalenessResult(reps=reps, rows_by_variant=rows)


# ---------------------------------------------------------------------------
# Named campaigns (the CLI's `repro campaign run NAME`)
# ---------------------------------------------------------------------------


def figures_campaign(reps: int = 120, seed: int = 1) -> Campaign:
    """Figs. 5 and 6 together: both CDF grids over one worker pool."""
    return Campaign(
        "figures",
        {"fig5": figure_cdf_plan(50, reps=reps, seed=seed),
         "fig6": figure_cdf_plan(100, reps=reps, seed=seed)},
        params={"reps": reps, "seed": seed},
    )


def robustness_campaign(reps: int = 40, seed: int = 1) -> Campaign:
    """Fault-regime x size product on the line topology (PR 2's sweep)."""
    base = ExperimentPlan(
        name="robustness",
        topology="line",
        demand="uniform",
        variants=("weak", "fast"),
        reps=reps,
        seed=derive_seed(seed, "robustness"),
    )
    return Campaign.from_product(
        "robustness",
        base,
        params={"reps": reps, "seed": seed},
        n=(16, 32),
        faults=(("none",), ("none", "split_brain"), ("none", "poisson_churn")),
    )


def smoke_campaign(reps: int = 2, seed: int = 1) -> Campaign:
    """A deliberately tiny two-plan campaign (CI and test fixture).

    Plan one is a healthy ring grid; plan two sweeps a split-brain
    regime on a line, so the smoke covers both the plain and the
    fault-swept checkpoint paths in seconds.
    """
    return Campaign(
        "smoke",
        {
            "ring": ExperimentPlan(
                name="smoke-ring", topology="ring", demand="uniform",
                variants=("weak", "fast"), n=8, reps=reps,
                seed=derive_seed(seed, "smoke/ring"),
            ),
            "line-faults": ExperimentPlan(
                name="smoke-line", topology="line", demand="uniform",
                variants=("weak", "fast"), faults=("none", "split_brain"),
                n=9, reps=reps, seed=derive_seed(seed, "smoke/line"),
            ),
        },
        params={"reps": reps, "seed": seed},
    )


#: Campaign factories by CLI name; each accepts ``reps``/``seed``
#: keywords and carries its own fidelity default for ``reps``.
CAMPAIGNS: Dict[str, Callable[..., Campaign]] = {
    "scaling": lambda reps=40, seed=1: scaling_campaign(reps=reps, seed=seed),
    "figures": figures_campaign,
    "robustness": robustness_campaign,
    "smoke": smoke_campaign,
}


def build_campaign(
    name: str, reps: Optional[int] = None, seed: int = 1
) -> Campaign:
    """Instantiate a registered campaign or fail with the known names.

    ``reps=None`` keeps the campaign's own fidelity default (e.g. the
    ``figures`` campaign runs 120 reps like ``repro fig5`` does) rather
    than imposing one CLI-wide number on every campaign.
    """
    if name not in CAMPAIGNS:
        raise ExperimentError(
            f"unknown campaign {name!r}; known: {sorted(CAMPAIGNS)}"
        )
    kwargs: Dict[str, object] = {"seed": seed}
    if reps is not None:
        kwargs["reps"] = reps
    return CAMPAIGNS[name](**kwargs)


# ---------------------------------------------------------------------------
# §1 motivation: strong consistency cost
# ---------------------------------------------------------------------------


@dataclass
class StrongCostResult:
    """Strong vs weak per-write cost across sizes (§1 motivation)."""

    rows_by_size: Dict[int, Dict[str, float]]

    def rows(self) -> List[Tuple[object, ...]]:
        rows = []
        for n, data in self.rows_by_size.items():
            rows.append(
                (
                    n,
                    f"{data['strong_latency']:.3f}",
                    f"{data['strong_messages']:.0f}",
                    f"{data['strong_fail_rate']:.2f}",
                    f"{data['weak_latency']:.3f}",
                    f"{data['weak_convergence']:.3f}",
                )
            )
        return rows


def strong_cost_experiment(
    sizes: Sequence[int] = (10, 25, 50),
    reps: int = 10,
    seed: int = 1,
    loss: float = 0.05,
) -> StrongCostResult:
    """Measure §1's claims about synchronous replication.

    For each size: the strong system's commit latency and message count
    per write (plus its failure rate under ``loss``), against the weak
    system's client-visible write latency (zero — the write returns
    immediately) and background convergence time.
    """
    rows: Dict[int, Dict[str, float]] = {}
    for n in sizes:
        strong_latency = 0.0
        strong_messages = 0.0
        strong_failures = 0
        weak_convergence = 0.0
        for rep in range(reps):
            topo_seed = derive_seed(seed, f"strong-topo/{n}/{rep}")
            topo = internet_like(n, m=2, seed=topo_seed)
            strong = StrongConsistencySystem(
                topo, seed=derive_seed(seed, f"strong-sim/{n}/{rep}")
            )
            wid = strong.write(origin=list(topo.nodes)[0])
            strong.sim.run(until=50.0)
            if strong.committed(wid):
                strong_latency += strong.latencies[-1]
            strong_messages += strong.network.counters.messages_sent

            lossy = StrongConsistencySystem(
                topo,
                seed=derive_seed(seed, f"strong-lossy/{n}/{rep}"),
                loss=loss,
                write_timeout=5.0,
            )
            wid2 = lossy.write(origin=list(topo.nodes)[0])
            lossy.sim.run(until=50.0)
            if not lossy.committed(wid2):
                strong_failures += 1

            weak = ReplicationSystem(
                topology=topo,
                demand=UniformRandomDemand(seed=topo_seed),
                config=weak_consistency(),
                seed=derive_seed(seed, f"weak-sim/{n}/{rep}"),
            )
            weak.start()
            update = weak.inject_write(list(topo.nodes)[0])
            done = weak.run_until_replicated(update.uid, max_time=80.0)
            weak_convergence += done if done is not None else 80.0
        rows[n] = {
            "strong_latency": strong_latency / reps,
            "strong_messages": strong_messages / reps,
            "strong_fail_rate": strong_failures / reps,
            "weak_latency": 0.0,  # weak writes return to the client at once
            "weak_convergence": weak_convergence / reps,
        }
    return StrongCostResult(rows_by_size=rows)
