"""Declarative, picklable experiment plans.

The paper's evaluation is hundreds of paired repetitions across
topology x demand x variant grids. A :class:`ScenarioSpec` describes one
repetition of one variant *by registry name* (see
:mod:`repro.experiments.scenarios`) plus derived seeds — no live
:class:`~repro.topology.graph.Topology` or
:class:`~repro.demand.base.DemandModel` objects — so specs cross process
boundaries and the grid can fan out over an
:class:`~repro.experiments.backends.ExecutionBackend`.

:class:`ExperimentPlan` is the declarative front end: it expands
``reps x variants`` into scenario specs with the same seed-derivation
scheme the legacy :func:`~repro.experiments.harness.run_experiment` loop
uses, so a plan executed on any backend reproduces the serial harness
bit-for-bit. Every registry builder is a pure function of its seeds,
which is what makes "rebuild inside the worker" equivalent to "share
one object across variants".

Example::

    plan = ExperimentPlan(
        name="fig5", topology="ba", demand="uniform",
        variants=("weak", "fast"), n=50, reps=120, seed=1,
    )
    result = plan.run(ProcessPoolBackend(max_workers=4))
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..faults.schedule import FaultSchedule
from ..topology.graph import Topology
from .harness import DEFAULT_TOP_FRACTION, TrialSpec, rep_seeds, run_trial
from .results import ExperimentResult, TrialResult
from .scenarios import DEMANDS, FAULTS, PLACEMENTS, TOPOLOGIES, VARIANTS


def _check_registry_key(kind: str, registry: Mapping[str, object], name: str) -> None:
    if name not in registry:
        raise ExperimentError(
            f"unknown {kind} {name!r}; known: {sorted(registry)}"
        )


def series_label(variant: str, faults: str, placement: str = "none") -> str:
    """Result-series name for a (variant, fault regime, placement) triple.

    Healthy trials keep the bare variant name (existing results stay
    stable); faulted trials append the regime, so a plan sweeping fault
    regimes yields one comparable series per pair, and placement
    regimes append a ``+placement`` suffix the same way.
    """
    label = variant if faults == "none" else f"{variant}@{faults}"
    return label if placement == "none" else f"{label}+{placement}"


@dataclass(frozen=True)
class ScenarioSpec:
    """One repetition of one variant, named by registry keys.

    Unlike :class:`~repro.experiments.harness.TrialSpec` (which carries
    live objects), every field here is a plain string or number, so the
    spec pickles cheaply and the worker process rebuilds the topology,
    demand model and protocol config from the registries.

    Attributes:
        experiment: Name of the owning experiment (for reports).
        rep: Repetition index within the experiment.
        variant: :data:`~repro.experiments.scenarios.VARIANTS` key.
        topology: :data:`~repro.experiments.scenarios.TOPOLOGIES` key.
        demand: :data:`~repro.experiments.scenarios.DEMANDS` key.
        n: Requested node count (generators may round; the effective
            count is recorded in ``TrialResult.n_nodes``).
        topo_seed / demand_seed / sim_seed / origin_seed: Derived seeds;
            every variant of the same repetition shares them, which is
            what makes variant comparisons paired.
        max_time / top_fraction / loss: Run knobs, as in ``TrialSpec``.
        faults: :data:`~repro.experiments.scenarios.FAULTS` key naming
            the fault regime replayed during the trial (``"none"`` = a
            healthy network).
        fault_seed: Derived seed the fault generator runs with; shared
            by every variant of a repetition so fault comparisons are
            paired too.
        placement: :data:`~repro.experiments.scenarios.PLACEMENTS` key
            naming the placement regime (``"none"`` = classic harness,
            ``"static"`` = capacity metric without a controller, any
            policy name = run the autoscaler).
    """

    experiment: str
    rep: int
    variant: str
    topology: str
    demand: str
    n: int
    topo_seed: int
    demand_seed: int
    sim_seed: int
    origin_seed: int
    max_time: float = 80.0
    top_fraction: float = DEFAULT_TOP_FRACTION
    loss: float = 0.0
    bridge_islands: bool = False
    island_percentile: float = 75.0
    faults: str = "none"
    fault_seed: int = 0
    placement: str = "none"

    def validate(self) -> "ScenarioSpec":
        """Raise :class:`ExperimentError` if any registry key is unknown."""
        _check_registry_key("topology", TOPOLOGIES, self.topology)
        _check_registry_key("demand", DEMANDS, self.demand)
        _check_registry_key("variant", VARIANTS, self.variant)
        _check_registry_key("fault regime", FAULTS, self.faults)
        _check_registry_key("placement", PLACEMENTS, self.placement)
        return self

    def series_label(self) -> str:
        """Name of the result series this trial belongs to."""
        return series_label(self.variant, self.faults, self.placement)

    def key(self) -> str:
        """Stable identity of this scenario within its experiment.

        ``(rep, faults, placement, variant)`` uniquely names a scenario
        inside one plan (topology, demand and n are plan constants), so
        the key is what checkpoint sinks use to skip already-recorded
        work on resume. Campaign runners prefix it with the plan's
        name. Placement-free scenarios keep the historical three-part
        key, so existing checkpoints stay valid.
        """
        key = f"rep={self.rep}/faults={self.faults}/variant={self.variant}"
        if self.placement != "none":
            key += f"/placement={self.placement}"
        return key

    # -- materialisation (runs inside the worker process) -----------------

    def build_topology(self) -> Topology:
        return TOPOLOGIES[self.topology](self.n, self.topo_seed)

    def resolve_origin(self, topology: Topology) -> int:
        """Pick the write origin exactly like the serial harness does."""
        return random.Random(self.origin_seed).choice(list(topology.nodes))

    def build_faults(self, topology: Topology) -> Optional[FaultSchedule]:
        """Generate the fault schedule (None for ``"none"``/empty ones)."""
        schedule = FAULTS[self.faults](topology, self.fault_seed)
        return schedule if schedule.events else None

    def to_trial_spec(self) -> TrialSpec:
        """Build the live :class:`TrialSpec` this scenario describes."""
        self.validate()
        topology = self.build_topology()
        demand = DEMANDS[self.demand](topology, self.demand_seed)
        return TrialSpec(
            topology=topology,
            demand=demand,
            config=VARIANTS[self.variant](),
            seed=self.sim_seed,
            origin=self.resolve_origin(topology),
            max_time=self.max_time,
            top_fraction=self.top_fraction,
            bridge_islands=self.bridge_islands,
            island_percentile=self.island_percentile,
            loss=self.loss,
            faults=self.build_faults(topology),
            placement=PLACEMENTS[self.placement](),
        )

    def run(self) -> TrialResult:
        """Execute this scenario and return its measurements."""
        trial, _system = run_trial(self.to_trial_spec())
        return replace(trial, rep=self.rep)


def run_scenario(spec: ScenarioSpec) -> TrialResult:
    """Module-level entry point so process pools can pickle the work."""
    return spec.run()


@dataclass(frozen=True)
class ExperimentPlan:
    """A reps x variants grid over one (topology, demand) scenario.

    Attributes:
        name: Experiment id recorded in the result.
        topology / demand: Registry keys resolved inside each trial.
        variants: Registry keys, one series per entry (order preserved).
        n: Requested node count per topology.
        reps: Paired repetitions per variant.
        seed: Master seed; repetition *i* derives its topology, demand,
            simulator, origin and fault seeds from it exactly like
            :func:`~repro.experiments.harness.run_experiment`.
        max_time / top_fraction / loss: Run knobs for every trial.
        faults: Fault-regime registry keys to sweep (default: a healthy
            network). Each extra regime multiplies the grid; every
            (variant, regime) pair of a repetition shares the
            repetition's seeds, so fault comparisons are paired the same
            way variant comparisons are.
        placements: Placement-regime registry keys to sweep (default:
            placement disabled). Sweeping e.g. ``("static",
            "threshold")`` yields paired series whose
            ``satisfied_area`` difference is the autoscaler's measured
            benefit on identical seeds.
        params: Extra parameters recorded verbatim in the result.
    """

    name: str
    topology: str = "ba"
    demand: str = "uniform"
    variants: Tuple[str, ...] = ("weak", "fast")
    n: int = 50
    reps: int = 50
    seed: int = 0
    max_time: float = 80.0
    top_fraction: float = DEFAULT_TOP_FRACTION
    loss: float = 0.0
    faults: Tuple[str, ...] = ("none",)
    placements: Tuple[str, ...] = ("none",)
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # A bare string is a single key, not an iterable of characters.
        for attr in ("variants", "faults", "placements"):
            value = getattr(self, attr)
            coerced = (value,) if isinstance(value, str) else tuple(value)
            object.__setattr__(self, attr, coerced)

    def validate(self) -> "ExperimentPlan":
        if self.reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {self.reps}")
        if not self.variants:
            raise ExperimentError("no variants given")
        if len(set(self.variants)) != len(self.variants):
            raise ExperimentError(f"duplicate variants in {self.variants}")
        if not self.faults:
            raise ExperimentError("no fault regimes given (use ('none',))")
        if len(set(self.faults)) != len(self.faults):
            raise ExperimentError(f"duplicate fault regimes in {self.faults}")
        if not self.placements:
            raise ExperimentError("no placements given (use ('none',))")
        if len(set(self.placements)) != len(self.placements):
            raise ExperimentError(f"duplicate placements in {self.placements}")
        _check_registry_key("topology", TOPOLOGIES, self.topology)
        _check_registry_key("demand", DEMANDS, self.demand)
        for variant in self.variants:
            _check_registry_key("variant", VARIANTS, variant)
        for fault in self.faults:
            _check_registry_key("fault regime", FAULTS, fault)
        for placement in self.placements:
            _check_registry_key("placement", PLACEMENTS, placement)
        return self

    # -- expansion --------------------------------------------------------

    def scenarios(self) -> List[ScenarioSpec]:
        """Expand into scenario specs, repetition-major.

        Every (fault regime, variant) pair of repetition *i* shares that
        repetition's derived seeds, so comparisons stay paired no matter
        which backend runs the specs or in what order the pool schedules
        them. Variants are innermost, so a plan with the default healthy
        regime expands exactly as before the faults axis existed.
        """
        self.validate()
        specs: List[ScenarioSpec] = []
        for rep in range(self.reps):
            seeds = rep_seeds(self.seed, rep)
            for fault in self.faults:
                for placement in self.placements:
                    for variant in self.variants:
                        specs.append(
                            ScenarioSpec(
                                experiment=self.name,
                                rep=rep,
                                variant=variant,
                                topology=self.topology,
                                demand=self.demand,
                                n=self.n,
                                topo_seed=seeds.topology,
                                demand_seed=seeds.demand,
                                sim_seed=seeds.simulator,
                                origin_seed=seeds.origin,
                                max_time=self.max_time,
                                top_fraction=self.top_fraction,
                                loss=self.loss,
                                faults=fault,
                                fault_seed=seeds.faults,
                                placement=placement,
                            )
                        )
        return specs

    def series_labels(self) -> Tuple[str, ...]:
        """Result-series names in expansion order (fault-major)."""
        return tuple(
            series_label(variant, fault, placement)
            for fault in self.faults
            for placement in self.placements
            for variant in self.variants
        )

    def total_trials(self) -> int:
        """Trials the plan expands to (``reps * faults * placements * variants``)."""
        return (
            self.reps
            * len(self.faults)
            * len(self.placements)
            * len(self.variants)
        )

    # -- execution --------------------------------------------------------

    def assemble(
        self, trials: Sequence[TrialResult], backend_name: str = "serial"
    ) -> ExperimentResult:
        """Package trials (in expansion order) into an experiment result.

        Split out of :meth:`run` so campaign runners can execute the
        scenario stream themselves (out of order, partially from a
        checkpoint sink) and still produce the exact result a plain
        ``plan.run`` would: assembly only depends on the trial rows and
        their expansion-order position.
        """
        if len(trials) != self.total_trials():
            raise ExperimentError(
                f"plan {self.name} expands to {self.total_trials()} trials, "
                f"got {len(trials)}"
            )
        result = ExperimentResult(
            name=self.name,
            params={
                "reps": self.reps,
                "seed": self.seed,
                "max_time": self.max_time,
                "top_fraction": self.top_fraction,
                "loss": self.loss,
                "topology": self.topology,
                "demand": self.demand,
                "variants": list(self.variants),
                "faults": list(self.faults),
                "placements": list(self.placements),
                "n": self.n,
                **dict(self.params),
            },
        )
        labels = self.series_labels()
        for index, trial in enumerate(trials):
            result.variant(labels[index % len(labels)]).add(trial)
        effective = {t.n_nodes for t in trials if t.n_nodes is not None}
        if effective and effective != {self.n}:
            result.params["effective_n"] = sorted(effective)[0]
        result.notes["backend"] = backend_name
        return result

    def run(self, backend: Optional["ExecutionBackend"] = None) -> ExperimentResult:
        """Execute every scenario on ``backend`` (serial by default).

        Results are assembled in expansion order, so the returned
        :class:`ExperimentResult` is identical for every backend. A
        passed-in backend is left open (its pool keeps running for the
        caller's next plan); close it yourself or use it as a context
        manager.
        """
        from .backends import SerialBackend

        if backend is None:
            backend = SerialBackend()
        trials = backend.run_trials(self.scenarios())
        return self.assemble(trials, backend.name)


def run_plan(
    plan: ExperimentPlan, backend: Optional["ExecutionBackend"] = None
) -> ExperimentResult:
    """Functional alias for :meth:`ExperimentPlan.run`."""
    return plan.run(backend)
