"""Result containers with JSON persistence.

Experiments produce :class:`TrialResult` rows (one per simulated
repetition) grouped into :class:`VariantSeries` (one per protocol
variant) inside an :class:`ExperimentResult`. Everything serialises to
plain JSON so EXPERIMENTS.md numbers can be regenerated and archived.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ExperimentError
from .cdf import EmpiricalCdf

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TrialResult:
    """Measurements from one repetition of one variant.

    Attributes:
        rep: Repetition index.
        origin: Node where the tracked write was injected.
        time_all: Sessions until every replica had the update (None =
            did not converge within the horizon).
        time_top: Sessions until the high-demand subset (top fraction)
            had it.
        time_top1: Sessions until the single most-demanded replica had
            it — the paper's "replica with most demand".
        mean_time: Mean per-replica sessions-to-consistency.
        diameter: Topology diameter for this repetition.
        messages: Total messages the network carried.
        bytes_sent: Total bytes the network carried.
        n_nodes: Effective node count of the built topology (may differ
            from the requested ``n`` for generators that round, e.g.
            grid/torus squaring; None in results recorded before this
            field existed).
        time_post_heal: Sessions between the last partition heal and
            full convergence, for trials run under a fault schedule
            containing a healed partition (None otherwise, and in
            results recorded before this field existed).
        time_top_shocked: Sessions until the high-demand subset ranked
            by the *post-shock* demand surface had the update, for
            trials whose fault schedule contains a demand shock (None
            otherwise). ``time_top`` always ranks by pre-shock demand,
            so the pair shows whether a variant re-routed toward the
            newly hot region.
        satisfied_area: Sum of the capacity-aware satisfied-requests
            series over the run (Fig. 3 area under the curve with a
            finite per-replica capacity), for trials run under a
            placement regime (None otherwise). Comparing an autoscaled
            trial's area to the paired static trial's is the
            placement benefit.
        replicas_spawned: Replicas the placement controller created
            (0 under static placement; None without a regime).
        replicas_retired: Replicas the controller retired.
        replicas_peak: Peak simultaneous extra copies.
        placement_bytes: Control-loop bytes (demand reports + placement
            commands) the network carried.
    """

    rep: int
    origin: int
    time_all: Optional[float]
    time_top: Optional[float]
    time_top1: Optional[float]
    mean_time: Optional[float]
    diameter: int
    messages: int
    bytes_sent: int
    n_nodes: Optional[int] = None
    time_post_heal: Optional[float] = None
    time_top_shocked: Optional[float] = None
    satisfied_area: Optional[float] = None
    replicas_spawned: Optional[int] = None
    replicas_retired: Optional[int] = None
    replicas_peak: Optional[int] = None
    placement_bytes: Optional[int] = None


@dataclass
class VariantSeries:
    """All repetitions of one protocol variant."""

    variant: str
    trials: List[TrialResult] = field(default_factory=list)

    def add(self, trial: TrialResult) -> None:
        self.trials.append(trial)

    def cdf_all(self) -> EmpiricalCdf:
        """CDF of sessions-to-all-replicas (a Figs. 5-6 curve)."""
        return EmpiricalCdf(t.time_all for t in self.trials)

    def cdf_top(self) -> EmpiricalCdf:
        """CDF of sessions-to-high-demand-subset."""
        return EmpiricalCdf(t.time_top for t in self.trials)

    def cdf_top1(self) -> EmpiricalCdf:
        """CDF of sessions to the single most-demanded replica."""
        return EmpiricalCdf(t.time_top1 for t in self.trials)

    def mean_post_heal(self) -> Optional[float]:
        """Mean post-heal convergence time over faulted trials.

        None when no trial carries the measurement (no fault schedule,
        or no healed partition in it); trials that never converged are
        excluded, as in the CDF accessors. That exclusion makes the
        mean *optimistic* whenever some trials never converged — always
        read it next to :meth:`converged_fraction`, which reports how
        many trials the mean actually covers.
        """
        values = [t.time_post_heal for t in self.trials if t.time_post_heal is not None]
        if not values:
            return None
        return sum(values) / len(values)

    def converged_fraction(self) -> float:
        """Fraction of trials that fully converged within the horizon.

        A trial converged when ``time_all`` is recorded; anything else
        hit the ``max_time`` horizon first (e.g. a partition that never
        healed in time). Means computed over converged trials only —
        :meth:`mean_post_heal`, the CDF accessors — silently drop the
        rest, so report this fraction alongside them and treat any
        value < 1.0 as a censored, optimistic summary.
        """
        if not self.trials:
            raise ExperimentError(f"variant {self.variant} has no trials")
        converged = sum(1 for t in self.trials if t.time_all is not None)
        return converged / len(self.trials)

    def mean_satisfied_area(self) -> Optional[float]:
        """Mean capacity-aware satisfaction area over placement trials.

        None when no trial in the series ran under a placement regime.
        """
        values = [
            t.satisfied_area for t in self.trials if t.satisfied_area is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def mean_messages(self) -> float:
        if not self.trials:
            raise ExperimentError(f"variant {self.variant} has no trials")
        return sum(t.messages for t in self.trials) / len(self.trials)

    def mean_bytes(self) -> float:
        if not self.trials:
            raise ExperimentError(f"variant {self.variant} has no trials")
        return sum(t.bytes_sent for t in self.trials) / len(self.trials)


@dataclass
class ExperimentResult:
    """A named experiment's full output.

    Attributes:
        name: Experiment id (``fig5``, ``scaling``...).
        params: The parameters it ran with (nodes, reps, seed...).
        series: Variant name -> measurements.
        notes: Free-form annotations (paper reference values etc.).
    """

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    series: Dict[str, VariantSeries] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    def variant(self, name: str) -> VariantSeries:
        """Get-or-create the series for ``name``."""
        if name not in self.series:
            self.series[name] = VariantSeries(variant=name)
        return self.series[name]

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": self.params,
            "notes": self.notes,
            "series": {
                name: [asdict(t) for t in series.trials]
                for name, series in self.series.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: PathLike) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        try:
            result = cls(
                name=str(data["name"]),
                params=dict(data.get("params", {})),
                notes=dict(data.get("notes", {})),
            )
            for variant, trials in dict(data.get("series", {})).items():
                series = result.variant(variant)
                for row in trials:
                    series.add(TrialResult(**row))
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed result payload: {exc}") from exc
        return result

    @classmethod
    def load(cls, path: PathLike) -> "ExperimentResult":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
