"""The scenario registries: names -> builders.

:data:`TOPOLOGIES`, :data:`DEMANDS`, :data:`VARIANTS` and :data:`FAULTS`
are the single source of truth for everything addressable by name — the
CLI, the examples, and (crucially) the declarative experiment pipeline:
:class:`~repro.experiments.plan.ScenarioSpec` carries registry keys and
seeds across process boundaries and workers rebuild the live objects
through these tables. Every builder must therefore be a pure function
of its arguments (same ``(n, seed)`` -> equal topology, same
``(topology, seed)`` -> equal demand values), or parallel and serial
execution would diverge.

:func:`build_topology`, :func:`build_demand` and :func:`build_variant`
resolve names with helpful errors, and :func:`build_system` assembles a
whole system for one-off runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.config import ProtocolConfig
from ..core.metrics import METRIC_TRACE_CATEGORIES
from ..core.system import ReplicationSystem
from ..core.variants import (
    dynamic_fast_consistency,
    fast_consistency,
    high_demand_consistency,
    push_only_consistency,
    static_table_consistency,
    weak_consistency,
)
from ..demand.base import DemandModel
from ..demand.dynamic import FlashCrowdDemand
from ..demand.field import two_valley_field
from ..demand.static import ConstantDemand, UniformRandomDemand, ZipfDemand
from ..errors import ExperimentError, ExperimentSizeWarning
from ..faults.generators import (
    corrupt_storm,
    demand_shock_storm,
    flapping_links,
    lossy_wan,
    poisson_churn,
    rolling_restart,
    split_brain,
)
from ..faults.process import FaultProcess, prepare_demand
from ..faults.schedule import FaultSchedule
from ..placement.policies import PlacementSetup
from ..topology.brite import internet_like, waxman, BriteConfig
from ..topology.graph import Topology
from ..topology.hierarchical import hierarchical
from ..topology.simple import complete, grid, line, ring, star, torus

import math
import random
import warnings

#: name -> topology factory taking (n, seed).
TOPOLOGIES: Dict[str, Callable[[int, int], Topology]] = {
    "ba": lambda n, seed: internet_like(n, m=2, seed=seed),
    "ba-m3": lambda n, seed: internet_like(n, m=3, seed=seed),
    "waxman": lambda n, seed: waxman(BriteConfig(n=n, m=2), random.Random(seed)),
    "line": lambda n, seed: line(n),
    "ring": lambda n, seed: ring(n),
    "star": lambda n, seed: star(n),
    "grid": lambda n, seed: grid(*_square_sides(n)),
    "torus": lambda n, seed: torus(*_square_sides(n)),
    "complete": lambda n, seed: complete(n),
    "cdn": lambda n, seed: hierarchical(seed=seed, **_cdn_shape(n)),
}

#: name -> demand factory taking (topology, seed).
DEMANDS: Dict[str, Callable[[Topology, int], DemandModel]] = {
    "uniform": lambda topo, seed: UniformRandomDemand(0.0, 100.0, seed=seed),
    "zipf": lambda topo, seed: ZipfDemand(topo.nodes, exponent=1.0, seed=seed),
    "constant": lambda topo, seed: ConstantDemand(10.0),
    "two-valleys": lambda topo, seed: _two_valleys(topo),
    "flash-crowd": lambda topo, seed: _flash_crowd(topo, seed),
}

#: name -> fault-schedule factory taking (topology, seed).
FAULTS: Dict[str, Callable[[Topology, int], FaultSchedule]] = {
    "none": lambda topo, seed: FaultSchedule(name="none"),
    "split_brain": split_brain,
    "poisson_churn": poisson_churn,
    "flapping_links": flapping_links,
    "demand_shock": demand_shock_storm,
    "rolling_restart": rolling_restart,
    "lossy_wan": lossy_wan,
    "corrupt_storm": corrupt_storm,
}

#: name -> placement regime constructor (None = placement disabled).
#: ``"none"`` runs the classic harness untouched; ``"static"`` measures
#: the capacity-aware satisfaction metric without a controller (the
#: baseline every autoscaling policy is compared against); the rest run
#: a :class:`~repro.placement.controller.PlacementController` with the
#: named policy.
PLACEMENTS: Dict[str, Callable[[], Optional[PlacementSetup]]] = {
    "none": lambda: None,
    "static": lambda: PlacementSetup(policy="static"),
    "threshold": lambda: PlacementSetup(policy="threshold"),
    "top-share": lambda: PlacementSetup(policy="top-share"),
    "efficiency": lambda: PlacementSetup(policy="efficiency"),
}

#: name -> protocol variant constructor.
VARIANTS: Dict[str, Callable[[], ProtocolConfig]] = {
    "weak": weak_consistency,
    "ordered": high_demand_consistency,
    "push-only": push_only_consistency,
    "fast": fast_consistency,
    "dynamic": dynamic_fast_consistency,
    "static-table": static_table_consistency,
}


def _square_sides(n: int) -> tuple:
    """Sides of the (near-)square grid/torus for ``n`` requested nodes.

    Grid and torus topologies are built ``side x side``; when ``n`` is
    not a perfect square the effective node count differs from the
    request, which silently skews per-node comparisons. We warn loudly
    (and the harness records the effective count in
    ``TrialResult.n_nodes``) instead of failing, since sweeps routinely
    pass round numbers like 50.
    """
    side = max(2, int(round(math.sqrt(n))))
    if side * side != n:
        warnings.warn(
            f"grid/torus topologies are square: requested n={n} nodes but "
            f"building {side}x{side} = {side * side}; results record the "
            "effective node count in n_nodes",
            ExperimentSizeWarning,
            stacklevel=3,
        )
    return side, side


def _cdn_shape(n: int) -> dict:
    """AS/router split of the ``cdn`` topology for ``n`` requested nodes.

    A small AS tier (>= 3, so the BA generator's ``as_m=2`` is valid)
    over near-even router tiers. Like grid/torus the effective node
    count may differ from the request — the harness records it in
    ``TrialResult.n_nodes``.
    """
    as_count = max(3, int(round(math.sqrt(n) / 2)))
    routers = max(3, int(math.ceil(n / as_count)))
    effective = as_count * routers
    if effective != n:
        warnings.warn(
            f"cdn topologies are AS x router rectangles: requested n={n} "
            f"nodes but building {as_count}x{routers} = {effective}; "
            "results record the effective node count in n_nodes",
            ExperimentSizeWarning,
            stacklevel=3,
        )
    return {"autonomous_systems": as_count, "routers_per_as": routers}


def _flash_crowd(topo: Topology, seed: int) -> DemandModel:
    """A mid-run demand spike on ~1/12 of the nodes.

    The base is uniform (2-10 req/unit, all well under one replica's
    default 25-capacity); during [10, 45) the hot set's demand is
    multiplied by 12, far past what a single replica serves — the
    scenario the placement control loop exists for. The base model is
    :class:`UniformRandomDemand` rather than Zipf because controller-
    spawned replicas must be able to query their own demand (uniform
    models accept any node id).
    """
    nodes = sorted(topo.nodes)
    hot = random.Random(seed).sample(nodes, max(1, len(nodes) // 12))
    return FlashCrowdDemand(
        UniformRandomDemand(2.0, 10.0, seed=seed),
        hot_nodes=hot,
        start=10.0,
        end=45.0,
        factor=12.0,
    )


def _two_valleys(topo: Topology) -> DemandModel:
    xs = []
    ys = []
    for node in topo.nodes:
        pos = topo.position(node)
        if pos is None:
            raise ExperimentError(
                "two-valleys demand needs node positions; use a placed topology"
            )
        xs.append(pos[0])
        ys.append(pos[1])
    plane = max(max(xs) - min(xs), max(ys) - min(ys)) or 1.0
    return two_valley_field(topo, plane_size=plane)


def build_topology(name: str, n: int, seed: int = 0) -> Topology:
    """Build a topology by registry name."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown topology {name!r}; known: {sorted(TOPOLOGIES)}"
        ) from None
    return factory(n, seed)


def build_demand(name: str, topology: Topology, seed: int = 0) -> DemandModel:
    """Build a demand model by registry name."""
    try:
        factory = DEMANDS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown demand {name!r}; known: {sorted(DEMANDS)}"
        ) from None
    return factory(topology, seed)


def build_faults(name: str, topology: Topology, seed: int = 0) -> FaultSchedule:
    """Build a fault schedule by registry name (``"none"`` is empty)."""
    try:
        factory = FAULTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown fault regime {name!r}; known: {sorted(FAULTS)}"
        ) from None
    return factory(topology, seed)


def build_placement(name: str) -> Optional[PlacementSetup]:
    """Build a placement regime by registry name (``"none"`` -> None)."""
    try:
        factory = PLACEMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown placement {name!r}; known: {sorted(PLACEMENTS)}"
        ) from None
    return factory()


def build_variant(name: str) -> ProtocolConfig:
    """Build a protocol configuration by registry name."""
    try:
        factory = VARIANTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown variant {name!r}; known: {sorted(VARIANTS)}"
        ) from None
    return factory()


#: ``build_system(trace=...)`` modes: everything, exactly what the
#: metric collectors read, or nothing at all.
TRACE_MODES = ("full", "metrics", "off")


def build_system(
    topology: str = "ba",
    demand: str = "uniform",
    variant: str = "fast",
    n: int = 50,
    seed: int = 0,
    loss: float = 0.0,
    faults: Optional[str] = None,
    trace: str = "metrics",
) -> ReplicationSystem:
    """One-call system assembly from registry names.

    With ``faults`` (a :data:`FAULTS` key), the schedule is generated
    from the topology and seed, its replay is armed on the simulator
    before the system starts, and the installed
    :class:`~repro.faults.process.FaultProcess` is exposed as
    ``system.fault_process`` (None otherwise).

    ``trace`` controls what the simulator's tracer stores. Experiment
    runs default to ``"metrics"`` — only the categories the metric
    helpers actually read
    (:data:`repro.core.metrics.METRIC_TRACE_CATEGORIES`); everything
    else the collectors consume rides the topic bus and the traffic
    counters, so storing further records would be pure overhead on
    large sweeps (``bench_hotpath`` records the delta). Pass ``"full"``
    when debugging a protocol interaction, or ``"off"`` to disable
    tracing wholesale.
    """
    if trace not in TRACE_MODES:
        raise ExperimentError(
            f"unknown trace mode {trace!r}; known: {list(TRACE_MODES)}"
        )
    topo = build_topology(topology, n, seed)
    model = build_demand(demand, topo, seed)
    config = build_variant(variant)
    schedule = None
    if faults is not None:
        schedule = build_faults(faults, topo, seed)
        model = prepare_demand(model, schedule)
    system = ReplicationSystem(
        topology=topo, demand=model, config=config, seed=seed, loss=loss
    )
    if trace == "metrics":
        system.sim.trace.enable_only(METRIC_TRACE_CATEGORIES)
    elif trace == "off":
        system.sim.trace.disable()
    system.fault_process = FaultProcess(system, schedule) if schedule else None
    return system
