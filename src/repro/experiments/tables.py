"""Plain-text table rendering for experiment reports.

The benches and the CLI print the same rows the paper reports; this
module keeps the formatting in one place (monospace, right-aligned
numbers, a separator under the header).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import ExperimentError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Numbers are right-aligned, everything else left-aligned; the first
    column is always left-aligned (it is the row label).
    """
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_number(text: str) -> bool:
        try:
            float(text.replace("%", "").replace("x", ""))
        except ValueError:
            return False
        return True

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i > 0 and is_number(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_kv(title: str, pairs: Iterable[Sequence[object]]) -> str:
    """Render key/value annotation lines under a title."""
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
