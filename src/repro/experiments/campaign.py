"""Multi-plan campaigns: one backend, streamed results, resumable runs.

The paper's evaluation is a *family* of grids — sizes x variants x
demand x fault regimes — but a single
:class:`~repro.experiments.plan.ExperimentPlan` only describes one grid.
A :class:`Campaign` names several plans (the whole §5 scaling sweep, a
sweep x fault-regime product, figs. 5 and 6 together) and runs them all
over **one shared execution backend**: a
:class:`~repro.experiments.backends.ProcessPoolBackend` spawns its
workers once for the entire campaign instead of once per plan.

Trials stream through the backend's ``run_trials_iter`` and every
completed scenario is checkpointed to a
:class:`~repro.experiments.sink.JsonLinesSink` as the backend yields
it (a process pool yields per completed chunk), keyed by
``plan::rep=../faults=../variant=..``. A killed campaign
resumes by re-running with the same sink: recorded keys are skipped and
their stored rows spliced back in expansion order, so the resumed
:class:`CampaignResult` is bit-identical to an uninterrupted run —
every scenario is a pure function of its seeds, and assembly only
depends on expansion-order position.

Example::

    campaign = Campaign("scaling", scaling_plans(sizes=(25, 50, 100)))
    with ProcessPoolBackend(max_workers=8) as backend:
        outcome = campaign.run(backend, sink=JsonLinesSink("scaling.jsonl"))
    outcome.results["50"].series["fast"].cdf_all().mean()
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ExperimentError
from .backends import ExecutionBackend, is_backend, resolve_backend
from .plan import ExperimentPlan
from .results import ExperimentResult, PathLike, TrialResult
from .sink import ResultSink


class CampaignPaused(ExperimentError):
    """A limited campaign run stopped before completing every trial.

    Raised by :meth:`Campaign.run` when ``limit`` new trials have been
    executed and checkpointed but work remains; carries the progress so
    callers (the CLI, tests) can report it and resume later.
    """

    def __init__(self, done: int, total: int):
        self.done = done
        self.total = total
        super().__init__(
            f"campaign paused after reaching its trial limit: "
            f"{done}/{total} trials recorded"
        )


def scenario_key(plan_key: str, spec) -> str:
    """Checkpoint key of one scenario: ``plan::rep=../faults=../variant=..``.

    ``::`` separates the plan key from the scenario identity so plan
    keys may themselves contain ``/`` (e.g. product keys like
    ``n=25/faults=none+split_brain``).
    """
    return f"{plan_key}::{spec.key()}"


@dataclass
class CampaignResult:
    """Aggregated output of every plan in a campaign.

    Attributes:
        name: Campaign id.
        results: Plan key -> that plan's :class:`ExperimentResult`, in
            campaign order.
        params: The parameters the campaign ran with.
        notes: Free-form annotations (backend name, resume counts...).
    """

    name: str
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    def total_trials(self) -> int:
        return sum(
            len(series.trials)
            for result in self.results.values()
            for series in result.series.values()
        )

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": self.params,
            "notes": self.notes,
            "results": {key: result.to_dict() for key, result in self.results.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: PathLike) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignResult":
        try:
            result = cls(
                name=str(data["name"]),
                params=dict(data.get("params", {})),
                notes=dict(data.get("notes", {})),
            )
            for key, payload in dict(data.get("results", {})).items():
                result.results[key] = ExperimentResult.from_dict(payload)
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed campaign payload: {exc}") from exc
        return result

    @classmethod
    def load(cls, path: PathLike) -> "CampaignResult":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class Campaign:
    """An ordered set of named experiment plans run as one unit.

    Args:
        name: Campaign id (recorded in results and checkpoint headers).
        plans: Either a mapping of plan key -> plan (keys are coerced to
            strings, so ``scaling_plans()``'s int-keyed dict works
            as-is) or a sequence of plans keyed by their own names.
        params: Extra parameters recorded verbatim in the result.
    """

    def __init__(
        self,
        name: str,
        plans: Union[Mapping[object, ExperimentPlan], Sequence[ExperimentPlan]],
        params: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        if isinstance(plans, Mapping):
            self.plans: Dict[str, ExperimentPlan] = {
                str(key): plan for key, plan in plans.items()
            }
        else:
            self.plans = {plan.name: plan for plan in plans}
            if len(self.plans) != len(plans):
                raise ExperimentError(
                    f"campaign {name!r}: duplicate plan names in sequence"
                )
        if not self.plans:
            raise ExperimentError(f"campaign {name!r} has no plans")
        self.params = dict(params or {})

    @classmethod
    def from_product(
        cls,
        name: str,
        base: ExperimentPlan,
        params: Optional[Dict[str, object]] = None,
        **axes: Sequence[object],
    ) -> "Campaign":
        """One plan per combination of the swept plan fields.

        Each keyword names an :class:`ExperimentPlan` field and gives
        the values to sweep; the cartesian product becomes the
        campaign's plans, keyed ``field=value/...``. Example::

            Campaign.from_product(
                "robustness", base,
                n=(25, 50), faults=(("none",), ("none", "split_brain")),
            )
        """
        if not axes:
            raise ExperimentError(f"campaign {name!r}: no product axes given")
        for axis in axes:
            if axis not in type(base).__dataclass_fields__:
                raise ExperimentError(
                    f"campaign {name!r}: {axis!r} is not an ExperimentPlan field"
                )
        def fmt(value: object) -> str:
            if isinstance(value, (tuple, list)):
                return "+".join(str(item) for item in value)
            return str(value)

        names = list(axes)
        plans: Dict[str, ExperimentPlan] = {}
        for combo in itertools.product(*axes.values()):
            overrides = dict(zip(names, combo))
            key = "/".join(f"{axis}={fmt(value)}" for axis, value in overrides.items())
            plans[key] = replace(base, name=f"{base.name}/{key}", **overrides)
        return cls(name, plans, params=params)

    # -- introspection ----------------------------------------------------

    def validate(self) -> "Campaign":
        for plan in self.plans.values():
            plan.validate()
        return self

    def total_trials(self) -> int:
        return sum(plan.total_trials() for plan in self.plans.values())

    def plan_totals(self) -> Dict[str, int]:
        """Plan key -> expanded trial count (checkpoint header payload)."""
        return {key: plan.total_trials() for key, plan in self.plans.items()}

    def header(self) -> Dict[str, object]:
        """The identity record stamped into checkpoint files.

        Includes every plan's full definition (seeds, horizons, fault
        regimes...), not just trial counts: a checkpoint written under
        one seed must be rejected — not silently spliced — when the
        campaign is resumed with a different one. Round-tripped through
        JSON so the fingerprint compares equal to what a reloaded sink
        parsed from disk (tuples become lists either way).
        """
        fingerprint = {
            "campaign": self.name,
            "total": self.total_trials(),
            "plans": {
                key: {"trials": plan.total_trials(), "plan": asdict(plan)}
                for key, plan in self.plans.items()
            },
        }
        return json.loads(json.dumps(fingerprint, sort_keys=True, default=str))

    # -- execution --------------------------------------------------------

    def run(
        self,
        backend: Union[None, int, str, ExecutionBackend] = None,
        sink: Optional[ResultSink] = None,
        limit: Optional[int] = None,
    ) -> CampaignResult:
        """Run every plan over one shared backend.

        Args:
            backend: Anything :func:`resolve_backend` accepts. A backend
                *instance* is reused as-is and left open for the caller;
                a spec (``None``/int/str) is resolved here and closed
                when the campaign finishes.
            sink: Optional checkpoint. Scenarios whose keys are already
                recorded are not re-executed — their stored rows are
                spliced back in — and every newly completed trial is
                recorded immediately, so interrupting the run loses
                nothing that finished.
            limit: Execute at most this many *new* trials, then raise
                :class:`CampaignPaused` (after checkpointing them).
                Lets tests and operators chunk very long campaigns;
                requires a ``sink`` (a limited run without one would
                discard the work), and the limit only counts executed
                scenarios, never skipped ones.

        Returns:
            A :class:`CampaignResult` with one
            :class:`ExperimentResult` per plan. Bit-identical across
            backends, and across interrupted-then-resumed runs.
        """
        self.validate()
        if limit is not None and limit < 1:
            raise ExperimentError(f"limit must be >= 1, got {limit}")
        if limit is not None and sink is None:
            raise ExperimentError(
                "limit without a sink would execute trials and then "
                "discard them; pass a checkpoint sink to make the "
                "partial run resumable"
            )
        owns_backend = not is_backend(backend)
        resolved = resolve_backend(backend)
        if sink is not None and hasattr(sink, "write_header"):
            sink.write_header(self.header())
        executed = 0
        skipped = 0
        truncated = False
        outcome = CampaignResult(name=self.name, params=dict(self.params))
        try:
            for plan_key, plan in self.plans.items():
                specs = plan.scenarios()
                keys = [scenario_key(plan_key, spec) for spec in specs]
                trials: List[Optional[TrialResult]] = [None] * len(specs)
                pending: List[int] = []
                for index, key in enumerate(keys):
                    cached = sink.get(key) if sink is not None else None
                    if cached is not None:
                        trials[index] = cached
                        skipped += 1
                    else:
                        pending.append(index)
                if limit is not None and executed + len(pending) > limit:
                    pending = pending[: limit - executed]
                    truncated = True
                if pending:
                    batch = [specs[index] for index in pending]
                    runner = getattr(resolved, "run_trials_iter", None)
                    if runner is None:  # pre-lifecycle third-party backend
                        stream = enumerate(resolved.run_trials(batch))
                    else:
                        stream = runner(batch)
                    for position, trial in stream:
                        index = pending[position]
                        trials[index] = trial
                        if sink is not None:
                            sink.record(keys[index], trial)
                    executed += len(pending)
                if truncated or any(trial is None for trial in trials):
                    raise CampaignPaused(executed + skipped, self.total_trials())
                result = plan.assemble(trials, resolved.name)
                outcome.results[plan_key] = result
        finally:
            if owns_backend:
                getattr(resolved, "close", lambda: None)()
        # Deliberately record nothing run-specific beyond the backend
        # name: a resumed campaign must serialise bit-identically to an
        # uninterrupted one, so executed/skipped counts stay out of the
        # payload (the CLI reports them from the sink instead).
        outcome.notes["backend"] = resolved.name
        return outcome
