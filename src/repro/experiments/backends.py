"""Pluggable execution backends for experiment plans.

An :class:`ExecutionBackend` turns a list of picklable
:class:`~repro.experiments.plan.ScenarioSpec` objects into the matching
list of :class:`~repro.experiments.results.TrialResult` rows, in input
order. Because every scenario is self-contained (registry keys plus
derived seeds) and every trial is deterministic given its seeds, all
backends produce bit-identical results — the only difference is
wall-clock time.

Backends:

* :class:`SerialBackend` — in-process loop; zero overhead, the baseline.
* :class:`ProcessPoolBackend` — ``concurrent.futures`` process pool for
  the embarrassingly parallel repetition grid; scales with cores.

Use :func:`resolve_backend` to map a CLI-ish ``--workers`` value to a
backend instance.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Optional, Protocol, Union, runtime_checkable

from ..errors import ExperimentError
from .plan import ScenarioSpec, run_scenario
from .results import TrialResult


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy interface: execute scenarios, preserve input order."""

    name: str

    def run_trials(self, scenarios: Iterable[ScenarioSpec]) -> List[TrialResult]:
        """Run every scenario and return results in input order."""
        ...


class SerialBackend:
    """Run every scenario in the calling process, one after another.

    Consumes the scenario iterable lazily, so generator-producing
    callers (the legacy factory harness) keep only one repetition's
    live objects in memory at a time.
    """

    name = "serial"

    def run_trials(self, scenarios: Iterable[ScenarioSpec]) -> List[TrialResult]:
        return [run_scenario(spec) for spec in scenarios]


class ProcessPoolBackend:
    """Fan scenarios out over a process pool.

    Scenario specs carry registry keys and seeds only, so each worker
    rebuilds its topology/demand/config locally; nothing unpicklable
    crosses the process boundary. ``executor.map`` preserves input
    order, which keeps the assembled result identical to the serial
    backend's.

    Args:
        max_workers: Pool size (default: ``os.cpu_count()``).
        chunksize: Scenarios per task sent to a worker; the default
            batches the grid into roughly four chunks per worker to
            amortise IPC without starving the pool.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ExperimentError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize

    @property
    def name(self) -> str:
        return f"process[{self.max_workers}]"

    def _chunksize(self, total: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, total // (self.max_workers * 4) or 1)

    def run_trials(self, scenarios: Iterable[ScenarioSpec]) -> List[TrialResult]:
        scenarios = list(scenarios)
        if len(scenarios) <= 1 or self.max_workers == 1:
            return SerialBackend().run_trials(scenarios)
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(
                pool.map(run_scenario, scenarios, chunksize=self._chunksize(len(scenarios)))
            )


def resolve_backend(
    spec: Union[None, int, str, ExecutionBackend],
) -> ExecutionBackend:
    """Map a ``--workers``-style value to a backend.

    ``None``, ``0``, ``1`` or ``"serial"`` mean in-process execution;
    an integer > 1 (or ``"process"``/``"process:N"``) selects a process
    pool; negative counts are rejected rather than silently degraded;
    an existing backend passes through unchanged.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend) and not isinstance(spec, (int, str)):
        return spec
    if isinstance(spec, int):
        if spec < 0:
            raise ExperimentError(f"worker count must be >= 0, got {spec}")
        return SerialBackend() if spec <= 1 else ProcessPoolBackend(max_workers=spec)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialBackend()
        if spec == "process":
            return ProcessPoolBackend()
        if spec.startswith("process:"):
            try:
                workers = int(spec.split(":", 1)[1])
            except ValueError:
                raise ExperimentError(f"malformed backend spec {spec!r}") from None
            return resolve_backend(workers)
        raise ExperimentError(
            f"unknown backend {spec!r}; expected 'serial', 'process' or 'process:N'"
        )
    raise ExperimentError(f"cannot resolve backend from {spec!r}")
