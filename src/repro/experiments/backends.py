"""Pluggable execution backends for experiment plans.

An :class:`ExecutionBackend` turns a list of picklable
:class:`~repro.experiments.plan.ScenarioSpec` objects into the matching
list of :class:`~repro.experiments.results.TrialResult` rows, in input
order. Because every scenario is self-contained (registry keys plus
derived seeds) and every trial is deterministic given its seeds, all
backends produce bit-identical results — the only difference is
wall-clock time.

Backends:

* :class:`SerialBackend` — in-process loop; zero overhead, the baseline.
* :class:`ProcessPoolBackend` — ``concurrent.futures`` process pool for
  the embarrassingly parallel repetition grid; scales with cores.

Backends have an explicit lifecycle so multi-plan drivers (campaigns)
can amortise worker-spawn cost: the process pool starts lazily on the
first ``run_trials``/``run_trials_iter`` call and is **reused** across
calls until :meth:`~ProcessPoolBackend.close` (or the context manager)
shuts it down. :class:`SerialBackend` implements the same lifecycle as
no-ops, so callers can treat every backend uniformly::

    with ProcessPoolBackend(max_workers=8) as backend:
        for plan in plans:
            plan.run(backend)   # one pool for the whole loop

Both backends also support *streaming* execution:
:meth:`run_trials_iter` yields ``(index, TrialResult)`` pairs as trials
complete (possibly out of input order on a pool), which is what lets a
:class:`~repro.experiments.sink.JsonLinesSink` checkpoint every
completed scenario the moment it finishes. The list-returning
``run_trials`` reassembles the stream in input order, so it stays
bit-identical across backends.

Use :func:`resolve_backend` to map a CLI-ish ``--workers`` value to a
backend instance.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from ..errors import ExperimentError
from .plan import ScenarioSpec, run_scenario
from .results import TrialResult


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy interface: execute scenarios, preserve input order.

    Backends additionally expose a uniform lifecycle (``close`` plus
    context-manager support) and a streaming entry point; for in-process
    backends the lifecycle methods are no-ops.
    """

    name: str

    def run_trials(self, scenarios: Iterable[ScenarioSpec]) -> List[TrialResult]:
        """Run every scenario and return results in input order."""
        ...

    def run_trials_iter(
        self, scenarios: Iterable[ScenarioSpec]
    ) -> Iterator[Tuple[int, TrialResult]]:
        """Yield ``(input_index, result)`` pairs as trials complete."""
        ...

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""
        ...


class SerialBackend:
    """Run every scenario in the calling process, one after another.

    Consumes the scenario iterable lazily, so generator-producing
    callers (the legacy factory harness) keep only one repetition's
    live objects in memory at a time. ``close`` and the context manager
    are no-ops, present only for protocol symmetry with
    :class:`ProcessPoolBackend`.
    """

    name = "serial"

    def run_trials(self, scenarios: Iterable[ScenarioSpec]) -> List[TrialResult]:
        return [run_scenario(spec) for spec in scenarios]

    def run_trials_iter(
        self, scenarios: Iterable[ScenarioSpec]
    ) -> Iterator[Tuple[int, TrialResult]]:
        for index, spec in enumerate(scenarios):
            yield index, run_scenario(spec)

    def close(self) -> None:
        """No pooled resources to release."""

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _run_chunk(specs: Sequence[ScenarioSpec]) -> List[TrialResult]:
    """Worker-side entry point: run one contiguous chunk of scenarios."""
    return [run_scenario(spec) for spec in specs]


class ProcessPoolBackend:
    """Fan scenarios out over a persistent process pool.

    Scenario specs carry registry keys and seeds only, so each worker
    rebuilds its topology/demand/config locally; nothing unpicklable
    crosses the process boundary. Scenarios are submitted in contiguous
    chunks and the streaming iterator yields results as chunks complete;
    the list API reassembles them in input order, which keeps the
    result identical to the serial backend's.

    The executor is created lazily on first use and **kept alive across
    calls** until :meth:`close` — a multi-plan campaign pays the
    worker-spawn cost once, not once per plan. The backend is also a
    context manager; ``with`` guarantees the pool is shut down.

    Args:
        max_workers: Pool size (default: ``os.cpu_count()``).
        chunksize: Scenarios per task sent to a worker; the default
            batches the grid into roughly four chunks per worker to
            amortise IPC without starving the pool. Either way the
            effective chunk size is capped so the grid always splits
            into at least ``min(len(scenarios), max_workers)`` tasks —
            a small grid must never collapse into one oversized chunk
            that serialises the run on a single worker.
    """

    def __init__(self, max_workers: Optional[int] = None, chunksize: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ExperimentError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ExperimentError(f"chunksize must be >= 1, got {chunksize}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def name(self) -> str:
        return f"process[{self.max_workers}]"

    # -- lifecycle --------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut the pool down and release its workers (idempotent).

        A later ``run_trials`` call lazily starts a fresh pool, so a
        closed backend remains usable — closing just gives the spawn
        cost back.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- chunk layout -----------------------------------------------------

    def _chunksize(self, total: int) -> int:
        # Invariant: the grid must split into at least
        # k = min(total, max_workers) chunks so no worker idles while
        # another crunches an oversized chunk. ceil(total/c) >= k holds
        # exactly when c <= ceil(total/(k-1)) - 1, so that is the cap
        # applied to both the default and an explicit chunksize (an
        # over-eager chunksize is a request the pool cannot honour
        # without serialising the run).
        if total <= 0:
            return 1
        k = min(self.max_workers, total)
        cap = total if k <= 1 else max(1, -(-total // (k - 1)) - 1)
        if self.chunksize is not None:
            return min(self.chunksize, cap)
        return min(cap, max(1, total // (self.max_workers * 4)))

    def chunk_layout(self, total: int) -> List[int]:
        """Chunk sizes ``run_trials_iter`` would submit for ``total``.

        Exposed so the splitting policy is testable: the layout always
        covers ``total`` exactly and contains at least
        ``min(total, max_workers)`` chunks.
        """
        if total <= 0:
            return []
        size = self._chunksize(total)
        layout = [size] * (total // size)
        if total % size:
            layout.append(total % size)
        return layout

    # -- execution --------------------------------------------------------

    def run_trials_iter(
        self, scenarios: Iterable[ScenarioSpec]
    ) -> Iterator[Tuple[int, TrialResult]]:
        scenarios = list(scenarios)
        if len(scenarios) <= 1 or self.max_workers == 1:
            yield from SerialBackend().run_trials_iter(scenarios)
            return
        pool = self._ensure_pool()
        futures = {}
        start = 0
        for size in self.chunk_layout(len(scenarios)):
            futures[pool.submit(_run_chunk, scenarios[start : start + size])] = start
            start += size
        for future in as_completed(futures):
            first = futures[future]
            for offset, trial in enumerate(future.result()):
                yield first + offset, trial

    def run_trials(self, scenarios: Iterable[ScenarioSpec]) -> List[TrialResult]:
        scenarios = list(scenarios)
        results: List[Optional[TrialResult]] = [None] * len(scenarios)
        for index, trial in self.run_trials_iter(scenarios):
            results[index] = trial
        return results  # type: ignore[return-value]


def _shard_host_main(conn, spec: Dict[str, object], mesh=None) -> None:
    """Worker-side loop: host one ShardEngine, serve method calls.

    The protocol is a simple request/response over the pipe:
    ``(method, args, kwargs)`` in, ``("ok", result)`` or
    ``("err", traceback_string)`` out. ``("__stop__", ...)`` exits.

    With ``mesh`` — ``(owner_map, inbound_queue, peer_queues)`` — the
    engine is wrapped in a :class:`~repro.sim.sharded.ShardHost` so
    window barriers exchange cross-shard messages directly between
    workers instead of round-tripping through the coordinator.
    """
    from ..sim.sharded import ShardEngine, ShardHost

    try:
        engine = ShardEngine(**spec)
        if mesh is not None:
            owner, inbound, peers = mesh
            engine = ShardHost(engine, owner, inbound, peers)
        conn.send(("ok", None))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        return
    while True:
        try:
            method, args, kwargs = conn.recv()
        except EOFError:
            return
        if method == "__stop__":
            return
        try:
            conn.send(("ok", getattr(engine, method)(*args, **kwargs)))
        except BaseException:
            conn.send(("err", traceback.format_exc()))


class ShardHostPool:
    """Persistent worker processes, each hosting one shard engine.

    The sharded kernel's barrier loop issues one synchronous round of
    method calls per window, so the pool keeps a dedicated long-lived
    process and pipe per shard instead of going through a task queue:
    :meth:`call_all` writes every shard's request before reading any
    reply, so the shards genuinely run their windows in parallel.

    Lifecycle mirrors :class:`ProcessPoolBackend`: workers spawn lazily
    on the first call, are reused across calls, and :meth:`close` (or
    the context manager) shuts them down.

    Args:
        specs: One ShardEngine constructor kwargs dict per shard; each
            must be picklable (they cross the process boundary).
        owner: Optional node→shard-index map. When given, the pool
            wires a full mesh of inter-worker queues and wraps each
            engine in a :class:`~repro.sim.sharded.ShardHost`, so the
            ``window`` barrier exchanges cross-shard messages directly
            between workers (one pickle per crossing, off the
            coordinator's critical path) instead of relaying them
            through the coordinator pipe (two).
    """

    def __init__(
        self,
        specs: Sequence[Dict[str, object]],
        owner: Optional[Dict[int, int]] = None,
    ):
        if not specs:
            raise ExperimentError("ShardHostPool needs at least one shard spec")
        self._specs = list(specs)
        self._owner = dict(owner) if owner is not None else None
        self._procs: Optional[list] = None
        self._conns: Optional[list] = None
        self._queues: Optional[list] = None

    @property
    def name(self) -> str:
        return f"shard-hosts[{len(self._specs)}]"

    def __len__(self) -> int:
        return len(self._specs)

    # -- lifecycle --------------------------------------------------------

    def _ensure(self) -> None:
        if self._procs is not None:
            return
        context = multiprocessing.get_context()
        queues = None
        if self._owner is not None:
            # multiprocessing.Queue puts go through a feeder thread, so
            # mesh sends never block on a full pipe (no exchange
            # deadlock) and sender-side pickling overlaps peer compute.
            queues = [context.Queue() for _ in self._specs]
        procs, conns = [], []
        for index, spec in enumerate(self._specs):
            parent, child = context.Pipe()
            mesh = None
            if queues is not None:
                peers = {
                    peer: queues[peer]
                    for peer in range(len(self._specs))
                    if peer != index
                }
                mesh = (self._owner, queues[index], peers)
            proc = context.Process(
                target=_shard_host_main, args=(child, spec, mesh), daemon=True
            )
            proc.start()
            child.close()
            procs.append(proc)
            conns.append(parent)
        self._procs, self._conns, self._queues = procs, conns, queues
        for conn in conns:
            self._check(conn.recv())  # build handshake

    def close(self) -> None:
        """Stop every worker and release the pipes (idempotent)."""
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                conn.send(("__stop__", (), {}))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
        if self._queues is not None:
            for queue in self._queues:
                queue.close()
        self._procs = None
        self._conns = None
        self._queues = None

    def __enter__(self) -> "ShardHostPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- calls ------------------------------------------------------------

    @staticmethod
    def _check(reply: Tuple[str, object]) -> object:
        status, payload = reply
        if status != "ok":
            raise ExperimentError(f"shard worker failed:\n{payload}")
        return payload

    def call_all(
        self, method: str, args_per_shard: Optional[Sequence[tuple]] = None, **kwargs
    ) -> List[object]:
        """Invoke ``method`` on every shard concurrently, in shard order."""
        self._ensure()
        for index, conn in enumerate(self._conns):
            args = args_per_shard[index] if args_per_shard is not None else ()
            conn.send((method, tuple(args), kwargs))
        return [self._check(conn.recv()) for conn in self._conns]

    def call_one(self, index: int, method: str, *args, **kwargs) -> object:
        """Invoke ``method`` on one shard and wait for its result."""
        self._ensure()
        conn = self._conns[index]
        conn.send((method, args, kwargs))
        return self._check(conn.recv())


def is_backend(obj: object) -> bool:
    """Duck-typed backend check, laxer than the full protocol.

    A pre-lifecycle third-party backend (``name`` + ``run_trials``
    only, no streaming or close) must still pass through
    :func:`resolve_backend` and drive :func:`run_experiment` /
    campaigns — callers fall back from the missing methods instead of
    rejecting the object outright.
    """
    return (
        not isinstance(obj, (int, str))
        and hasattr(obj, "run_trials")
        and hasattr(obj, "name")
    )


def resolve_backend(
    spec: Union[None, int, str, ExecutionBackend],
) -> ExecutionBackend:
    """Map a ``--workers``-style value to a backend.

    ``None``, ``0``, ``1`` or ``"serial"`` mean in-process execution;
    an integer > 1 (or ``"process"``/``"process:N"``) selects a process
    pool; negative counts are rejected rather than silently degraded;
    an existing backend passes through unchanged.

    The string form is stricter than the integer form: ``"process:0"``
    (and ``"process:-N"``) raise :class:`ExperimentError` instead of
    silently degrading to a serial backend — whoever wrote ``process:``
    asked for a pool, exactly like ``--workers 0`` on the command line
    is rejected rather than reinterpreted.
    """
    if spec is None:
        return SerialBackend()
    if is_backend(spec):
        return spec
    if isinstance(spec, int):
        if spec < 0:
            raise ExperimentError(f"worker count must be >= 0, got {spec}")
        return SerialBackend() if spec <= 1 else ProcessPoolBackend(max_workers=spec)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialBackend()
        if spec == "process":
            return ProcessPoolBackend()
        if spec.startswith("process:"):
            try:
                workers = int(spec.split(":", 1)[1])
            except ValueError:
                raise ExperimentError(f"malformed backend spec {spec!r}") from None
            if workers < 1:
                raise ExperimentError(
                    f"backend spec {spec!r} asks for a process pool with "
                    f"{workers} workers; a pool needs >= 1 (use 'serial' "
                    "for in-process execution)"
                )
            return resolve_backend(workers)
        raise ExperimentError(
            f"unknown backend {spec!r}; expected 'serial', 'process' or 'process:N'"
        )
    raise ExperimentError(f"cannot resolve backend from {spec!r}")
