"""Command-line interface: regenerate any paper artefact.

Examples::

    repro fig5 --reps 500            # Fig. 5 CDFs (paper used 10,000)
    repro fig5 --workers 4           # same, fanned out over 4 processes
    repro fig3                       # Fig. 3 request-satisfaction series
    repro table2                     # §3-4 dynamic-demand comparison
    repro scaling --reps 20          # §5 sessions-vs-diameter sweep
    repro campaign run scaling --workers 8 --checkpoint sc.jsonl
    repro campaign resume scaling --workers 8 --checkpoint sc.jsonl
    repro campaign status --checkpoint sc.jsonl
    repro sweep --topology ba --variants weak fast --reps 50 --json out.json
    repro sweep --topology line --faults none split_brain   # fault sweep
    repro islands                    # §6 leader-bridge extension
    repro surface                    # Fig. 1 demand landscape
    repro run --variant fast -n 80   # one ad-hoc simulation
    repro serve --nodes 16 --variant fast --duration 5   # live cluster
    repro serve --transport tcp --nodes 4 --duration 5   # one process per node
    repro serve --faults rolling_restart --duration 8    # chaos at boot
    repro serve --control-port 7700 --duration 60 &      # accept chaos clients
    repro chaos --connect 127.0.0.1:7700 --faults flapping_links --wait
    repro all --reps 30              # everything, reduced fidelity

Commands that run through the declarative experiment pipeline (fig5,
fig6, scaling, sweep) accept ``--workers N`` to execute repetitions on
a process pool — results are bit-identical to serial — and ``--json
PATH`` to export the full :class:`ExperimentResult` for archiving.

Also available as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.metrics import reach_time
from .demand.field import SurfaceDemand, Valley
from .errors import ExperimentError, ReproError
from .experiments import figures
from .experiments.backends import resolve_backend
from .experiments.campaign import CampaignPaused
from .experiments.figures import CAMPAIGNS
from .experiments.plan import ExperimentPlan
from .experiments.scenarios import (
    DEMANDS,
    FAULTS,
    PLACEMENTS,
    TOPOLOGIES,
    VARIANTS,
    build_faults,
    build_system,
)
from .experiments.sink import StreamingSink, stream_status
from .experiments.tables import format_kv, format_table
from .viz.ascii import bar_chart, cdf_plot
from .viz.surface import render_surface


def _add_common(parser: argparse.ArgumentParser, reps: int) -> None:
    parser.add_argument("--reps", type=int, default=reps, help="repetitions")
    parser.add_argument("--seed", type=int, default=1, help="master seed")


def _add_pipeline(parser: argparse.ArgumentParser) -> None:
    """Options shared by commands backed by the declarative pipeline."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; 1 = serial (results are identical)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the raw ExperimentResult as JSON",
    )


def _backend(args) -> object:
    workers = getattr(args, "workers", None)
    if workers is not None and workers < 1:
        # resolve_backend(0) means "serial" for API callers, but on the
        # command line a zero-or-negative pool is always a typo.
        raise ExperimentError(f"--workers must be >= 1, got {workers}")
    return resolve_backend(workers)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Demand based Algorithm for Rapid Updating "
            "of Replicas' (ICDCSW 2002)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("surface", help="Fig. 1: the hills-and-valleys demand field")
    p.add_argument("--valleys", type=int, default=2)

    p = sub.add_parser("table1", help="§2: all session orders ranked")

    p = sub.add_parser("fig3", help="Fig. 3: requests satisfied per session")
    _add_common(p, reps=60)

    for name, n in (("fig5", 50), ("fig6", 100)):
        p = sub.add_parser(name, help=f"Fig. {name[-1]}: CDF of sessions, {n} nodes")
        _add_common(p, reps=120)
        _add_pipeline(p)
        p.add_argument("--nodes", type=int, default=n)
        p.add_argument("--plot", action="store_true", help="render the ASCII CDF plot")

    p = sub.add_parser("table2", help="§3-4: dynamic demand (Fig. 4 scenario)")
    _add_common(p, reps=80)

    p = sub.add_parser("scaling", help="§5: sessions vs diameter across sizes")
    _add_common(p, reps=40)
    _add_pipeline(p)
    p.add_argument(
        "--sizes", type=int, nargs="+", default=[25, 50, 100, 200], help="node counts"
    )

    p = sub.add_parser(
        "campaign",
        help="run many plans over one worker pool, with checkpoint/resume",
    )
    csub = p.add_subparsers(dest="action", required=True)
    for action, blurb in (
        ("run", "run a named campaign (optionally checkpointing)"),
        ("resume", "continue a checkpointed campaign from where it stopped"),
    ):
        cp = csub.add_parser(action, help=blurb)
        cp.add_argument(
            "name",
            metavar="NAME",
            help=f"campaign name ({', '.join(sorted(CAMPAIGNS))})",
        )
        cp.add_argument(
            "--reps",
            type=int,
            default=None,
            help="repetitions per plan (default: the campaign's own fidelity)",
        )
        cp.add_argument("--seed", type=int, default=1, help="master seed")
        _add_pipeline(cp)
        cp.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help="JSON-lines file recording every completed trial; an "
            "interrupted run resumes from it with bit-identical results",
        )
        if action == "run":
            cp.add_argument(
                "--limit",
                type=int,
                default=None,
                help="checkpoint and stop after N new trials "
                "(requires --checkpoint; for chunked/CI runs)",
            )
    cp = csub.add_parser("status", help="progress of a checkpointed campaign")
    cp.add_argument("--checkpoint", metavar="PATH", required=True)
    cp.add_argument(
        "--telemetry",
        action="store_true",
        help="also print streaming per-series aggregates from the "
        "telemetry sidecar (means and sketch quantiles)",
    )
    cp = csub.add_parser(
        "export", help="export a checkpoint for offline analysis"
    )
    cp.add_argument("--checkpoint", metavar="PATH", required=True)
    cp.add_argument(
        "--columnar",
        metavar="DIR",
        required=True,
        help="write packed per-column binaries + manifest.json "
        "(numpy/pandas/duckdb-friendly, stdlib-only writer)",
    )

    p = sub.add_parser(
        "sweep", help="run any registry-named experiment grid (plan + backend)"
    )
    _add_common(p, reps=50)
    _add_pipeline(p)
    # Registry keys are validated by the plan itself, so an unknown name
    # exits with a one-line ReproError naming the known keys instead of
    # an argparse usage dump.
    p.add_argument("--topology", metavar="NAME", default="ba",
                   help=f"topology registry key ({', '.join(sorted(TOPOLOGIES))})")
    p.add_argument("--demand", metavar="NAME", default="uniform",
                   help=f"demand registry key ({', '.join(sorted(DEMANDS))})")
    p.add_argument(
        "--variants",
        nargs="+",
        metavar="NAME",
        default=["weak", "fast"],
        help="protocol variants to compare, paired repetitions "
        f"({', '.join(sorted(VARIANTS))})",
    )
    p.add_argument(
        "--faults",
        nargs="+",
        metavar="NAME",
        default=["none"],
        help="fault regimes to sweep, paired with the same seeds "
        f"({', '.join(sorted(FAULTS))})",
    )
    p.add_argument(
        "--placements",
        nargs="+",
        metavar="NAME",
        default=["none"],
        help="placement regimes to sweep, paired with the same seeds "
        f"({', '.join(sorted(PLACEMENTS))})",
    )
    p.add_argument("-n", "--nodes", type=int, default=50)
    p.add_argument("--max-time", type=float, default=80.0)
    p.add_argument("--loss", type=float, default=0.0)

    p = sub.add_parser("uniform", help="§5: linear / ring / grid topologies")
    _add_common(p, reps=30)

    p = sub.add_parser("islands", help="§6: island leader bridges")
    _add_common(p, reps=30)

    p = sub.add_parser("overhead", help="§8: traffic of weak vs fast")
    _add_common(p, reps=20)

    p = sub.add_parser("ablation", help="§2: decompose the two optimisations")
    _add_common(p, reps=40)

    p = sub.add_parser("staleness", help="§4: advertisement-period sweep")
    _add_common(p, reps=30)

    p = sub.add_parser("strongcost", help="§1: strong-consistency cost")
    _add_common(p, reps=10)

    p = sub.add_parser("partition", help="§1: convergence across a partition")
    _add_common(p, reps=12)

    p = sub.add_parser("skew", help="§8: demand-skew sensitivity sweep")
    _add_common(p, reps=15)

    p = sub.add_parser("run", help="one ad-hoc simulation")
    p.add_argument("--topology", choices=sorted(TOPOLOGIES), default="ba")
    p.add_argument("--demand", choices=sorted(DEMANDS), default="uniform")
    p.add_argument("--variant", choices=sorted(VARIANTS), default="fast")
    p.add_argument("-n", "--nodes", type=int, default=50)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--loss", type=float, default=0.0)

    p = sub.add_parser(
        "serve",
        help="live cluster on the asyncio runtime, serving synthetic traffic",
    )
    p.add_argument("--nodes", type=int, default=12, help="replica count")
    p.add_argument("--variant", choices=sorted(VARIANTS), default="fast")
    p.add_argument(
        "--duration", type=float, default=5.0, help="wall-clock seconds to serve"
    )
    p.add_argument("--rate", type=float, default=20.0, help="client puts per second")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--time-scale",
        type=float,
        default=0.05,
        help="wall seconds per protocol time unit (0.05 = 20 units/s)",
    )
    p.add_argument("--loss", type=float, default=0.0)
    p.add_argument(
        "--transport",
        choices=["queue", "tcp"],
        default="queue",
        help="queue = one process, asyncio queues; tcp = one OS process "
        "per node over real sockets",
    )
    p.add_argument(
        "--faults",
        choices=sorted(FAULTS),
        default="none",
        help="fault schedule replayed against the live cluster from boot",
    )
    p.add_argument(
        "--control-port",
        type=int,
        default=None,
        metavar="PORT",
        help="open a control socket for `repro chaos` clients (0 = ephemeral)",
    )
    p.add_argument(
        "--standby-hubs",
        type=int,
        default=1,
        metavar="N",
        help="tcp mode: extra standby hub listeners beyond the primary "
        "(nodes fail over to them when the hub dies)",
    )
    p.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="require this shared token on every control connection "
        "(unauthenticated chaos/metrics frames are refused)",
    )
    p.add_argument(
        "--metrics-interval",
        type=float,
        default=None,
        metavar="SECS",
        help="emit a newline-JSON telemetry snapshot every SECS seconds "
        "(schema repro-telemetry/1, same as the campaign sidecar)",
    )
    p.add_argument(
        "--metrics-path",
        metavar="PATH",
        default=None,
        help="append telemetry snapshots to PATH (default: stderr); "
        "implies --metrics-interval 1.0 when given alone",
    )

    p = sub.add_parser(
        "chaos",
        help="inject a fault schedule into a serving cluster over its "
        "control socket",
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="control address printed by `repro serve --control-port`",
    )
    p.add_argument(
        "--faults",
        choices=sorted(name for name in FAULTS if name != "none"),
        default=None,
        help="fault schedule to generate against the cluster's topology",
    )
    p.add_argument("--seed", type=int, default=1, help="schedule generator seed")
    p.add_argument(
        "--kill-hub",
        action="store_true",
        help="kill the cluster's primary hub mid-traffic (tcp clusters "
        "with standby hubs survive by failing over)",
    )
    p.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="shared control-plane token (must match `repro serve --token`)",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="poll until every event of the schedule has fired",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-round-trip socket timeout in seconds",
    )
    p.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a JSON convergence report (faults applied/skipped, "
        "post-heal convergence seconds, p99 put-to-replicated); "
        "implies --wait",
    )

    p = sub.add_parser("all", help="run every experiment (reduced fidelity)")
    _add_common(p, reps=30)

    return parser


# ---------------------------------------------------------------------------
# Command implementations (each prints and returns its text)
# ---------------------------------------------------------------------------


def cmd_surface(args) -> str:
    valleys = [
        Valley(center=(25.0, 25.0), peak=100.0, radius=12.0),
        Valley(center=(75.0, 70.0), peak=80.0, radius=10.0),
        Valley(center=(20.0, 80.0), peak=60.0, radius=8.0),
    ][: max(1, args.valleys)]
    field = SurfaceDemand(
        positions={0: (0.0, 0.0), 1: (100.0, 100.0)}, valleys=valleys, base=1.0
    )
    art = render_surface(field, bounds=(0.0, 0.0, 100.0, 100.0))
    return "Fig. 1 — demand landscape (valleys = high demand)\n\n" + art


def cmd_table1(args) -> str:
    result = figures.table1_orderings()
    table = format_table(
        ["order", "t=1", "t=2", "t=3", "t=4", "area"],
        result.rows(),
        title="§2 — cumulative requests satisfied per visit order (B holds the update)",
    )
    notes = format_kv(
        "extremes",
        [
            ("worst (paper: B-C,B-A,B-E,B-D)", "B-" + ",B-".join(result.worst)),
            ("best  (paper: B-D,B-E,B-A,B-C)", "B-" + ",B-".join(result.best)),
        ],
    )
    return table + "\n\n" + notes


def cmd_fig3(args) -> str:
    result = figures.figure3(reps=args.reps, seed=args.seed)
    return format_table(
        ["session", "worst case", "optimal case", "fast consistency (sim)"],
        result.rows(),
        title="Fig. 3 — requests satisfied with consistent content",
    )


def _export_json(args, experiment) -> List[str]:
    """Save ``experiment`` when ``--json`` was given; returns report lines."""
    path = getattr(args, "json", None)
    if not path:
        return []
    try:
        experiment.save(path)
    except OSError as exc:
        raise ExperimentError(f"cannot write results to {path}: {exc}") from exc
    return [f"raw results written to {path}"]


def _fig_cdf(args, default_n: int) -> str:
    with _backend(args) as backend:
        result = figures.figure_cdf(
            n=getattr(args, "nodes", default_n),
            reps=args.reps,
            seed=args.seed,
            backend=backend,
        )
    out = [
        format_table(
            ["curve (mean sessions)", "paper", "measured"],
            result.rows(),
            title=f"{result.name} — n={result.n}, reps={result.reps}, "
            f"mean diameter {result.mean_diameter:.2f}",
        )
    ]
    if getattr(args, "plot", False):
        out.append("")
        out.append(cdf_plot(result.curves, result.grid, title="CDF of sessions"))
    out.extend(_export_json(args, result.experiment))
    return "\n".join(out)


def cmd_fig5(args) -> str:
    return _fig_cdf(args, 50)


def cmd_fig6(args) -> str:
    return _fig_cdf(args, 100)


def cmd_table2(args) -> str:
    result = figures.table2_dynamic(reps=args.reps, seed=args.seed)
    sequence_table = format_table(
        ["beliefs", "t=1", "t=2", "t=3"],
        result.sequence_rows(),
        title="§4 table — B's partner per session (paper: B-D, B-C', B-A')",
    )
    sim_table = format_table(
        ["variant", "t(C')", "t(all)"] + [f"sat@{i}" for i in range(1, 7)],
        result.rows(),
        title="chain scenario — A 2->0 and C 0->9 at t=2 while the update is in flight",
    )
    return sequence_table + "\n\n" + sim_table


def cmd_scaling(args) -> str:
    # One backend for the whole sweep: the campaign underneath reuses
    # its process pool across every size, and `with` shuts it down.
    with _backend(args) as backend:
        result = figures.scaling_experiment(
            sizes=tuple(args.sizes), reps=args.reps, seed=args.seed, backend=backend
        )
    return format_table(
        ["nodes", "diameter", "weak mean", "fast mean", "fast top-10% mean"],
        result.rows(),
        title="§5 — sessions-to-consistency vs network size (diameter effect)",
    )


def cmd_sweep(args) -> str:
    faults = tuple(getattr(args, "faults", None) or ("none",))
    placements = tuple(getattr(args, "placements", None) or ("none",))
    plan = ExperimentPlan(
        name=f"sweep-{args.topology}-{args.demand}",
        topology=args.topology,
        demand=args.demand,
        variants=tuple(args.variants),
        n=args.nodes,
        reps=args.reps,
        seed=args.seed,
        max_time=args.max_time,
        loss=args.loss,
        faults=faults,
        placements=placements,
    )
    with _backend(args) as backend:
        result = plan.run(backend)
    faulted = faults != ("none",)
    placed = placements != ("none",)
    censored = False

    def mean_of(cdf) -> str:
        # A fully censored series (nothing converged within max-time)
        # has no mean; render n/a instead of crashing the report.
        return f"{cdf.mean():.3f}" if cdf.count else "n/a"

    rows = []
    for label in plan.series_labels():
        series = result.series[label]
        row = [
            label,
            mean_of(series.cdf_all()),
            mean_of(series.cdf_top()),
            mean_of(series.cdf_top1()),
            f"{series.mean_messages():.0f}",
        ]
        if faulted:
            post_heal = series.mean_post_heal()
            row.append("n/a" if post_heal is None else f"{post_heal:.3f}")
            fraction = series.converged_fraction()
            conv = f"{100 * fraction:.0f}%"
            if fraction < 1.0:
                conv += " !"
                censored = True
            row.append(conv)
        if placed:
            area = series.mean_satisfied_area()
            row.append("n/a" if area is None else f"{area:.0f}")
        rows.append(tuple(row))
    title = (
        f"sweep — {args.topology} n={args.nodes}, demand={args.demand}, "
        f"reps={args.reps}, backend={result.notes['backend']}"
    )
    if "effective_n" in result.params:
        title += f" (effective n={result.params['effective_n']})"
    headers = ["series", "mean (all)", "mean (top 10%)", "mean (hottest)", "msgs"]
    if faulted:
        headers.extend(["post-heal", "conv"])
    if placed:
        headers.append("satisfied")
    out = [format_table(headers, rows, title=title)]
    if censored:
        out.append(
            "! some trials never converged within max-time; the means "
            "(including post-heal) cover converged trials only"
        )
    out.extend(_export_json(args, result))
    return "\n".join(out)


def _telemetry_table(registry) -> str:
    """Per-series streaming aggregates, one row per recorded series."""
    moments = {}
    sketches = {}
    trials = {}
    converged = {}
    for name, labels, metric in registry.series():
        key = (labels.get("plan", "?"), labels.get("series", "?"))
        if name == "campaign.trials":
            trials[key] = metric.value
        elif name == "campaign.converged":
            converged[key] = metric.value
        elif name == "trial.time_all":
            moments[key] = metric
        elif name == "trial.time_all.sketch":
            sketches[key] = metric
    rows = []
    for key in sorted(trials):
        mom = moments.get(key)
        sketch = sketches.get(key)
        rows.append(
            (
                key[0],
                key[1],
                trials[key],
                f"{100 * converged.get(key, 0) // max(1, trials[key])}%",
                "n/a" if mom is None or not mom.count else f"{mom.mean:.3f}",
                "n/a" if sketch is None or not sketch.count else f"{sketch.quantile(0.5):.2f}",
                "n/a" if sketch is None or not sketch.count else f"{sketch.quantile(0.95):.2f}",
                "n/a" if sketch is None or not sketch.count else f"{sketch.quantile(0.99):.2f}",
            )
        )
    return format_table(
        ["plan", "series", "trials", "conv", "mean t(all)", "p50", "p95", "p99"],
        rows,
        title="streaming aggregates (sidecar; O(1) memory in trial count)",
    )


def _campaign_status(path: str, telemetry: bool = False) -> str:
    status = stream_status(path)
    header, counts = status.header, status.counts
    rows = []
    if header is not None:
        totals = {
            # Current headers fingerprint each plan ({"trials": N,
            # "plan": {...}}); bare ints are accepted for hand-rolled
            # checkpoint files.
            plan: info.get("trials", 0) if isinstance(info, dict) else int(info)
            for plan, info in dict(header.get("plans", {})).items()
        }
        for plan, total in totals.items():
            done = counts.get(plan, 0)
            state = "done" if done >= total else f"{100 * done // max(1, total)}%"
            rows.append((plan, done, total, state))
        done_all = sum(counts.values())
        total_all = int(header.get("total", done_all))
        title = (
            f"campaign {header.get('campaign', '?')!r} — "
            f"{done_all}/{total_all} trials checkpointed"
        )
    else:
        # Headerless file (hand-rolled sink): report raw counts.
        for plan, done in sorted(counts.items()):
            rows.append((plan, done, "?", "?"))
        title = f"checkpoint {path} — {sum(counts.values())} trials recorded"
    if status.partial:
        title += f" (partial: {status.torn_lines} in-flight/torn line(s))"
    out = [format_table(["plan", "done", "total", "state"], rows, title=title)]
    if telemetry:
        if status.telemetry is None:
            out.append(
                "no telemetry sidecar next to the checkpoint (runs "
                "record one automatically; older checkpoints have none)"
            )
        else:
            out.append(_telemetry_table(status.telemetry))
            if status.folded < status.trials:
                out.append(
                    f"sidecar watermark at {status.folded}/{status.trials} "
                    "trials; aggregates lag the log until the next "
                    "checkpoint write"
                )
    return "\n".join(out)


def _campaign_export(args) -> str:
    from .telemetry.columnar import export_columnar

    manifest = export_columnar(args.checkpoint, args.columnar)
    pairs = [
        ("rows", manifest["rows"]),
        ("columns", len(manifest["columns"])),
        (
            "nulls",
            sum(info["nulls"] for info in manifest["columns"].values()),
        ),
        ("directory", args.columnar),
    ]
    return format_kv(f"columnar export of {args.checkpoint}", pairs)


def cmd_campaign(args) -> str:
    if args.action == "status":
        return _campaign_status(args.checkpoint, telemetry=args.telemetry)
    if args.action == "export":
        return _campaign_export(args)
    campaign = figures.build_campaign(args.name, reps=args.reps, seed=args.seed)
    limit = getattr(args, "limit", None)
    if limit is not None and not args.checkpoint:
        raise ExperimentError(
            "--limit without --checkpoint would discard the completed "
            "trials; add --checkpoint PATH"
        )
    if args.action == "resume":
        if not args.checkpoint:
            raise ExperimentError("campaign resume requires --checkpoint PATH")
        if not Path(args.checkpoint).exists():
            raise ExperimentError(
                f"no checkpoint at {args.checkpoint}; start one with "
                f"`repro campaign run {args.name} --checkpoint {args.checkpoint}`"
            )
    out: List[str] = []
    with _backend(args) as backend:
        if args.checkpoint:
            with StreamingSink(args.checkpoint) as sink:
                already = len(sink)
                try:
                    outcome = campaign.run(backend, sink=sink, limit=limit)
                except CampaignPaused as paused:
                    return (
                        f"campaign {campaign.name!r} paused: {paused.done}/"
                        f"{paused.total} trials checkpointed to {args.checkpoint}\n"
                        f"resume with: repro campaign resume {args.name} "
                        f"--checkpoint {args.checkpoint}"
                    )
                executed = campaign.total_trials() - already
            if already:
                out.append(
                    f"resumed from {args.checkpoint}: {already} trials "
                    f"loaded, {executed} executed"
                )
        else:
            outcome = campaign.run(backend)
    rows = []
    for plan_key, result in outcome.results.items():
        for label in sorted(result.series):
            series = result.series[label]
            cdf = series.cdf_all()
            fraction = series.converged_fraction()
            rows.append(
                (
                    plan_key,
                    label,
                    f"{cdf.mean():.3f}" if cdf.count else "n/a",
                    f"{100 * fraction:.0f}%" + (" !" if fraction < 1.0 else ""),
                )
            )
    out.insert(
        0,
        format_table(
            ["plan", "series", "mean (all)", "conv"],
            rows,
            title=(
                f"campaign {campaign.name!r} — {len(campaign.plans)} plans, "
                f"{campaign.total_trials()} trials, "
                f"backend={outcome.notes['backend']}"
            ),
        ),
    )
    out.extend(_export_json(args, outcome))
    return "\n".join(out)


def cmd_uniform(args) -> str:
    result = figures.uniform_topologies(reps=args.reps, seed=args.seed)
    return format_table(
        ["topology", "n", "diameter", "weak mean", "fast mean", "fast top mean"],
        result.rows(),
        title="§5 — simple uniform topologies",
    )


def cmd_islands(args) -> str:
    result = figures.islands_experiment(reps=args.reps, seed=args.seed)
    table = format_table(
        ["variant", "far leader", "far island (mean member)", "all replicas"],
        result.rows(),
        title=f"§6 — two-valley grid, {result.islands_detected} islands detected "
        "(sessions until consistent)",
    )
    return table


def cmd_overhead(args) -> str:
    result = figures.overhead_experiment(reps=args.reps, seed=args.seed)
    return format_table(
        ["variant", "messages", "bytes", "fast bytes", "fast share", "t(top 10%)"],
        result.rows(),
        title=f"§8 — traffic over a fixed {result.horizon:.0f}-session window",
    )


def cmd_ablation(args) -> str:
    result = figures.ablation_experiment(reps=args.reps, seed=args.seed)
    table = format_table(
        ["variant", "mean sessions (all)", "mean sessions (top 10%)"],
        result.rows(),
        title="§2 — contribution of each optimisation",
    )
    chart = bar_chart(
        {v: d["mean_top"] for v, d in result.rows_by_variant.items()},
        title="mean sessions to the high-demand subset (lower is better)",
    )
    return table + "\n\n" + chart


def cmd_staleness(args) -> str:
    result = figures.staleness_experiment(reps=args.reps, seed=args.seed)
    return format_table(
        ["knowledge", "sessions to hottest", "sessions to all", "advert bytes"],
        result.rows(),
        title="§4 — demand-knowledge freshness under drifting demand",
    )


def cmd_strongcost(args) -> str:
    result = figures.strong_cost_experiment(reps=args.reps, seed=args.seed)
    return format_table(
        [
            "nodes",
            "strong write latency",
            "strong msgs/write",
            "strong fail rate @5% loss",
            "weak write latency",
            "weak convergence",
        ],
        result.rows(),
        title="§1 — synchronous replication vs anti-entropy, per write",
    )


def cmd_partition(args) -> str:
    result = figures.partition_experiment(reps=args.reps, seed=args.seed)
    table = format_table(
        ["variant", "writer side consistent", "all replicas", "after heal"],
        result.rows(),
        title=f"§1 — partition heals at t={result.heal_time:.0f}",
    )
    notes = format_kv(
        "strong consistency",
        [
            (
                "commit rate for writes during the partition",
                f"{100 * result.strong_commit_rate_during_partition:.0f}%",
            )
        ],
    )
    return table + "\n" + notes


def cmd_skew(args) -> str:
    result = figures.skew_experiment(reps=args.reps, seed=args.seed)
    return format_table(
        ["demand", "weak (all)", "fast (all)", "fast (hottest)", "push deliveries"],
        result.rows(),
        title="§8 — demand-skew sweep (flat = the paper's worst case)",
    )


def cmd_run(args) -> str:
    system = build_system(
        topology=args.topology,
        demand=args.demand,
        variant=args.variant,
        n=args.nodes,
        seed=args.seed,
        loss=args.loss,
    )
    system.start()
    origin = list(system.topology.nodes)[0]
    update = system.inject_write(origin)
    done = system.run_until_replicated(update.uid, max_time=200.0)
    times = system.apply_times(update.uid)
    snapshot = system.demand_snapshot(0.0)
    top = sorted(snapshot, key=lambda n: -snapshot[n])[
        : max(1, system.topology.num_nodes // 10)
    ]
    t_top = reach_time(times, top)
    traffic = system.traffic()
    pairs = [
        ("topology", f"{args.topology} n={system.topology.num_nodes}"),
        ("variant", args.variant),
        ("origin", origin),
        ("sessions to all replicas", "did not converge" if done is None else f"{done:.3f}"),
        ("sessions to top-10% demand", "n/a" if t_top is None else f"{t_top:.3f}"),
        ("messages", traffic["messages_sent"]),
        ("bytes", traffic["bytes_sent"]),
    ]
    return format_kv("ad-hoc run", pairs)


def cmd_serve(args) -> str:
    # Imported lazily: the asyncio-backed runtime must not tax the
    # simulation-only commands (or any plain `import repro`).
    import time as _time

    from .errors import ReplicationError
    from .runtime.cluster import ReplicaCluster
    from .telemetry.emitter import SnapshotEmitter
    from .topology.brite import internet_like

    if args.rate <= 0:
        raise ExperimentError(f"--rate must be positive, got {args.rate}")
    if args.duration <= 0:
        raise ExperimentError(f"--duration must be positive, got {args.duration}")
    metrics_interval = args.metrics_interval
    if metrics_interval is None and args.metrics_path is not None:
        metrics_interval = 1.0
    if metrics_interval is not None and metrics_interval <= 0:
        raise ExperimentError(
            f"--metrics-interval must be positive, got {metrics_interval}"
        )
    config = VARIANTS[args.variant]()
    topology = internet_like(args.nodes, seed=args.seed)
    schedule = None
    if args.faults != "none":
        schedule = build_faults(args.faults, topology, seed=args.seed)
    gap = 1.0 / args.rate
    uids = []
    refused = 0
    emitter = None
    with ReplicaCluster(
        topology,
        config=config,
        seed=args.seed,
        time_scale=args.time_scale,
        loss=args.loss,
        transport=args.transport,
        faults=schedule,
        control_port=args.control_port,
        standby_hubs=args.standby_hubs,
        token=args.token,
    ) as cluster:
        node_ids = cluster.node_ids
        if cluster.control_address is not None:
            print(
                "control socket on "
                f"{cluster.control_address[0]}:{cluster.control_address[1]}",
                file=sys.stderr,
            )
        for standby in cluster.hub_addresses[1:]:
            print(
                f"standby hub on {standby[0]}:{standby[1]}",
                file=sys.stderr,
            )
        if metrics_interval is not None:
            if args.metrics_path is not None:
                emitter = SnapshotEmitter(cluster.telemetry, path=args.metrics_path)
            else:
                emitter = SnapshotEmitter(cluster.telemetry, stream=sys.stderr)
        started = _time.monotonic()
        deadline = started + args.duration
        next_emit = (
            started + metrics_interval if metrics_interval is not None else None
        )
        sequence = 0
        while _time.monotonic() < deadline:
            node = node_ids[sequence % len(node_ids)]
            try:
                update = cluster.put("content", f"v{sequence}", node=node)
            except ReplicationError:
                # The target is crashed by an injected fault right now;
                # a real client would retry elsewhere.
                refused += 1
            else:
                uids.append(update.uid)
            sequence += 1
            if next_emit is not None and _time.monotonic() >= next_emit:
                cluster.emit_metrics(emitter, puts=sequence)
                next_emit += metrics_interval
            _time.sleep(gap)
        elapsed = _time.monotonic() - started
        # Grace period: let in-flight propagation finish before reading.
        if uids:
            cluster.wait_replicated(uids[-1], timeout=max(2.0, 20 * args.time_scale))
        if emitter is not None:
            # Final snapshot after the grace period, so the trail always
            # ends with the settled distribution.
            cluster.emit_metrics(emitter, puts=sequence, final=True)
            emitter.close()
        p50 = cluster.replication_latency_quantile(0.5)
        p99 = cluster.replication_latency_quantile(0.99)
        stats = cluster.stats()
    pairs = [
        ("nodes", stats["nodes"]),
        ("variant", stats["variant"]),
        ("transport", stats["transport"]),
        ("wall seconds served", f"{elapsed:.2f}"),
        ("puts issued", stats["puts"]),
        ("sustained puts/s", f"{stats['puts'] / elapsed:.1f}"),
        (
            "fully replicated",
            f"{stats['updates_fully_replicated']}/{stats['updates_tracked']}",
        ),
        # One completed session pair has exactly one initiator side.
        ("sessions completed", dict(stats["sessions"])["completed_initiator"]),
        ("messages", stats["traffic"]["messages_sent"]),
        ("bytes", stats["traffic"]["bytes_sent"]),
        ("handler errors", stats["handler_errors"]),
    ]
    if schedule is not None or refused:
        chaos = stats.get("chaos") or {}
        pairs.extend(
            [
                ("fault schedule", args.faults),
                (
                    "fault events fired",
                    f"{chaos.get('applied', 0)}/{chaos.get('total', 0)}"
                    + (f" ({chaos.get('skipped', 0)} skipped)" if chaos.get("skipped") else ""),
                ),
                ("puts refused (node down)", refused),
            ]
        )
    if p50 is not None:
        # Streaming sketch quantiles from the cluster's own registry —
        # the same numbers a `metrics?` client or the emitted snapshot
        # trail sees, no per-put latency list kept anywhere.
        pairs.extend(
            [
                ("p50 put->replicated", f"{1000 * p50:.1f} ms"),
                ("p99 put->replicated", f"{1000 * p99:.1f} ms"),
            ]
        )
    if emitter is not None:
        pairs.append(("telemetry snapshots emitted", emitter.emitted))
    return format_kv(f"live cluster — {args.nodes} nodes, {args.variant}", pairs)


def _chaos_connect(address, timeout, token):
    """Open one authenticated control channel to ``(host, port)``."""
    import socket

    from .errors import TransportError
    from .runtime.tcp import SyncFrameChannel

    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportError(
            f"cannot connect to {address[0]}:{address[1]}: {exc}"
        ) from exc
    channel = SyncFrameChannel(sock)
    if token is not None:
        channel.send(("auth", token))
    return channel


def cmd_chaos(args) -> str:
    """Drive a serving cluster's control socket: inject a fault schedule
    and/or kill its primary hub."""
    import time as _time

    from .errors import TransportError

    if args.faults is None and not args.kill_hub:
        raise ExperimentError("nothing to do: give --faults and/or --kill-hub")

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        raise ExperimentError(
            f"--connect wants HOST:PORT, got {args.connect!r}"
        )
    channel = _chaos_connect((host, int(port_text)), args.timeout, args.token)
    lines = []
    schedule = None
    try:
        standbys = []
        if args.kill_hub:
            # Learn the standby addresses up front: the connection we
            # are on dies with the hub we are about to kill.
            channel.send(("hubs?",))
            reply = channel.recv(timeout=args.timeout)
            if reply[0] == "error":
                raise TransportError(f"cluster refused: {reply[1]}")
            if reply[0] != "hubs":
                raise TransportError(
                    f"unexpected reply {reply[0]!r} to hub query"
                )
            standbys = [tuple(address) for address in reply[1][1:]]
        if args.faults is not None:
            # The schedule generators are pure functions of
            # (topology, seed), so fetching the cluster's topology lets
            # us build the exact schedule locally and ship it whole.
            channel.send(("topology?",))
            reply = channel.recv(timeout=args.timeout)
            if reply[0] == "error":
                raise TransportError(f"cluster refused: {reply[1]}")
            if reply[0] != "topology":
                raise TransportError(
                    f"unexpected reply {reply[0]!r} to topology query"
                )
            topology = reply[1]
            schedule = build_faults(args.faults, topology, seed=args.seed)
            channel.send(("chaos", schedule))
            reply = channel.recv(timeout=args.timeout)
            if reply[0] == "chaos-error":
                raise TransportError(f"cluster refused the schedule: {reply[1]}")
            if reply[0] == "error":
                raise TransportError(f"cluster refused: {reply[1]}")
            if reply[0] != "chaos-ack":
                raise TransportError(f"unexpected reply {reply[0]!r} to injection")
            info = reply[1]
            lines.append(
                f"injected {args.faults!r} (seed {args.seed}): "
                f"{info['events']} events over {schedule.duration:.1f} "
                "protocol units"
            )
        if args.kill_hub:
            channel.send(("kill-hub",))
            reply = channel.recv(timeout=args.timeout)
            if reply[0] == "kill-hub-error" or reply[0] == "error":
                raise TransportError(f"cluster refused the hub kill: {reply[1]}")
            if reply[0] != "kill-hub-ack":
                raise TransportError(f"unexpected reply {reply[0]!r} to hub kill")
            killed = reply[1]
            lines.append(f"killed primary hub {killed[0]}:{killed[1]}")
            if args.wait or args.report:
                if not standbys:
                    raise TransportError(
                        "cannot keep polling: the killed hub had no standby"
                    )
                channel.close()
                channel = _chaos_connect(standbys[0], args.timeout, args.token)
                lines.append(
                    f"reconnected to standby hub {standbys[0][0]}:{standbys[0][1]}"
                )
        status = None
        if (args.wait or args.report) and schedule is not None:
            while True:
                channel.send(("status?",))
                _, status = channel.recv(timeout=args.timeout)
                chaos = status.get("chaos") or {}
                if chaos.get("done"):
                    lines.append(
                        f"schedule complete: {chaos['applied']}/{chaos['total']}"
                        f" applied, {chaos['skipped']} skipped"
                    )
                    break
                _time.sleep(0.2)
        elif args.wait or args.report:
            channel.send(("status?",))
            _, status = channel.recv(timeout=args.timeout)
        if args.report:
            # The schedule just finished: give the cluster a moment to
            # fully replicate a post-heal write so the report's
            # convergence time is measured, not null.
            grace = _time.monotonic() + min(5.0, args.timeout)
            while (
                status.get("post_heal_seconds") is None
                and _time.monotonic() < grace
            ):
                _time.sleep(0.2)
                channel.send(("status?",))
                _, status = channel.recv(timeout=args.timeout)
            lines.append(_chaos_report(args, schedule, status))
        return "\n".join(lines)
    finally:
        channel.close()


def _chaos_report(args, schedule, status) -> str:
    """Write the per-run convergence report JSON; returns a one-liner.

    The p50/p99 put-to-replicated seconds come from the cluster's own
    streaming latency sketch (shipped inside the ``status?`` telemetry
    snapshot), so the report covers every put the cluster ever served —
    not just the ones still inside its ``track_limit`` window.
    """
    import json as _json

    from .telemetry.registry import MetricRegistry

    chaos = status.get("chaos") or {}
    report = {
        "schedule": args.faults,
        "seed": args.seed,
        "hub_killed": bool(getattr(args, "kill_hub", False)),
        "events_total": chaos.get("total"),
        "events_applied": chaos.get("applied"),
        "events_skipped": chaos.get("skipped"),
        "schedule_duration_units": (
            schedule.duration if schedule is not None else None
        ),
        "post_heal_convergence_seconds": status.get("post_heal_seconds"),
        "puts": status.get("puts"),
        "updates_fully_replicated": status.get("updates_fully_replicated"),
        "p50_put_to_replicated_seconds": None,
        "p99_put_to_replicated_seconds": None,
        "latency_rank_error_fraction": None,
        "corrupt_frames_dropped": None,
        "duplicates_suppressed": None,
        "reorders_applied": None,
    }
    snapshot = status.get("telemetry")
    if snapshot is not None:
        registry = MetricRegistry.restore(snapshot)
        transport = str(status.get("transport", "queue"))
        sketch = registry.get(
            "cluster.replication_latency.sketch", transport=transport
        )
        if sketch is not None and sketch.count:
            report["p50_put_to_replicated_seconds"] = sketch.quantile(0.5)
            report["p99_put_to_replicated_seconds"] = sketch.quantile(0.99)
            report["latency_rank_error_fraction"] = sketch.error_fraction()
        for name in (
            "corrupt_frames_dropped",
            "duplicates_suppressed",
            "reorders_applied",
        ):
            counter = registry.get(
                f"cluster.packet.{name}", transport=transport
            )
            if counter is not None:
                report[name] = counter.value
    Path(args.report).write_text(
        _json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return f"convergence report written to {args.report}"


def cmd_all(args) -> str:
    chunks = [
        cmd_surface(argparse.Namespace(valleys=2)),
        cmd_table1(args),
        cmd_fig3(args),
        _fig_cdf(argparse.Namespace(reps=args.reps, seed=args.seed, nodes=50, plot=False), 50),
        _fig_cdf(argparse.Namespace(reps=args.reps, seed=args.seed, nodes=100, plot=False), 100),
        cmd_table2(args),
        cmd_scaling(
            argparse.Namespace(reps=max(10, args.reps // 2), seed=args.seed, sizes=[25, 50, 100])
        ),
        cmd_uniform(argparse.Namespace(reps=max(10, args.reps // 2), seed=args.seed)),
        cmd_islands(argparse.Namespace(reps=max(10, args.reps // 2), seed=args.seed)),
        cmd_overhead(argparse.Namespace(reps=max(5, args.reps // 3), seed=args.seed)),
        cmd_ablation(args),
        cmd_strongcost(argparse.Namespace(reps=max(5, args.reps // 3), seed=args.seed)),
    ]
    return ("\n\n" + "=" * 72 + "\n\n").join(chunks)


_COMMANDS = {
    "surface": cmd_surface,
    "table1": cmd_table1,
    "fig3": cmd_fig3,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "table2": cmd_table2,
    "scaling": cmd_scaling,
    "campaign": cmd_campaign,
    "sweep": cmd_sweep,
    "uniform": cmd_uniform,
    "islands": cmd_islands,
    "overhead": cmd_overhead,
    "ablation": cmd_ablation,
    "staleness": cmd_staleness,
    "strongcost": cmd_strongcost,
    "partition": cmd_partition,
    "skew": cmd_skew,
    "run": cmd_run,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
    "all": cmd_all,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS[args.command]
    try:
        print(command(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
