"""SimRuntime: the discrete-event adapter of the runtime port.

Wraps an existing :class:`~repro.sim.engine.Simulator` (clock, RNG,
trace, pub/sub) and :class:`~repro.sim.network.Network` (transport)
behind the :class:`~repro.runtime.base.Runtime` facade.  Every call
delegates one-to-one, so a protocol stack running on ``SimRuntime``
produces *bit-identical* event traces to the pre-port code — asserted
by the golden-trace regression test
(``tests/test_runtime_trace_equality.py``).

Beyond the portable :class:`Runtime` surface, ``SimRuntime`` exposes
the simulation-only drive controls (:meth:`run`, :meth:`stop`,
:meth:`step`) that experiment harnesses use to advance virtual time.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer
from .base import Runtime, Transport


class SimRuntime(Runtime):
    """Runtime adapter over a :class:`Simulator` / :class:`Network` pair.

    Args:
        sim: The simulator providing virtual time, RNG, trace and bus.
        transport: The network messages travel on; may be bound later
            with :meth:`bind_transport` (the network itself needs the
            simulator to exist first).
    """

    def __init__(self, sim: Simulator, transport: Optional[Network] = None):
        self.sim = sim
        self.transport: Transport = transport  # type: ignore[assignment]

    def bind_transport(self, transport: Network) -> None:
        """Attach the transport once the network has been built."""
        if self.transport is not None:
            raise SimulationError("SimRuntime already has a transport")
        self.transport = transport

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> object:
        return self.sim.schedule(
            delay, callback, *args, priority=priority, label=label
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> object:
        return self.sim.schedule_at(
            time, callback, *args, priority=priority, label=label
        )

    def cancel(self, handle: object) -> bool:
        return self.sim.cancel(handle)

    def schedule_fast(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        self.sim.schedule_fast(delay, callback, *args)

    # -- cross-cutting services -----------------------------------------

    @property
    def rng(self) -> RngRegistry:  # type: ignore[override]
        return self.sim.rng

    @property
    def trace(self) -> Tracer:  # type: ignore[override]
        return self.sim.trace

    def publish(self, topic: str, **payload: Any) -> int:
        return self.sim.publish(topic, **payload)

    def subscribe(self, topic: str, handler: Callable[..., None]) -> None:
        self.sim.subscribe(topic, handler)

    def unsubscribe(self, topic: str, handler: Callable[..., None]) -> None:
        self.sim.unsubscribe(topic, handler)

    # -- simulation-only drive controls ---------------------------------

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> str:
        """Advance virtual time (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self.sim.stop()

    def step(self) -> bool:
        """Execute the single next event."""
        return self.sim.step()
