"""The runtime port: the narrow world-interface the protocol needs.

The replication protocol (anti-entropy sessions, fast-update pushes,
demand advertisements) is pure message-driven logic.  Everything it
needs from the outside world fits three small contracts:

* :class:`Clock` — read the current time, schedule/cancel callbacks;
* :class:`Transport` — send messages between nodes, register per-node
  delivery handlers, enumerate neighbours (links carry latency and may
  lose messages);
* :class:`Runtime` — the facade the protocol stack is actually handed:
  it *is* a clock, owns a transport, and hosts the cross-cutting
  services every deployment needs (named RNG streams, structured
  tracing, a topic bus);
* :class:`FaultInjector` — the actions a fault schedule can take
  against a running deployment (crash/recover a node, fail links,
  partition/heal, shock demand, churn).  One declarative
  :class:`~repro.faults.schedule.FaultSchedule` replays through any
  injector, which is what turns the fault subsystem into a chaos
  harness for the live runtimes.

Two adapters implement the port:

* :class:`repro.runtime.simulation.SimRuntime` binds the protocol to
  the discrete-event simulator — virtual time, bit-reproducible traces;
* :class:`repro.runtime.live.AsyncioRuntime` binds the same protocol
  code to real wall-clock time over in-process asyncio queues, which is
  what :class:`repro.runtime.cluster.ReplicaCluster` serves live client
  traffic on.

Both :class:`Clock` and :class:`Transport` are structural
(:mod:`typing` protocols): the existing
:class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.network.Network` satisfy them as-is, so simulation
code pays nothing for the boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..sim.rng import RngRegistry
from ..sim.trace import Tracer

#: Per-node delivery callback: ``handler(src, message)``.
MessageHandler = Callable[[int, object], None]


@runtime_checkable
class Clock(Protocol):
    """Time source, one-shot scheduling, and seeded randomness.

    Times and delays are in protocol units (the paper's "session
    times"); an adapter maps them to virtual or wall-clock seconds.
    ``rng`` rides along because every scheduler client (session timers,
    workload arrivals, advert jitter) draws its gaps from named
    deterministic streams — a clock without it cannot host the
    protocol's periodic activity.
    """

    #: Named deterministic RNG streams (protocol components draw
    #: intervals and choices via ``rng.stream(name, *key)``).
    rng: RngRegistry

    @property
    def now(self) -> float:
        """Current time in protocol units."""
        ...

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> object:
        """Run ``callback(*args)`` after ``delay``; returns a cancel handle."""
        ...

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> object:
        """Run ``callback(*args)`` at absolute ``time``; returns a handle."""
        ...

    def cancel(self, handle: object) -> bool:
        """Cancel a scheduled callback; True if it was still pending."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Node-to-node messaging along topology links.

    Links have per-hop latency (a :class:`~repro.sim.network.LatencyModel`)
    and may drop messages; every send is metered through ``counters``.
    """

    #: The link graph (``nodes`` / ``neighbors`` / ``has_edge`` /
    #: ``edge_weight``) the transport routes over.
    topology: Any

    #: Traffic meters (a :class:`~repro.sim.network.TrafficCounters`).
    counters: Any

    def send(self, src: int, dst: int, message: object) -> bool:
        """One-hop send; True if the message entered the channel."""
        ...

    def broadcast(self, src: int, message: object) -> int:
        """Send to every physical neighbour; returns sends accepted."""
        ...

    def attach(self, node: int, handler: MessageHandler) -> None:
        """Register ``node``'s delivery callback (its ``on_message``)."""
        ...

    def detach(self, node: int) -> None:
        """Remove a node's handler; in-flight messages to it are dropped."""
        ...

    def handler_for(self, node: int) -> Optional[MessageHandler]:
        """The currently attached handler of ``node`` (None if detached)."""
        ...

    def neighbors(self, node: int) -> List[int]:
        """Peers reachable in one hop (physical plus overlay links)."""
        ...

    def physical_neighbors(self, node: int) -> Sequence[int]:
        """Topology neighbours only (partner-selection candidate set)."""
        ...


class TopicBus:
    """Minimal synchronous pub/sub, shared by non-simulator runtimes."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Callable[..., None]]] = {}

    def subscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Register ``handler(**payload)`` for :meth:`publish` on ``topic``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, **payload: Any) -> int:
        """Deliver ``payload`` to every subscriber; returns handler count."""
        handlers = self._subscribers.get(topic)
        if not handlers:
            return 0
        for handler in tuple(handlers):
            handler(**payload)
        return len(handlers)


class FaultInjector(ABC):
    """The fault-action port: what a schedule can do to a deployment.

    Each method applies one :class:`~repro.faults.schedule.FaultEvent`
    action.  Adapters exist for every execution world:

    * :class:`repro.faults.process.SystemFaultInjector` — mutates a
      simulated :class:`~repro.core.system.ReplicationSystem`'s network
      (the pre-port ``FaultProcess`` behaviour, bit-identical);
    * the live injectors in :mod:`repro.runtime.cluster` — drive the
      same actions against an in-process asyncio cluster or broadcast
      them to the node processes of a TCP cluster.

    Replay (deciding *when* each action fires) is separate: see
    :class:`repro.faults.process.FaultProcess` (virtual time) and
    :class:`repro.faults.process.FaultReplayer` (wall clock); both
    dispatch through :func:`repro.faults.process.apply_fault`.
    """

    @abstractmethod
    def crash_node(self, node: int) -> None:
        """Crash ``node``: it neither sends nor receives until recovered."""

    @abstractmethod
    def recover_node(self, node: int) -> None:
        """Bring a crashed ``node`` back."""

    @abstractmethod
    def set_link(self, a: int, b: int, up: bool) -> None:
        """Fail (``up=False``) or restore (``up=True``) the a-b link."""

    @abstractmethod
    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Split the network; messages only flow within a group."""

    @abstractmethod
    def heal(self) -> None:
        """Remove any active partition."""

    @abstractmethod
    def shock_demand(self, nodes: Sequence[int], factor: float) -> bool:
        """Multiply ``nodes``' demand by ``factor`` from now on.

        Returns False when the deployment cannot absorb shocks (demand
        model not shockable); the replay records the event as skipped.
        """

    def leave_node(self, node: int) -> None:
        """Churn out: crash ``node`` and park its delivery handler.

        Default: plain crash.  Injectors whose transport keeps per-node
        handlers override this to detach and park the handler so a later
        join restores delivery exactly as it was.
        """
        self.crash_node(node)

    def join_node(self, node: int) -> None:
        """Churn in: restore the handler (if parked) and recover."""
        self.recover_node(node)

    def packet_fault(
        self, action: str, params: Sequence[float], duration: float
    ) -> bool:
        """Open a windowed packet-level disturbance on the channel.

        ``action`` is one of the packet actions in
        :data:`repro.faults.schedule.PACKET_ACTIONS` (latency shock,
        reorder, duplicate, corrupt-frame); ``params`` are the event
        args without the trailing duration.  The window expires on its
        own after ``duration`` protocol units — there is no paired
        "undo" action.

        Returns False when the deployment cannot express packet faults
        (the default); the replay records the event as skipped, which
        is what the sim≡live parity assertions compare.
        """
        return False


class Runtime(ABC):
    """Facade handed to every protocol component: clock + transport +
    cross-cutting services.

    Attributes:
        transport: The :class:`Transport` messages travel on.
        rng: Named deterministic RNG streams
            (:class:`~repro.sim.rng.RngRegistry`).
        trace: Structured tracer (:class:`~repro.sim.trace.Tracer`).
    """

    transport: Transport
    rng: RngRegistry
    trace: Tracer

    # -- clock ----------------------------------------------------------

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in protocol units."""

    @abstractmethod
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> object:
        """Run ``callback(*args)`` after ``delay``; returns a cancel handle."""

    @abstractmethod
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> object:
        """Run ``callback(*args)`` at absolute ``time``."""

    @abstractmethod
    def cancel(self, handle: object) -> bool:
        """Cancel a scheduled callback; True if it was still pending."""

    def schedule_fast(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Fire-and-forget ``callback(*args)`` after ``delay``.

        For periodic protocol activity that is never cancelled (session
        initiation timers, advertisement ticks): no cancel handle is
        returned, letting runtimes skip handle allocation. The default
        delegates to :meth:`schedule` and drops the handle; the
        simulation runtime overrides it with the kernel's trusted path.
        """
        self.schedule(delay, callback, *args)

    # -- pub/sub --------------------------------------------------------

    @abstractmethod
    def publish(self, topic: str, **payload: Any) -> int:
        """Synchronously deliver ``payload`` to subscribers of ``topic``."""

    @abstractmethod
    def subscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Register ``handler(**payload)`` for ``topic``."""

    @abstractmethod
    def unsubscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Remove a previously registered handler."""
