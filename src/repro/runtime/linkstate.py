"""Shared fault-state filter for live transports.

:class:`LinkState` holds the crash / failed-link / partition state a
fault injector applies to a running transport and answers the one
question every send and delivery asks: *can this channel carry a
message right now?*  The semantics mirror the simulator's
:class:`~repro.sim.network.Network` exactly — a crashed endpoint, a
failed link or a partition boundary refuses the message — so the same
:class:`~repro.faults.schedule.FaultSchedule` means the same thing in
every execution world.

The simulator's ``Network`` keeps its own hand-tuned copy of this logic
(its send path is hot and golden-trace-pinned); the live transports
(:class:`~repro.runtime.live.AsyncioTransport`,
:class:`~repro.runtime.tcp.TcpTransport`) share this one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..errors import FaultError
from ..faults.schedule import (
    ACTION_CORRUPT_FRAME,
    ACTION_LATENCY_SHOCK,
    ACTION_PACKET_DUPLICATE,
    ACTION_PACKET_REORDER,
    PACKET_ACTIONS,
)


class PacketFaultState:
    """Windowed packet-level disturbances on a channel.

    One window per action kind (re-application replaces it), expiring
    passively by time: every query takes ``now`` and a window whose end
    has passed evaporates on first sight.  Kept deliberately tiny — an
    inactive state costs the caller one ``possible`` check and zero RNG
    draws, which is what lets the simulator's golden-trace-pinned send
    path host these hooks without perturbing fault-free runs.
    """

    __slots__ = ("_windows",)

    def __init__(self) -> None:
        #: action -> (params-without-duration, window end time)
        self._windows: Dict[str, Tuple[Tuple[float, ...], float]] = {}

    def apply(
        self, action: str, params: Sequence[float], duration: float, now: float
    ) -> None:
        """Open (or replace) the ``action`` window for ``duration`` units."""
        if action not in PACKET_ACTIONS:
            raise FaultError(
                f"unknown packet fault {action!r}; known: {sorted(PACKET_ACTIONS)}"
            )
        if duration <= 0:
            raise FaultError(f"packet fault duration must be > 0, got {duration}")
        self._windows[action] = (
            tuple(float(p) for p in params),
            float(now) + float(duration),
        )

    def clear(self) -> None:
        self._windows.clear()

    @property
    def possible(self) -> bool:
        """True while any window *might* be open (cheap hot-path guard)."""
        return bool(self._windows)

    def params(self, action: str, now: float) -> Optional[Tuple[float, ...]]:
        """The open window's params for ``action``, or None (expired/absent)."""
        entry = self._windows.get(action)
        if entry is None:
            return None
        params, until = entry
        if now >= until:
            del self._windows[action]
            return None
        return params

    # -- typed queries (what the send paths actually ask) ---------------

    def latency_factor(self, now: float) -> float:
        params = self.params(ACTION_LATENCY_SHOCK, now)
        return params[0] if params else 1.0

    def reorder(self, now: float) -> Optional[Tuple[float, ...]]:
        """``(probability, window)`` while reordering is open, else None."""
        return self.params(ACTION_PACKET_REORDER, now)

    def duplicate_probability(self, now: float) -> float:
        params = self.params(ACTION_PACKET_DUPLICATE, now)
        return params[0] if params else 0.0

    def corrupt_probability(self, now: float) -> float:
        params = self.params(ACTION_CORRUPT_FRAME, now)
        return params[0] if params else 0.0


class LinkState:
    """Mutable crash/link/partition state with Network-compatible queries."""

    __slots__ = ("_down_nodes", "_down_links", "_partition", "packet")

    def __init__(self) -> None:
        self._down_nodes: Set[int] = set()
        self._down_links: Set[Tuple[int, int]] = set()
        self._partition: Optional[Dict[int, int]] = None
        #: Windowed packet-level faults (shared by the live transports).
        self.packet = PacketFaultState()

    # -- mutation (the fault-injection surface) -------------------------

    def set_node_down(self, node: int) -> None:
        """Crash a node: it neither sends nor receives until restored."""
        self._down_nodes.add(int(node))

    def set_node_up(self, node: int) -> None:
        """Restore a crashed node."""
        self._down_nodes.discard(int(node))

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def set_link_down(self, a: int, b: int) -> None:
        """Fail the link between ``a`` and ``b`` (both directions)."""
        self._down_links.add(self._link_key(int(a), int(b)))

    def set_link_up(self, a: int, b: int) -> None:
        """Restore a failed link."""
        self._down_links.discard(self._link_key(int(a), int(b)))

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: messages may only cross within a group."""
        assignment: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                assignment[int(node)] = index
        self._partition = assignment

    def heal_partition(self) -> None:
        """Remove any active partition."""
        self._partition = None

    # -- queries ---------------------------------------------------------

    def node_is_up(self, node: int) -> bool:
        return node not in self._down_nodes

    def link_is_up(self, a: int, b: int) -> bool:
        return self._link_key(a, b) not in self._down_links

    @property
    def active(self) -> bool:
        """True when any fault is currently in effect."""
        return bool(
            self._down_nodes or self._down_links or self._partition is not None
        )

    def down_nodes(self) -> Set[int]:
        """Snapshot of the currently crashed nodes."""
        return set(self._down_nodes)

    def can_carry(self, src: int, dst: int) -> bool:
        """Whether the ``src``->``dst`` channel carries a message now.

        Same rules as the simulator's network: both endpoints up, the
        link not failed, and no partition boundary between them.
        """
        if (
            not self._down_nodes
            and not self._down_links
            and self._partition is None
        ):
            return True
        if src in self._down_nodes or dst in self._down_nodes:
            return False
        if self._link_key(src, dst) in self._down_links:
            return False
        if self._partition is not None:
            if self._partition.get(src) != self._partition.get(dst):
                return False
        return True
