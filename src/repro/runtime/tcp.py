"""TcpTransport: the protocol over real sockets, across OS processes.

The same :class:`~repro.runtime.base.Transport` contract the in-process
:class:`~repro.runtime.live.AsyncioTransport` satisfies, implemented on
length-prefixed TCP frames so an :class:`~repro.runtime.live.AsyncioRuntime`
cluster can span OS processes (or machines):

* **Framing** — every frame is an 8-byte big-endian header (payload
  length + CRC-32 of the payload) followed by a pickled payload.
  :class:`FrameDecoder` reassembles frames from arbitrary stream chunks
  (partial reads are normal TCP behaviour), rejects oversized frames
  with a one-line :class:`~repro.errors.TransportError` before
  buffering them, and *skips* corrupt frames (CRC mismatch or an
  undecodable body): a garbled frame is metered and dropped, never a
  crash of the receive pump — which is exactly the error path the
  ``corrupt_frame`` chaos action injects through.
* **Peer discovery** — a transport only knows ``node id -> (host,
  port)`` via its :attr:`directory`, which the cluster hub fills
  nameserver-style: node processes bind an ephemeral port, register it,
  and receive the complete directory before the protocol starts.
* **Reconnect with backoff** — outbound links reconnect lazily with
  exponential backoff; sends while a peer is unreachable are *dropped
  and metered*, never raised (``ignore_disconnects`` semantics, after
  eugene-eeo/rated): the replication protocol is built to survive lost
  messages, so a flapping peer costs retries, not crashes.  Once the
  peer is back, the next send past the backoff window reconnects and
  delivery resumes.

Fault injection shares the live transports'
:class:`~repro.runtime.linkstate.LinkState`: a chaos controller
broadcasts each fault action to every node process, whose transport
then refuses to carry messages across crashed nodes, failed links or
partition boundaries — exactly the simulator Network's semantics.

This module is imported lazily by :mod:`repro.runtime` so simulation
workflows never pay for asyncio or sockets.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import SimulationError, TransportError
from ..sim.network import (
    FixedLatency,
    LatencyModel,
    TrafficCounters,
    message_kind,
    message_size,
    resolve_delay,
)
from .base import MessageHandler
from .linkstate import LinkState
from .live import AsyncioRuntime

#: Header size: 4-byte unsigned big-endian frame length followed by the
#: 4-byte CRC-32 of the payload.
HEADER_BYTES = 8
_HEADER = struct.Struct(">II")

#: Default ceiling on one frame's payload (update batches are small;
#: anything near this is a protocol bug or a corrupted stream).
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(
    payload: object, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Pickle ``payload`` and prefix it with its length and CRC-32.

    Raises:
        TransportError: If the pickled payload exceeds
            ``max_frame_bytes`` (the peer would reject it anyway).
    """
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > max_frame_bytes:
        raise TransportError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def corrupt_frame_bytes(frame: bytes) -> bytes:
    """Garble an encoded frame's *body*, leaving the header intact.

    The chaos injector sends such frames deliberately: the length prefix
    stays valid so the stream never desynchronises, the CRC check fails
    at the receiver, and the decoder meters and skips the frame.
    """
    if len(frame) <= HEADER_BYTES:
        raise TransportError("cannot corrupt a frame with an empty body")
    index = HEADER_BYTES + (len(frame) - HEADER_BYTES) // 2
    garbled = bytearray(frame)
    garbled[index] ^= 0xFF
    return bytes(garbled)


class FrameDecoder:
    """Incremental decoder: arbitrary stream chunks in, whole frames out.

    TCP guarantees a byte stream, not message boundaries — a frame may
    arrive coalesced with its neighbours or split at any byte.  Feed
    whatever ``recv`` returned; complete frames come back in order.

    Corrupt frames — a CRC mismatch or a body :mod:`pickle` cannot
    decode — are *skipped*, counted in :attr:`corrupt_frames`, and
    reported through the optional ``on_corrupt`` callback; they never
    raise.  The length prefix keeps the stream synchronised, so one
    garbled frame costs exactly one frame.

    Args:
        max_frame_bytes: Frames whose declared length exceeds this are
            rejected *before* their body is buffered, so a corrupted or
            hostile length prefix cannot balloon memory.
        on_corrupt: Optional ``callback(reason)`` invoked once per
            skipped corrupt frame (transports meter the drop here).
    """

    def __init__(
        self,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        on_corrupt: Optional[Callable[[str], None]] = None,
    ):
        self.max_frame_bytes = int(max_frame_bytes)
        self.on_corrupt = on_corrupt
        self.corrupt_frames = 0
        self._buffer = bytearray()

    def _note_corrupt(self, reason: str) -> None:
        self.corrupt_frames += 1
        if self.on_corrupt is not None:
            self.on_corrupt(reason)

    def feed(self, data: bytes) -> List[object]:
        """Buffer ``data``; return every frame it completed.

        Raises:
            TransportError: On an oversized frame (one-line error naming
                both sizes; the connection should be dropped).
        """
        self._buffer.extend(data)
        frames: List[object] = []
        while True:
            if len(self._buffer) < HEADER_BYTES:
                break
            length, crc = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise TransportError(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if len(self._buffer) < HEADER_BYTES + length:
                break
            body = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
            del self._buffer[: HEADER_BYTES + length]
            if zlib.crc32(body) != crc:
                self._note_corrupt(f"frame CRC mismatch ({length} bytes)")
                continue
            try:
                frames.append(pickle.loads(body))
            except Exception:  # noqa: BLE001 - a bad body must not kill the pump
                self._note_corrupt(f"undecodable frame body ({length} bytes)")
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward a not-yet-complete frame."""
        return len(self._buffer)


async def read_frames(
    reader: "asyncio.StreamReader",
    decoder: FrameDecoder,
    chunk_size: int = 65536,
):
    """Async generator of frames from ``reader`` until EOF.

    Propagates :class:`TransportError` from the decoder (oversized
    frame); the caller should close the connection.
    """
    while True:
        data = await reader.read(chunk_size)
        if not data:
            return
        for frame in decoder.feed(data):
            yield frame


async def send_frame(
    writer: "asyncio.StreamWriter",
    payload: object,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Write one frame and drain."""
    writer.write(encode_frame(payload, max_frame_bytes))
    await writer.drain()


# -- synchronous helpers (the chaos CLI client is a plain socket) ---------


class SyncFrameChannel:
    """Blocking frame I/O over a plain socket (for CLI control clients)."""

    def __init__(
        self,
        sock: "socket.socket",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.sock = sock
        self.max_frame_bytes = max_frame_bytes
        self._decoder = FrameDecoder(max_frame_bytes)
        self._pending: List[object] = []

    def send(self, payload: object) -> None:
        self.sock.sendall(encode_frame(payload, self.max_frame_bytes))

    def recv(self, timeout: Optional[float] = None) -> object:
        """Read one frame (raises TransportError on EOF or timeout)."""
        if self._pending:
            return self._pending.pop(0)
        self.sock.settimeout(timeout)
        while not self._pending:
            try:
                data = self.sock.recv(65536)
            except socket.timeout:
                raise TransportError(
                    f"timed out after {timeout}s waiting for a frame"
                ) from None
            if not data:
                raise TransportError("connection closed while reading a frame")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.pop(0)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The transport
# ---------------------------------------------------------------------------


class _PeerLink:
    """Outbound connection to one remote node, with lazy reconnect.

    A sender task drains the outbound queue; when the peer is
    unreachable, frames are dropped (metered by the owning transport)
    and reconnection attempts are spaced by exponential backoff.
    """

    __slots__ = (
        "transport",
        "node",
        "queue",
        "task",
        "writer",
        "backoff",
        "next_attempt",
    )

    def __init__(self, transport: "TcpTransport", node: int):
        self.transport = transport
        self.node = node
        self.queue: "asyncio.Queue[bytes]" = asyncio.Queue()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.backoff = transport.reconnect_base
        self.next_attempt = 0.0
        self.task = transport.runtime.loop.create_task(self._run())

    async def _run(self) -> None:
        loop = self.transport.runtime.loop
        while True:
            frame = await self.queue.get()
            writer = await self._ensure_connected(loop)
            if writer is None:
                self.transport._meter_drop(self.node, "disconnected")
                continue
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                # ignore_disconnects: the frame is lost, the protocol's
                # retries will cover it; we just arm the backoff.
                self._disconnect(loop)
                self.transport._meter_drop(self.node, "disconnected")

    async def _ensure_connected(self, loop) -> Optional[asyncio.StreamWriter]:
        if self.writer is not None:
            return self.writer
        if loop.time() < self.next_attempt:
            return None
        address = self.transport.directory.get(self.node)
        if address is None:
            self._arm_backoff(loop)
            return None
        try:
            _, writer = await asyncio.wait_for(
                asyncio.open_connection(address[0], address[1]),
                timeout=self.transport.connect_timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            self._arm_backoff(loop)
            return None
        self.writer = writer
        self.backoff = self.transport.reconnect_base
        return writer

    def _arm_backoff(self, loop) -> None:
        self.next_attempt = loop.time() + self.backoff
        self.backoff = min(self.backoff * 2, self.transport.reconnect_cap)

    def _disconnect(self, loop) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        self._arm_backoff(loop)

    def close(self) -> None:
        self.task.cancel()
        if self.writer is not None:
            self.writer.close()
            self.writer = None


class TcpTransport:
    """Socket-backed transport hosting a subset of the topology's nodes.

    Each process owns one ``TcpTransport`` serving its *local* nodes
    (one, in the cluster's spawn-per-node mode); sends to non-local
    nodes travel as frames to the peer process listed in the
    :attr:`directory`.  Local delivery is serialized per node through a
    mailbox-and-pump, exactly like :class:`AsyncioTransport`, so a
    replica behaves as a one-thread server in every world.

    Link latency (protocol units, scaled by the runtime's
    ``time_scale``) and probabilistic loss are applied at the *sender*,
    mirroring the simulator's Network; the real network adds only its
    own (localhost-negligible) cost on top.

    Args:
        runtime: Owning :class:`AsyncioRuntime` (clock + RNG).
        topology: The full link graph (every process holds a copy).
        local_nodes: Node ids hosted by this process.
        directory: Initial ``node -> (host, port)`` map for remote
            peers; usually filled later via :meth:`update_directory`.
        latency: Per-link latency model (default: fixed 0.02 units).
        loss: Probability a message is dropped in flight.
        max_frame_bytes: Per-frame ceiling (oversized frames are
            refused with a one-line error on both ends).
        reconnect_base / reconnect_cap: Exponential backoff window for
            reconnecting to an unreachable peer, in wall seconds.
    """

    def __init__(
        self,
        runtime: AsyncioRuntime,
        topology,
        local_nodes: Sequence[int],
        directory: Optional[Dict[int, Tuple[str, int]]] = None,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        seed_stream: str = "network",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        connect_timeout: float = 5.0,
    ):
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss probability {loss} outside [0, 1)")
        self.runtime = runtime
        self.topology = topology
        self.local_nodes: Set[int] = {int(n) for n in local_nodes}
        for node in self.local_nodes:
            if node not in topology.nodes:
                raise SimulationError(f"node {node} not in topology")
        self.directory: Dict[int, Tuple[str, int]] = dict(directory or {})
        self.latency = latency if latency is not None else FixedLatency()
        self.loss = float(loss)
        self.max_frame_bytes = int(max_frame_bytes)
        self.reconnect_base = float(reconnect_base)
        self.reconnect_cap = float(reconnect_cap)
        self.connect_timeout = float(connect_timeout)
        self.counters = TrafficCounters()
        self.link_state = LinkState()
        self._rng = runtime.rng.stream(seed_stream)
        self._handlers: Dict[int, MessageHandler] = {}
        self._queues: Dict[int, "asyncio.Queue[Tuple[int, object]]"] = {}
        self._pumps: Dict[int, "asyncio.Task[None]"] = {}
        self._pumping = False
        self._peers: Dict[int, _PeerLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._inbound_tasks: Set["asyncio.Task[None]"] = set()
        self.address: Optional[Tuple[str, int]] = None
        #: (node, exception) pairs from handlers that raised.
        self.handler_errors: List[Tuple[int, BaseException]] = []
        #: One-line records of refused inbound frames (oversized etc.).
        self.frame_errors: List[str] = []

    # -- lifecycle -------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Start listening for peer frames; returns the bound address.

        ``port=0`` binds an ephemeral port — the caller registers the
        returned address with the cluster's directory service.
        """
        if self._server is not None:
            raise TransportError("transport already serving")
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        sock_host, sock_port = self._server.sockets[0].getsockname()[:2]
        self.address = (sock_host, sock_port)
        return self.address

    async def close(self) -> None:
        """Stop serving, close every peer link, cancel the pumps."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        peer_tasks = [peer.task for peer in self._peers.values()]
        for peer in self._peers.values():
            peer.close()
        self._peers.clear()
        for task in self._inbound_tasks:
            task.cancel()
        self._pumping = False
        for task in self._pumps.values():
            task.cancel()
        pending = (
            list(self._pumps.values()) + list(self._inbound_tasks) + peer_tasks
        )
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._pumps.clear()
        self._queues.clear()
        self._inbound_tasks.clear()

    def update_directory(self, directory: Dict[int, Tuple[str, int]]) -> None:
        """Merge peer addresses (nameserver push or lazy lookup result)."""
        for node, address in directory.items():
            self.directory[int(node)] = (str(address[0]), int(address[1]))

    # -- attachment (local nodes only) -----------------------------------

    def attach(self, node: int, handler: MessageHandler) -> None:
        """Register the delivery callback for a *local* node."""
        if node not in self.local_nodes:
            raise TransportError(
                f"node {node} is not hosted by this process "
                f"(local: {sorted(self.local_nodes)})"
            )
        self._handlers[node] = handler
        if self._pumping:
            self._ensure_pump(node)

    def detach(self, node: int) -> None:
        """Remove a node's handler; queued messages to it are dropped."""
        self._handlers.pop(node, None)

    def handler_for(self, node: int) -> Optional[MessageHandler]:
        return self._handlers.get(node)

    # -- fault injection -------------------------------------------------

    def set_node_down(self, node: int) -> None:
        self.link_state.set_node_down(node)

    def set_node_up(self, node: int) -> None:
        self.link_state.set_node_up(node)

    def node_is_up(self, node: int) -> bool:
        return self.link_state.node_is_up(node)

    def set_link_down(self, a: int, b: int) -> None:
        self.link_state.set_link_down(a, b)

    def set_link_up(self, a: int, b: int) -> None:
        self.link_state.set_link_up(a, b)

    def partition(self, groups) -> None:
        self.link_state.partition(groups)

    def heal_partition(self) -> None:
        self.link_state.heal_partition()

    def apply_packet_fault(self, action: str, params, duration: float) -> None:
        """Open a windowed packet-level fault on every channel."""
        self.link_state.packet.apply(action, params, duration, self.runtime.now)

    # -- pump lifecycle ---------------------------------------------------

    def start_pumps(self) -> None:
        """Create one mailbox and pump task per attached local node."""
        self._pumping = True
        for node in self._handlers:
            self._ensure_pump(node)

    def _ensure_pump(self, node: int) -> None:
        if node not in self._pumps:
            self._queues[node] = asyncio.Queue()
            self._pumps[node] = self.runtime.loop.create_task(self._pump(node))

    async def _pump(self, node: int) -> None:
        queue = self._queues[node]
        while True:
            src, message = await queue.get()
            if not self.link_state.node_is_up(node):
                self._drop(src, node, message_kind(message), "crashed-in-flight")
                continue
            handler = self._handlers.get(node)
            if handler is None:
                self._drop(src, node, message_kind(message), "no-handler")
                continue
            self.counters.messages_delivered += 1
            try:
                handler(src, message)
            except Exception as exc:  # noqa: BLE001 - replica must survive
                self.handler_errors.append((node, exc))

    # -- neighbours -------------------------------------------------------

    def neighbors(self, node: int) -> List[int]:
        return list(self.topology.neighbors(node))

    def physical_neighbors(self, node: int) -> Sequence[int]:
        return self.topology.neighbors(node)

    # -- sending ----------------------------------------------------------

    def send(self, src: int, dst: int, message: object) -> bool:
        """One-hop send; True if the message entered the channel."""
        if src == dst:
            raise SimulationError(f"node {src} sending to itself")
        kind = message_kind(message)
        size = message_size(message)
        if not self.topology.has_edge(src, dst):
            raise SimulationError(f"no link {src}->{dst}")
        self.counters.note_send(kind, size)
        if self.link_state.active and not self.link_state.can_carry(src, dst):
            self._drop(src, dst, kind, "link-down")
            return False
        if self.loss and self._rng.random() < self.loss:
            self._drop(src, dst, kind, "loss")
            return True
        distance = self.topology.edge_weight(src, dst)
        delay = resolve_delay(self.latency, src, dst, distance, size)
        corrupt = False
        packet = self.link_state.packet
        if packet.possible:
            # Same draw order as the other worlds (corrupt, latency,
            # reorder, duplicate).  A corrupted remote send still rides
            # the wire as a garbled frame — the *receiver's* decoder
            # meters and skips it, exercising the real error path.
            now = self.runtime.now
            corrupt_p = packet.corrupt_probability(now)
            if corrupt_p and self._rng.random() < corrupt_p:
                if dst in self.local_nodes:
                    # No wire to garble on a process-local hop; the
                    # receive side drops it immediately.
                    self.counters.corrupt_frames_dropped += 1
                    self._drop(src, dst, kind, "corrupt-frame")
                    return True
                corrupt = True
            factor = packet.latency_factor(now)
            if factor != 1.0:
                delay *= factor
            reorder = packet.reorder(now)
            if reorder is not None and self._rng.random() < reorder[0]:
                delay += self._rng.uniform(0.0, reorder[1])
                self.counters.reorders_applied += 1
            dup_p = packet.duplicate_probability(now)
            if dup_p and self._rng.random() < dup_p:
                self.runtime.schedule(
                    delay, self._dispatch_duplicate, src, dst, message, label="dup"
                )
        self.runtime.schedule(
            delay, self._dispatch, src, dst, message, corrupt, label=kind
        )
        return True

    def broadcast(self, src: int, message: object) -> int:
        sent = 0
        for neighbor in self.physical_neighbors(src):
            if self.send(src, neighbor, message):
                sent += 1
        return sent

    def _dispatch(
        self, src: int, dst: int, message: object, corrupt: bool = False
    ) -> None:
        """After the link latency: deliver locally or frame to the peer."""
        if self.link_state.active and not (
            self.link_state.node_is_up(src) and self.link_state.node_is_up(dst)
        ):
            self._drop(src, dst, message_kind(message), "crashed-in-flight")
            return
        if dst in self.local_nodes:
            queue = self._queues.get(dst)
            if queue is None:
                self._drop(src, dst, message_kind(message), "no-handler")
                return
            queue.put_nowait((src, message))
            return
        try:
            frame = encode_frame(("msg", src, dst, message), self.max_frame_bytes)
        except TransportError as exc:
            self.frame_errors.append(str(exc))
            self._drop(src, dst, message_kind(message), "oversized-frame")
            return
        if corrupt:
            frame = corrupt_frame_bytes(frame)
        peer = self._peers.get(dst)
        if peer is None:
            peer = self._peers[dst] = _PeerLink(self, dst)
        peer.queue.put_nowait(frame)

    def _dispatch_duplicate(self, src: int, dst: int, message: object) -> None:
        """Ship the channel's duplicate copy; the receiver suppresses it."""
        if dst in self.local_nodes:
            self.counters.duplicates_suppressed += 1
            return
        try:
            frame = encode_frame(("dup", src, dst, message), self.max_frame_bytes)
        except TransportError:
            return
        peer = self._peers.get(dst)
        if peer is None:
            peer = self._peers[dst] = _PeerLink(self, dst)
        peer.queue.put_nowait(frame)

    # -- receiving ---------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound_tasks.add(task)
            task.add_done_callback(self._inbound_tasks.discard)
        decoder = FrameDecoder(self.max_frame_bytes, on_corrupt=self._on_corrupt)
        try:
            async for frame in read_frames(reader, decoder):
                self._on_frame(frame)
        except TransportError as exc:
            # One-line rejection; drop the connection, the peer's
            # backoff will re-establish a clean one.
            self.frame_errors.append(str(exc))
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # close() tears inbound readers down; swallow so the
            # streams machinery does not log a spurious traceback.
            pass
        finally:
            writer.close()

    def _on_corrupt(self, reason: str) -> None:
        """A garbled inbound frame was skipped: meter, never raise."""
        self.counters.corrupt_frames_dropped += 1
        self.counters.messages_dropped += 1
        trace = self.runtime.trace
        if trace.wants("net.drop"):
            trace.record(
                self.runtime.now, "net.drop", src=-1, dst=-1, kind="frame",
                reason="corrupt-frame",
            )

    def _on_frame(self, frame: object) -> None:
        if isinstance(frame, tuple) and frame and frame[0] == "dup":
            # The channel duplicated a frame in flight; suppress the copy.
            self.counters.duplicates_suppressed += 1
            return
        if not (isinstance(frame, tuple) and frame and frame[0] == "msg"):
            self.frame_errors.append(f"unrecognised frame: {frame!r:.120}")
            return
        _, src, dst, message = frame
        if dst not in self.local_nodes:
            self._drop(src, dst, message_kind(message), "not-local")
            return
        if self.link_state.active and not self.link_state.can_carry(src, dst):
            self._drop(src, dst, message_kind(message), "link-down")
            return
        queue = self._queues.get(dst)
        if queue is None:
            self._drop(src, dst, message_kind(message), "no-handler")
            return
        queue.put_nowait((src, message))

    # -- metering ----------------------------------------------------------

    def _meter_drop(self, dst: int, reason: str) -> None:
        self.counters.messages_dropped += 1
        trace = self.runtime.trace
        if trace.wants("net.drop"):
            trace.record(
                self.runtime.now, "net.drop", src=-1, dst=dst, kind="frame",
                reason=reason,
            )

    def _drop(self, src: int, dst: int, kind: str, reason: str) -> None:
        self.counters.messages_dropped += 1
        trace = self.runtime.trace
        if trace.wants("net.drop"):
            trace.record(
                self.runtime.now, "net.drop", src=src, dst=dst, kind=kind,
                reason=reason,
            )
