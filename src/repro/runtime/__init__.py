"""Runtime port and adapters: one protocol, two execution worlds.

The protocol stack in :mod:`repro.core` depends only on the narrow
interfaces defined here:

* :class:`Clock` / :class:`Transport` / :class:`Runtime` — the port
  (:mod:`repro.runtime.base`);
* :class:`SimRuntime` — discrete-event adapter over the existing
  :class:`~repro.sim.engine.Simulator` and
  :class:`~repro.sim.network.Network` (bit-identical traces);
* :class:`AsyncioRuntime` / :class:`AsyncioTransport` — wall-clock
  adapter over in-process asyncio queues;
* :class:`ReplicaCluster` — the live client-facing API
  (``put`` / ``get`` / ``stats``) on top of ``AsyncioRuntime``.

The asyncio-backed names are imported lazily (PEP 562) so that
``import repro`` — and every simulation-only workflow — never imports
:mod:`asyncio`.
"""

from __future__ import annotations

from .base import (
    Clock,
    FaultInjector,
    MessageHandler,
    Runtime,
    TopicBus,
    Transport,
)
from .linkstate import LinkState
from .simulation import SimRuntime

#: Names resolved lazily from the asyncio-backed modules.
_LIVE_EXPORTS = {
    "AsyncioRuntime": "live",
    "AsyncioTransport": "live",
    "ReplicaCluster": "cluster",
    "DEFAULT_TIME_SCALE": "cluster",
    "TcpTransport": "tcp",
    "FrameDecoder": "tcp",
    "SyncFrameChannel": "tcp",
}

__all__ = [
    # port
    "Clock",
    "Transport",
    "Runtime",
    "TopicBus",
    "MessageHandler",
    "FaultInjector",
    "LinkState",
    # adapters
    "SimRuntime",
    "AsyncioRuntime",
    "AsyncioTransport",
    "TcpTransport",
    "FrameDecoder",
    "SyncFrameChannel",
    # live client API
    "ReplicaCluster",
    "DEFAULT_TIME_SCALE",
]


def __getattr__(name: str):
    module_name = _LIVE_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LIVE_EXPORTS))
