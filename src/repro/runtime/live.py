"""AsyncioRuntime: the wall-clock adapter of the runtime port.

The same protocol code that runs inside the discrete-event simulator
runs here against real time: callbacks are scheduled with
``loop.call_later``, and messages travel through per-node
:class:`asyncio.Queue` mailboxes drained by one pump task per node —
an in-process model of one event-loop server per replica.

Time is still measured in protocol units (the paper's session times);
``time_scale`` maps one unit to wall-clock seconds, so a cluster can be
run at full protocol fidelity but compressed into milliseconds per
session interval.

This module is imported lazily by :mod:`repro.runtime` so that
``import repro`` never pays for (or requires) :mod:`asyncio`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..sim.network import (
    FixedLatency,
    LatencyModel,
    TrafficCounters,
    message_kind,
    message_size,
    resolve_delay,
)
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer
from .base import MessageHandler, Runtime, TopicBus
from .linkstate import LinkState


class _LiveHandle:
    """Cancellation token for a wall-clock scheduled callback."""

    __slots__ = ("_timer", "fired", "cancelled", "label")

    def __init__(self, label: str = ""):
        self._timer: Optional[asyncio.TimerHandle] = None
        self.fired = False
        self.cancelled = False
        self.label = label

    def __repr__(self) -> str:
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"_LiveHandle(label={self.label!r}, {state})"


class AsyncioRuntime(Runtime):
    """Runtime adapter over a running :mod:`asyncio` event loop.

    Args:
        seed: Master seed for the deterministic RNG streams (protocol
            decisions stay reproducible even though timing is not).
        time_scale: Wall-clock seconds per protocol time unit.  The
            default ``1.0`` runs sessions in real time; live clusters
            typically compress (e.g. ``0.05`` = 50 ms per session time).
        trace: Optional tracer; defaults to a *disabled* one, since a
            live system should not buffer trace rows indefinitely.

    Call :meth:`start` from inside the event loop before scheduling.
    """

    def __init__(
        self,
        seed: int = 0,
        time_scale: float = 1.0,
        trace: Optional[Tracer] = None,
    ):
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be positive, got {time_scale}")
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self.time_scale = float(time_scale)
        self.transport = None  # type: ignore[assignment]
        self._bus = TopicBus()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Bind to the running event loop; time zero is now."""
        if self._loop is not None:
            raise SimulationError("AsyncioRuntime already started")
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise SimulationError("AsyncioRuntime not started (call start())")
        return self._loop

    async def sleep(self, units: float) -> None:
        """Sleep for ``units`` protocol time units of wall-clock time."""
        await asyncio.sleep(units * self.time_scale)

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        return (self.loop.time() - self._t0) / self.time_scale

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> _LiveHandle:
        handle = _LiveHandle(label=label)

        def _fire() -> None:
            handle.fired = True
            callback(*args)

        handle._timer = self.loop.call_later(
            max(0.0, delay) * self.time_scale, _fire
        )
        return handle

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
    ) -> _LiveHandle:
        return self.schedule(
            time - self.now, callback, *args, priority=priority, label=label
        )

    def cancel(self, handle: object) -> bool:
        if not isinstance(handle, _LiveHandle):
            return False
        if handle.fired or handle.cancelled or handle._timer is None:
            return False
        handle._timer.cancel()
        handle.cancelled = True
        return True

    # -- pub/sub --------------------------------------------------------

    def publish(self, topic: str, **payload: Any) -> int:
        return self._bus.publish(topic, **payload)

    def subscribe(self, topic: str, handler: Callable[..., None]) -> None:
        self._bus.subscribe(topic, handler)

    def unsubscribe(self, topic: str, handler: Callable[..., None]) -> None:
        self._bus.unsubscribe(topic, handler)


class AsyncioTransport:
    """Queue-backed transport between in-process replicas.

    Each attached node owns an :class:`asyncio.Queue` mailbox and a pump
    task that drains it, invoking the node's handler one message at a
    time — per-replica delivery is serialized exactly like a one-thread
    server.  Link latency (in protocol units, scaled by the runtime's
    ``time_scale``) and probabilistic loss mirror the simulator's
    :class:`~repro.sim.network.Network` semantics; all traffic is
    metered via :class:`~repro.sim.network.TrafficCounters`.

    Args:
        runtime: Owning :class:`AsyncioRuntime` (clock + RNG).
        topology: Link graph (``nodes`` / ``neighbors`` / ``has_edge`` /
            ``edge_weight``).
        latency: Per-link latency model (default: fixed 0.02 units).
        loss: Probability a message is dropped in flight.
        seed_stream: RNG stream name used for loss draws.
    """

    def __init__(
        self,
        runtime: AsyncioRuntime,
        topology,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        seed_stream: str = "network",
    ):
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss probability {loss} outside [0, 1)")
        self.runtime = runtime
        self.topology = topology
        self.latency = latency if latency is not None else FixedLatency()
        self.loss = loss
        self.counters = TrafficCounters()
        self._rng = runtime.rng.stream(seed_stream)
        #: Crash/link/partition state a live fault injector mutates;
        #: same carry semantics as the simulator's Network.
        self.link_state = LinkState()
        self._handlers: Dict[int, MessageHandler] = {}
        self._queues: Dict[int, "asyncio.Queue[Tuple[int, object]]"] = {}
        self._pumps: Dict[int, "asyncio.Task[None]"] = {}
        self._pumping = False
        #: (node, exception) pairs from handlers that raised; a bad
        #: message must not kill the replica's delivery loop.
        self.handler_errors: List[Tuple[int, BaseException]] = []

    # -- attachment -----------------------------------------------------

    def attach(self, node: int, handler: MessageHandler) -> None:
        """Register the delivery callback for ``node``.

        Attaching after :meth:`start_pumps` (a node joining a running
        cluster) creates the node's mailbox and pump immediately.
        """
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} not in topology")
        self._handlers[node] = handler
        if self._pumping:
            self._ensure_pump(node)

    def detach(self, node: int) -> None:
        """Remove a node's handler; queued messages to it are dropped."""
        self._handlers.pop(node, None)

    def handler_for(self, node: int) -> Optional[MessageHandler]:
        """The currently attached handler of ``node`` (None if detached)."""
        return self._handlers.get(node)

    # -- fault injection (delegates to the shared LinkState) -------------

    def set_node_down(self, node: int) -> None:
        """Crash a node: it neither sends nor receives until restored."""
        self.link_state.set_node_down(node)

    def set_node_up(self, node: int) -> None:
        """Restore a crashed node."""
        self.link_state.set_node_up(node)

    def node_is_up(self, node: int) -> bool:
        return self.link_state.node_is_up(node)

    def set_link_down(self, a: int, b: int) -> None:
        """Fail the link between ``a`` and ``b`` (both directions)."""
        self.link_state.set_link_down(a, b)

    def set_link_up(self, a: int, b: int) -> None:
        """Restore a failed link."""
        self.link_state.set_link_up(a, b)

    def partition(self, groups) -> None:
        """Split the network: messages may only cross within a group."""
        self.link_state.partition(groups)

    def heal_partition(self) -> None:
        """Remove any active partition."""
        self.link_state.heal_partition()

    def apply_packet_fault(self, action: str, params, duration: float) -> None:
        """Open a windowed packet-level fault on every channel."""
        self.link_state.packet.apply(action, params, duration, self.runtime.now)

    # -- pump lifecycle --------------------------------------------------

    def start_pumps(self) -> None:
        """Create one mailbox and pump task per attached node."""
        self._pumping = True
        for node in self._handlers:
            self._ensure_pump(node)

    def _ensure_pump(self, node: int) -> None:
        if node not in self._pumps:
            self._queues[node] = asyncio.Queue()
            self._pumps[node] = self.runtime.loop.create_task(self._pump(node))

    async def _pump(self, node: int) -> None:
        queue = self._queues[node]
        while True:
            src, message = await queue.get()
            if not self.link_state.node_is_up(node):
                # Crashed while the message sat in the mailbox.
                self._drop(src, node, message_kind(message), "crashed-in-flight")
                continue
            handler = self._handlers.get(node)
            if handler is None:
                self._drop(src, node, message_kind(message), "no-handler")
                continue
            self.counters.messages_delivered += 1
            try:
                handler(src, message)
            except Exception as exc:  # noqa: BLE001 - replica must survive
                self.handler_errors.append((node, exc))

    async def stop_pumps(self) -> None:
        """Cancel every pump task and wait for them to wind down."""
        self._pumping = False
        for task in self._pumps.values():
            task.cancel()
        await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()
        self._queues.clear()

    # -- neighbours ------------------------------------------------------

    def neighbors(self, node: int) -> List[int]:
        """One-hop peers (no overlay links in the live transport)."""
        return list(self.topology.neighbors(node))

    def physical_neighbors(self, node: int) -> Sequence[int]:
        """Topology neighbours (partner-selection candidate set)."""
        return self.topology.neighbors(node)

    # -- sending ---------------------------------------------------------

    def send(self, src: int, dst: int, message: object) -> bool:
        """One-hop send; True if the message entered the channel.

        Returns False when an injected fault (crashed endpoint, failed
        link, partition boundary) refuses the message — the same
        refusal contract as the simulator's Network.
        """
        if src == dst:
            raise SimulationError(f"node {src} sending to itself")
        kind = message_kind(message)
        size = message_size(message)
        if not self.topology.has_edge(src, dst):
            raise SimulationError(f"no link {src}->{dst}")
        self.counters.note_send(kind, size)
        if self.link_state.active and not self.link_state.can_carry(src, dst):
            self._drop(src, dst, kind, "link-down")
            return False
        if self.loss and self._rng.random() < self.loss:
            self._drop(src, dst, kind, "loss")
            return True
        distance = self.topology.edge_weight(src, dst)
        delay = resolve_delay(self.latency, src, dst, distance, size)
        packet = self.link_state.packet
        if packet.possible:
            # Same draw order as the simulator's Network (corrupt,
            # latency, reorder, duplicate) — the schedule means the same
            # thing in both worlds.
            now = self.runtime.now
            corrupt_p = packet.corrupt_probability(now)
            if corrupt_p and self._rng.random() < corrupt_p:
                self.counters.corrupt_frames_dropped += 1
                self._drop(src, dst, kind, "corrupt-frame")
                return True
            factor = packet.latency_factor(now)
            if factor != 1.0:
                delay *= factor
            reorder = packet.reorder(now)
            if reorder is not None and self._rng.random() < reorder[0]:
                delay += self._rng.uniform(0.0, reorder[1])
                self.counters.reorders_applied += 1
            dup_p = packet.duplicate_probability(now)
            if dup_p and self._rng.random() < dup_p:
                self.runtime.schedule(
                    delay, self._suppress_duplicate, src, dst, message, label="dup"
                )
        self.runtime.schedule(delay, self._deliver, src, dst, message, label=kind)
        return True

    def broadcast(self, src: int, message: object) -> int:
        """Send to every physical neighbour; returns sends accepted."""
        sent = 0
        for neighbor in self.physical_neighbors(src):
            if self.send(src, neighbor, message):
                sent += 1
        return sent

    def _suppress_duplicate(self, src: int, dst: int, message: object) -> None:
        # The channel duplicated the frame; the dedup layer drops the
        # copy at arrival time — metered, never delivered twice.
        self.counters.duplicates_suppressed += 1
        trace = self.runtime.trace
        if trace.wants("net.drop"):
            trace.record(
                self.runtime.now,
                "net.drop",
                src=src,
                dst=dst,
                kind=message_kind(message),
                reason="duplicate-suppressed",
            )

    def _deliver(self, src: int, dst: int, message: object) -> None:
        # Failures that occurred while the message was in flight still
        # prevent delivery (the channel is not clairvoyant).
        if self.link_state.active and not (
            self.link_state.node_is_up(src) and self.link_state.node_is_up(dst)
        ):
            self._drop(src, dst, message_kind(message), "crashed-in-flight")
            return
        queue = self._queues.get(dst)
        if queue is None:
            self._drop(src, dst, message_kind(message), "no-handler")
            return
        queue.put_nowait((src, message))

    def _drop(self, src: int, dst: int, kind: str, reason: str) -> None:
        self.counters.messages_dropped += 1
        trace = self.runtime.trace
        if trace.wants("net.drop"):
            trace.record(
                self.runtime.now, "net.drop", src=src, dst=dst, kind=kind, reason=reason
            )
