"""One replica per OS process: the child side of the TCP cluster.

:class:`~repro.runtime.cluster.ReplicaCluster` in ``transport="tcp"``
mode spawns one process per node; each runs :func:`node_process_main`
with a picklable :class:`NodeSpec`.  The child:

1. builds an :class:`~repro.runtime.live.AsyncioRuntime` and a
   :class:`~repro.runtime.tcp.TcpTransport` hosting just its node,
   binds an ephemeral port, and *registers* it with the parent's hub —
   the first reachable entry of an *ordered hub list*.  Losing the hub
   connection mid-run is survivable: the child cycles through the list
   with exponential backoff, re-registers, and replays its recent
   ``applied`` reports (the hub's bookkeeping is idempotent), while
   in-flight replication traffic keeps riding the peer connections
   undisturbed;
2. waits for the hub's *directory* (every peer's address) and *start*
   frames, then assembles the very same protocol stack the simulator
   uses (:func:`~repro.core.system.build_node_stack`) — demand tables
   are recomputed locally, which is safe because
   :func:`~repro.demand.advertisement.bootstrap_tables` is a pure
   function of topology + demand, both carried in the spec;
3. serves hub control frames until told to stop: client ``call``\\ s
   (put / read / stats), broadcast ``fault`` actions applied to the
   local transport's :class:`~repro.runtime.linkstate.LinkState`
   through the :class:`~repro.runtime.base.FaultInjector` port, and
   streams ``applied`` reports (update uid + ``time.monotonic()``)
   back so the hub can track cluster-wide replication.

Apply/put times cross process boundaries as raw ``time.monotonic()``
readings — system-wide comparable on Linux — which the hub converts to
protocol units; only differences are ever used.
"""

from __future__ import annotations

import asyncio
import collections
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.config import KNOWLEDGE_ADVERTISED, ProtocolConfig
from ..core.system import build_node_stack
from ..demand.advertisement import bootstrap_tables
from ..demand.base import DemandModel
from ..errors import ReplicationError
from ..faults.process import ShockableDemand, apply_fault
from ..faults.schedule import FaultEvent
from ..sim.network import LatencyModel
from ..topology.graph import Topology
from .base import FaultInjector
from .live import AsyncioRuntime
from .tcp import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameDecoder,
    TcpTransport,
    encode_frame,
    read_frames,
)


#: Hub reconnect backoff window, wall seconds.
HUB_RECONNECT_BASE = 0.05
HUB_RECONNECT_CAP = 1.0
#: Give up (and shut the child down) after this long without reaching
#: any hub — the whole parent is gone, not just one listener.
HUB_GIVE_UP_SECONDS = 30.0
#: How many recently reported ``applied`` pairs are kept for replay
#: after a hub failover.
APPLIED_REPLAY_LIMIT = 8192
#: Seconds between packet-counter pushes to the hub (only when changed).
PACKET_PUSH_INTERVAL = 0.5


@dataclass
class NodeSpec:
    """Everything one node process needs to boot (fully picklable)."""

    node: int
    topology: Topology
    demand: DemandModel
    config: ProtocolConfig
    seed: int
    time_scale: float
    #: Ordered hub list: primary first, then standbys.  The child walks
    #: it round-robin with backoff whenever its hub connection dies.
    hub_addresses: Tuple[Tuple[str, int], ...] = ()
    latency: Optional[LatencyModel] = None
    loss: float = 0.0
    #: True when the cluster's fault schedule carries demand shocks —
    #: the child wraps its demand in ShockableDemand before building.
    has_shocks: bool = False
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    host: str = "127.0.0.1"
    #: Shared control-plane token; sent as an ``auth`` frame before
    #: register when set (the hub refuses unauthenticated frames).
    token: Optional[str] = None


class NodeProcInjector(FaultInjector):
    """Fault-injector over one node process's local state.

    Every process receives every broadcast fault action and applies it
    to its *local* link state, so sender-side refusals (crashed peer,
    failed link, partition boundary) work without any shared memory.
    Churn handler parking only applies to the process's own node — no
    other process holds that handler.
    """

    def __init__(self, runtime, transport, demand, own_node: int, stack):
        self.runtime = runtime
        self.transport = transport
        self.demand = demand
        self.own_node = own_node
        self.stack = stack
        self._parked = None

    def crash_node(self, node: int) -> None:
        self.transport.set_node_down(node)

    def recover_node(self, node: int) -> None:
        if node == self.own_node and self._parked is not None:
            self.transport.attach(node, self._parked)
            self._parked = None
        self.transport.set_node_up(node)

    def set_link(self, a: int, b: int, up: bool) -> None:
        if up:
            self.transport.set_link_up(a, b)
        else:
            self.transport.set_link_down(a, b)

    def partition(self, groups) -> None:
        self.transport.partition(groups)

    def heal(self) -> None:
        self.transport.heal_partition()

    def shock_demand(self, nodes, factor: float) -> bool:
        apply_shock = getattr(self.demand, "apply_shock", None)
        if apply_shock is None:
            return False
        apply_shock(nodes, factor, at=self.runtime.now)
        return True

    def packet_fault(self, action, params, duration) -> bool:
        self.transport.apply_packet_fault(action, params, duration)
        return True

    def leave_node(self, node: int) -> None:
        if node == self.own_node:
            handler = self.transport.handler_for(node)
            if handler is not None:
                self._parked = handler
            self.transport.detach(node)
        self.transport.set_node_down(node)

    def join_node(self, node: int) -> None:
        if (
            node == self.own_node
            and self._parked is None
            and self.transport.handler_for(node) is None
        ):
            self.transport.attach(node, self.stack.on_message)
        self.recover_node(node)


async def _node_main(spec: NodeSpec) -> None:
    if not spec.hub_addresses:
        raise ValueError("NodeSpec.hub_addresses must list at least one hub")
    runtime = AsyncioRuntime(seed=spec.seed, time_scale=spec.time_scale)
    runtime.start()
    demand = ShockableDemand(spec.demand) if spec.has_shocks else spec.demand
    transport = TcpTransport(
        runtime,
        spec.topology,
        local_nodes=[spec.node],
        latency=spec.latency,
        loss=spec.loss,
        max_frame_bytes=spec.max_frame_bytes,
    )
    runtime.transport = transport
    address = await transport.serve(spec.host)

    stack = None
    injector: Optional[NodeProcInjector] = None
    push_task: Optional[asyncio.Task] = None
    # Mutable box so the update callback always writes to the *current*
    # hub connection, across failovers.
    writer_box: Dict[str, Optional[asyncio.StreamWriter]] = {"writer": None}
    # Recently reported (uid, stamp) pairs, replayed after a failover —
    # the hub's applied bookkeeping is idempotent so replays are safe.
    applied_log: collections.deque = collections.deque(
        maxlen=APPLIED_REPLAY_LIMIT
    )

    def on_new_updates(updates, source, sender) -> None:
        # Report arrivals to the hub with a cross-process-comparable
        # wall-clock stamp (no drain: frames are tiny, loop flushes).
        stamp = time.monotonic()
        pairs = [(u.uid, stamp) for u in updates]
        applied_log.extend(pairs)
        writer = writer_box["writer"]
        if writer is not None and not writer.is_closing():
            writer.write(encode_frame(("applied", spec.node, pairs)))

    async def push_packet_counters() -> None:
        # Stream packet-fault counters to whichever hub is current, but
        # only when they move — idle clusters push nothing.
        last = None
        while True:
            await asyncio.sleep(PACKET_PUSH_INTERVAL)
            counters = transport.counters
            counts = (
                counters.corrupt_frames_dropped,
                counters.duplicates_suppressed,
                counters.reorders_applied,
            )
            if counts == last:
                continue
            writer = writer_box["writer"]
            if writer is None or writer.is_closing():
                continue
            last = counts
            writer.write(
                encode_frame(
                    (
                        "packet",
                        spec.node,
                        {
                            "corrupt_frames_dropped": counts[0],
                            "duplicates_suppressed": counts[1],
                            "reorders_applied": counts[2],
                        },
                    )
                )
            )

    stop = False
    hub_index = 0
    backoff = HUB_RECONNECT_BASE
    last_contact = time.monotonic()
    try:
        while not stop:
            target = spec.hub_addresses[hub_index % len(spec.hub_addresses)]
            hub_index += 1
            try:
                reader, writer = await asyncio.open_connection(*target)
            except (ConnectionError, OSError):
                if time.monotonic() - last_contact > HUB_GIVE_UP_SECONDS:
                    break  # every hub gone for too long: orphaned child
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, HUB_RECONNECT_CAP)
                continue
            backoff = HUB_RECONNECT_BASE
            try:
                if spec.token is not None:
                    writer.write(encode_frame(("auth", spec.token)))
                writer.write(encode_frame(("register", spec.node, address)))
                if applied_log:
                    writer.write(
                        encode_frame(("applied", spec.node, list(applied_log)))
                    )
                await writer.drain()
                writer_box["writer"] = writer
                last_contact = time.monotonic()
                decoder = FrameDecoder(spec.max_frame_bytes)
                async for frame in read_frames(reader, decoder):
                    last_contact = time.monotonic()
                    kind = frame[0]
                    if kind == "directory":
                        transport.update_directory(frame[1])
                    elif kind == "start":
                        if stack is None:
                            tables = None
                            if (
                                spec.config.demand_knowledge
                                == KNOWLEDGE_ADVERTISED
                            ):
                                tables = bootstrap_tables(
                                    transport, demand, at_time=0.0
                                )
                            stack = build_node_stack(
                                runtime,
                                spec.topology,
                                demand,
                                spec.config,
                                spec.node,
                                tables=tables,
                                on_new_updates=on_new_updates,
                            )
                            transport.start_pumps()
                            stack.start()
                            injector = NodeProcInjector(
                                runtime, transport, demand, spec.node, stack
                            )
                            push_task = asyncio.ensure_future(
                                push_packet_counters()
                            )
                        # After a failover the new hub re-sends start:
                        # the stack is already live, just re-ack.
                        writer.write(encode_frame(("ready", spec.node)))
                        await writer.drain()
                    elif kind == "fault":
                        _, action, action_args = frame
                        if injector is not None:
                            apply_fault(
                                injector,
                                FaultEvent(0.0, action, tuple(action_args)),
                            )
                    elif kind == "call":
                        _, call_id, method, call_args = frame
                        reply = _handle_call(
                            spec, runtime, transport, stack, method, call_args
                        )
                        writer.write(encode_frame(("reply", call_id) + reply))
                        await writer.drain()
                    elif kind == "stop":
                        stop = True
                        break
            except (ConnectionError, OSError):
                pass  # this hub vanished: fail over to the next one
            finally:
                writer_box["writer"] = None
                writer.close()
            if not stop and time.monotonic() - last_contact > HUB_GIVE_UP_SECONDS:
                break
    finally:
        if push_task is not None:
            push_task.cancel()
        await transport.close()


def _handle_call(spec, runtime, transport, stack, method, args):
    """Dispatch one hub call; returns ``(ok, payload)``."""
    try:
        if stack is None:
            raise ReplicationError(f"node {spec.node} not started yet")
        if method == "put":
            if not transport.node_is_up(spec.node):
                raise ReplicationError(
                    f"node {spec.node} is down (injected fault)"
                )
            key, value = args
            update = stack.server.local_write(key, value)
            return True, (update, time.monotonic())
        if method == "read":
            if not transport.node_is_up(spec.node):
                raise ReplicationError(
                    f"node {spec.node} is down (injected fault)"
                )
            (key,) = args
            return True, stack.server.read(key)
        if method == "stats":
            stats = stack.anti_entropy.stats
            return True, {
                "sessions": {
                    name: getattr(stats, name)
                    for name in (
                        "initiated",
                        "completed_initiator",
                        "completed_responder",
                    )
                },
                "traffic": transport.counters.snapshot(),
                "handler_errors": len(transport.handler_errors),
            }
        raise ReplicationError(f"unknown cluster call {method!r}")
    except Exception as exc:  # noqa: BLE001 - serialized to the hub
        return False, f"{type(exc).__name__}: {exc}"


def node_process_main(spec: NodeSpec) -> None:
    """Child-process entry point (target of ``multiprocessing.Process``)."""
    asyncio.run(_node_main(spec))
