"""ReplicaCluster: serve live client traffic on the replication protocol.

An in-process cluster of replicas running the paper's protocol on the
wall-clock :class:`~repro.runtime.live.AsyncioRuntime`: one event loop
on a background thread hosts every node's protocol stack (assembled by
the very same :func:`repro.core.system.build_node_stack` the simulator
uses), and callers on any thread interact through a synchronous
client API::

    from repro.runtime import ReplicaCluster

    with ReplicaCluster(nodes=16, seed=1, time_scale=0.05) as cluster:
        update = cluster.put("greeting", "hello", node=0)
        cluster.wait_replicated(update.uid, timeout=10.0)
        print(cluster.get("greeting", node=7))   # 'hello', everywhere
        print(cluster.stats()["traffic"]["messages_sent"])

``put`` performs the client write at one replica and returns
immediately (weak consistency: the write propagates via fast-update
pushes and anti-entropy sessions); ``wait_replicated`` blocks until
every replica has absorbed it.  ``time_scale`` compresses protocol
time: 0.05 runs one session-time unit in 50 ms of wall clock.
"""

from __future__ import annotations

import collections
import concurrent.futures
import threading
from typing import Deque, Dict, List, Optional

from ..core.config import KNOWLEDGE_ADVERTISED, ProtocolConfig
from ..core.protocol import ReplicationNode
from ..core.system import build_node_stack
from ..core.variants import fast_consistency
from ..demand.advertisement import bootstrap_tables
from ..demand.base import DemandModel
from ..demand.static import UniformRandomDemand
from ..errors import ConfigurationError, ReplicationError
from ..replica.log import Update, UpdateId
from ..replica.server import ReplicaServer
from ..replica.store import StoreEntry
from ..sim.network import LatencyModel
from ..topology.graph import Topology
from .live import AsyncioRuntime, AsyncioTransport

#: Default wall-clock seconds per protocol time unit (20 units/second).
DEFAULT_TIME_SCALE = 0.05

#: Ceiling on cross-thread control calls (put/get/stats plumbing).
_CALL_TIMEOUT = 30.0

#: Default bound on per-update tracking state (see ``track_limit``).
DEFAULT_TRACK_LIMIT = 4096


class ReplicaCluster:
    """A live, queryable cluster of replicas over asyncio.

    Args:
        topology: Replica interconnection graph; default is a
            BRITE-style ``internet_like(nodes)`` graph.
        nodes: Node count used when no topology is given.
        config: Protocol variant (default: the paper's
            :func:`~repro.core.variants.fast_consistency`).
        demand: Demand model steering partner selection and pushes
            (default: ``UniformRandomDemand(seed=seed)``).
        seed: Master seed for the protocol's RNG streams.
        time_scale: Wall-clock seconds per protocol time unit.
        latency: Per-link latency model, in protocol units.
        loss: Message loss probability.
        track_limit: At most this many *fully replicated* updates keep
            their apply-time/latency records; older ones are evicted so
            a long-lived cluster's tracking state stays bounded
            (``wait_replicated`` on an evicted update still returns
            immediately for waiters already holding its event, but
            :meth:`apply_times` / :meth:`replication_latency` return
            empty/None for it).

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        *,
        nodes: int = 8,
        config: Optional[ProtocolConfig] = None,
        demand: Optional[DemandModel] = None,
        seed: int = 0,
        time_scale: float = DEFAULT_TIME_SCALE,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        track_limit: int = DEFAULT_TRACK_LIMIT,
    ):
        if track_limit < 1:
            raise ConfigurationError(
                f"track_limit must be >= 1, got {track_limit}"
            )
        if topology is None:
            from ..topology.brite import internet_like

            topology = internet_like(nodes, seed=seed)
        if topology.num_nodes == 0:
            raise ConfigurationError("topology has no nodes")
        if not topology.is_connected():
            raise ConfigurationError("cluster topology must be connected")
        self.topology = topology
        self.config = (config if config is not None else fast_consistency()).validate()
        self.demand = demand if demand is not None else UniformRandomDemand(seed=seed)
        self.seed = int(seed)
        self.loss = float(loss)
        self._latency = latency
        self.runtime = AsyncioRuntime(seed=seed, time_scale=time_scale)
        self.transport: Optional[AsyncioTransport] = None
        self.nodes: Dict[int, ReplicationNode] = {}
        self.servers: Dict[int, ReplicaServer] = {}

        self._n = topology.num_nodes
        self._lock = threading.Lock()
        self._track_limit = int(track_limit)
        self._apply_times: Dict[UpdateId, Dict[int, float]] = {}
        self._put_times: Dict[UpdateId, float] = {}
        self._replicated: Dict[UpdateId, threading.Event] = {}
        #: Fully replicated uids in completion order (eviction queue).
        self._completed_order: Deque[UpdateId] = collections.deque()
        #: Per-origin highest sequence number ever evicted; lets
        #: wait_replicated answer True for evicted updates without
        #: keeping per-uid state (bounded by the node count).
        self._evicted_seq: Dict[int, int] = {}
        self._completed_total = 0
        self._puts = 0
        self._gets = 0
        self._client_rng = self.runtime.rng.stream("cluster-client")

        self._thread: Optional[threading.Thread] = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ReplicaCluster":
        """Boot the event-loop thread and every replica; returns self."""
        if self._thread is not None:
            raise ReplicationError("cluster already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-cluster", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._boot_error is not None:
            self._thread.join()
            self._thread = None
            raise self._boot_error
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop the cluster and join the loop thread (idempotent).

        Client calls racing a concurrent ``close()`` fail with
        :class:`ReplicationError` instead of running on a dead loop.
        """
        with self._lock:
            already = self._closed or self._thread is None
            self._closed = True
        if already:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ReplicaCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _thread_main(self) -> None:
        import asyncio

        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        import asyncio

        try:
            self.runtime.start()
            self.transport = AsyncioTransport(
                self.runtime,
                self.topology,
                latency=self._latency,
                loss=self.loss,
            )
            self.runtime.transport = self.transport
            tables = None
            if self.config.demand_knowledge == KNOWLEDGE_ADVERTISED:
                tables = bootstrap_tables(self.transport, self.demand, at_time=0.0)
            for node in self.topology.nodes:
                stack = build_node_stack(
                    self.runtime,
                    self.topology,
                    self.demand,
                    self.config,
                    node,
                    tables=tables,
                    on_new_updates=(
                        lambda updates, source, sender, _node=node: (
                            self._record_applied(_node, updates)
                        )
                    ),
                )
                self.nodes[node] = stack
                self.servers[node] = stack.server
            self.transport.start_pumps()
            for stack in self.nodes.values():
                stack.start()
            self._stop_event = asyncio.Event()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._boot_error = exc
            if self.transport is not None:
                await self.transport.stop_pumps()
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.transport.stop_pumps()

    # -- replication tracking -------------------------------------------

    def _record_applied(self, node: int, updates: List[Update]) -> None:
        now = self.runtime.now
        with self._lock:
            for update in updates:
                times = self._apply_times.setdefault(update.uid, {})
                times.setdefault(node, now)
                if len(times) >= self._n:
                    event = self._replicated.setdefault(
                        update.uid, threading.Event()
                    )
                    if not event.is_set():
                        event.set()
                        self._completed_total += 1
                        self._completed_order.append(update.uid)
                        self._evict_locked()

    def _evict_locked(self) -> None:
        """Drop tracking state of the oldest fully replicated updates
        beyond ``track_limit`` (caller holds the lock).  Waiters that
        already hold the threading.Event keep their reference; only the
        cluster-side records go."""
        while len(self._completed_order) > self._track_limit:
            uid = self._completed_order.popleft()
            origin, seq = uid
            if seq > self._evicted_seq.get(origin, -1):
                self._evicted_seq[origin] = seq
            self._apply_times.pop(uid, None)
            self._put_times.pop(uid, None)
            self._replicated.pop(uid, None)

    def _event_for(self, uid: UpdateId) -> Optional[threading.Event]:
        """The completion event of ``uid``, or None if it was already
        fully replicated and evicted (no per-uid state remains)."""
        with self._lock:
            event = self._replicated.get(uid)
            if event is not None:
                return event
            if uid not in self._apply_times:
                # Never-tracked uid: either evicted after completing
                # (origin watermark covers it — every put applies at its
                # origin instantly, so any live update stays tracked) or
                # genuinely unknown.
                origin, seq = uid
                if seq <= self._evicted_seq.get(origin, -1):
                    return None
            return self._replicated.setdefault(uid, threading.Event())

    # -- cross-thread plumbing ------------------------------------------

    def _call(self, fn, *args):
        """Run ``fn(*args)`` on the loop thread; return its result.

        Raises :class:`ReplicationError` when the cluster is not (or no
        longer) running — including a concurrent :meth:`close` racing
        this call, in which case the pending call fails rather than
        executing on a stopped loop.
        """
        future: "concurrent.futures.Future" = concurrent.futures.Future()

        def runner() -> None:
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - re-raised at caller
                future.set_exception(exc)

        with self._lock:
            if self._thread is None or self._closed:
                raise ReplicationError(
                    "cluster is not running (start() it first)"
                )
            loop = self._loop
        try:
            loop.call_soon_threadsafe(runner)
        except RuntimeError as exc:  # loop already closed under us
            raise ReplicationError("cluster stopped during the call") from exc
        try:
            return future.result(timeout=_CALL_TIMEOUT)
        except concurrent.futures.TimeoutError as exc:
            raise ReplicationError(
                "cluster call timed out (cluster closing concurrently?)"
            ) from exc

    def _resolve_node(self, node: Optional[int]) -> int:
        if self._thread is None or self._closed:
            raise ReplicationError("cluster is not running (start() it first)")
        if node is None:
            return self._client_rng.choice(sorted(self.servers))
        if node not in self.servers:
            raise ReplicationError(f"unknown node {node}")
        return int(node)

    # -- client API -----------------------------------------------------

    def put(
        self,
        key: str,
        value: object,
        node: Optional[int] = None,
        wait: bool = False,
        timeout: Optional[float] = None,
    ) -> Update:
        """Client write at ``node`` (random replica when omitted).

        Returns once the write is applied locally; the cluster
        propagates it in the background (fast-update push first, then
        anti-entropy).  With ``wait=True``, block until every replica
        absorbed it (raises :class:`ReplicationError` on timeout).
        """
        target = self._resolve_node(node)

        def write() -> Update:
            t0 = self.runtime.now
            update = self.servers[target].local_write(key, value)
            with self._lock:
                self._put_times[update.uid] = t0
            return update

        update = self._call(write)
        with self._lock:
            self._puts += 1
        if wait and not self.wait_replicated(update.uid, timeout=timeout):
            raise ReplicationError(
                f"update {update.uid} not fully replicated within {timeout}s"
            )
        return update

    def get(self, key: str, node: Optional[int] = None) -> object:
        """Read ``key`` at one replica (weakly consistent: maybe stale)."""
        entry = self.read(key, node=node)
        return entry.value if entry is not None else None

    def read(self, key: str, node: Optional[int] = None) -> Optional[StoreEntry]:
        """Like :meth:`get` but returns the full store entry."""
        target = self._resolve_node(node)
        with self._lock:
            self._gets += 1
        return self._call(self.servers[target].read, key)

    def wait_replicated(
        self, uid: UpdateId, timeout: Optional[float] = None
    ) -> bool:
        """Block until ``uid`` reached every replica; False on timeout.

        An update that completed and was since evicted (see
        ``track_limit``) returns True immediately.
        """
        event = self._event_for(uid)
        if event is None:
            return True  # completed before being evicted
        return event.wait(timeout)

    def apply_times(self, uid: UpdateId) -> Dict[int, float]:
        """First-application time per node, in protocol units."""
        with self._lock:
            return dict(self._apply_times.get(uid, {}))

    def replication_latency(self, uid: UpdateId) -> Optional[float]:
        """Wall-clock seconds from ``put`` to the last replica's apply.

        None while the update has not reached every replica (or was
        never written through :meth:`put`).
        """
        with self._lock:
            times = self._apply_times.get(uid, {})
            t0 = self._put_times.get(uid)
            if t0 is None or len(times) < self._n:
                return None
            return (max(times.values()) - t0) * self.runtime.time_scale

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational counters: ops, replication coverage, traffic."""
        with self._lock:
            tracked = len(self._apply_times)
            replicated = self._completed_total
            puts, gets = self._puts, self._gets
        sessions: Dict[str, int] = {}
        for stack in self.nodes.values():
            stats = stack.anti_entropy.stats
            for name in ("initiated", "completed_initiator", "completed_responder"):
                sessions[name] = sessions.get(name, 0) + getattr(stats, name)
        out: Dict[str, object] = {
            "nodes": self._n,
            "variant": self.config.describe(),
            "time_scale": self.runtime.time_scale,
            "puts": puts,
            "gets": gets,
            "updates_tracked": tracked,
            "updates_fully_replicated": replicated,
            "sessions": sessions,
        }
        if self.transport is not None:
            out["traffic"] = self.transport.counters.snapshot()
            out["handler_errors"] = len(self.transport.handler_errors)
        if self._loop is not None and self._loop.is_running():
            out["uptime_units"] = self._call(lambda: self.runtime.now)
        return out
