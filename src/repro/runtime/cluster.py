"""ReplicaCluster: serve live client traffic on the replication protocol.

A cluster of replicas running the paper's protocol on the wall-clock
:class:`~repro.runtime.live.AsyncioRuntime`, in one of two transports:

* ``transport="queue"`` (default) — every node's protocol stack lives
  on one event loop on a background thread, exchanging messages through
  in-process asyncio queues;
* ``transport="tcp"`` — one OS process per node, each hosting its
  replica on a :class:`~repro.runtime.tcp.TcpTransport` over real
  sockets.  The parent runs a nameserver-style *hub*: node processes
  bind an ephemeral port, register it, receive the full directory, and
  start.  Client calls, fault actions, and replication reports travel
  as length-prefixed control frames.

Callers on any thread interact through a synchronous client API::

    from repro.runtime import ReplicaCluster

    with ReplicaCluster(nodes=16, seed=1, time_scale=0.05) as cluster:
        update = cluster.put("greeting", "hello", node=0)
        cluster.wait_replicated(update.uid, timeout=10.0)
        print(cluster.get("greeting", node=7))   # 'hello', everywhere
        print(cluster.stats()["traffic"]["messages_sent"])

``put`` performs the client write at one replica and returns
immediately (weak consistency: the write propagates via fast-update
pushes and anti-entropy sessions); ``wait_replicated`` blocks until
every replica has absorbed it.  ``time_scale`` compresses protocol
time: 0.05 runs one session-time unit in 50 ms of wall clock.

Chaos: the same declarative
:class:`~repro.faults.schedule.FaultSchedule` the simulator replays
runs against a live cluster — pass ``faults=schedule`` to arm it at
boot, or call :meth:`ReplicaCluster.inject_faults` on a running
cluster.  In queue mode a :class:`ClusterFaultInjector` drives the
in-process transport's link state; in tcp mode a
:class:`TcpBroadcastInjector` broadcasts each action to every node
process.  Packet-level actions (latency shocks, reordering,
duplication, frame corruption) ride the same port.  With
``control_port`` set (any mode), external clients — the ``repro
chaos`` CLI — can connect and inject schedules over a socket,
authenticated by a shared ``token`` when one is set.

The tcp hub itself is no single point of failure: ``standby_hubs``
extra listeners are bound at boot, node processes carry the full
ordered hub list, and :meth:`ReplicaCluster.kill_hub` (or a
``kill-hub`` control frame) takes the primary down mid-traffic as a
survivable, scheduled-fault-grade event.
"""

from __future__ import annotations

import collections
import concurrent.futures
import functools
import itertools
import threading
import time
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import KNOWLEDGE_ADVERTISED, ProtocolConfig
from ..core.protocol import ReplicationNode
from ..core.system import build_node_stack
from ..core.variants import fast_consistency
from ..demand.advertisement import bootstrap_tables
from ..demand.base import DemandModel
from ..demand.static import UniformRandomDemand
from ..errors import ConfigurationError, ReplicationError, ReproError
from ..faults.process import FaultReplayer, prepare_demand
from ..faults.schedule import (
    ACTION_DEMAND_SHOCK,
    ACTION_HEAL,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_LINK_DOWN,
    ACTION_LINK_UP,
    ACTION_NODE_DOWN,
    ACTION_NODE_UP,
    ACTION_PARTITION,
    FaultSchedule,
)
from ..replica.log import Update, UpdateId
from ..replica.server import ReplicaServer
from ..replica.store import StoreEntry
from ..sim.network import LatencyModel
from ..telemetry.registry import MetricRegistry
from ..topology.graph import Topology
from .base import FaultInjector
from .live import AsyncioRuntime, AsyncioTransport
from .nodeproc import NodeSpec, node_process_main
from .tcp import DEFAULT_MAX_FRAME_BYTES, FrameDecoder, encode_frame, read_frames

#: Default wall-clock seconds per protocol time unit (20 units/second).
DEFAULT_TIME_SCALE = 0.05

#: Ceiling on cross-thread control calls (put/get/stats plumbing).
_CALL_TIMEOUT = 30.0

#: Ceiling on tcp-mode boot (spawn + register + ready handshake).
_BOOT_TIMEOUT = 60.0

#: Default bound on per-update tracking state (see ``track_limit``).
DEFAULT_TRACK_LIMIT = 4096


class ClusterFaultInjector(FaultInjector):
    """Fault-injector over an in-process (queue-mode) cluster.

    Crash/link/partition actions mutate the shared
    :class:`~repro.runtime.linkstate.LinkState` of the cluster's
    :class:`~repro.runtime.live.AsyncioTransport`; shocks reach the
    demand model; churn parks and restores delivery handlers — the
    same semantics :class:`~repro.faults.process.SystemFaultInjector`
    gives the simulator.  All methods must run on the loop thread
    (:class:`~repro.faults.process.FaultReplayer` callbacks do).
    """

    def __init__(self, cluster: "ReplicaCluster"):
        self.cluster = cluster
        self._parked_handlers: Dict[int, object] = {}

    def crash_node(self, node: int) -> None:
        self.cluster.transport.set_node_down(node)

    def recover_node(self, node: int) -> None:
        transport = self.cluster.transport
        handler = self._parked_handlers.pop(node, None)
        if handler is not None:
            transport.attach(node, handler)
        transport.set_node_up(node)
        self.cluster._note_heal()

    def set_link(self, a: int, b: int, up: bool) -> None:
        transport = self.cluster.transport
        if up:
            transport.set_link_up(a, b)
            self.cluster._note_heal()
        else:
            transport.set_link_down(a, b)

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        self.cluster.transport.partition(groups)

    def heal(self) -> None:
        self.cluster.transport.heal_partition()
        self.cluster._note_heal()

    def shock_demand(self, nodes: Sequence[int], factor: float) -> bool:
        apply_shock = getattr(self.cluster.demand, "apply_shock", None)
        if apply_shock is None:
            return False
        apply_shock(nodes, factor, at=self.cluster.runtime.now)
        return True

    def packet_fault(self, action, params, duration) -> bool:
        self.cluster.transport.apply_packet_fault(action, params, duration)
        return True

    def leave_node(self, node: int) -> None:
        transport = self.cluster.transport
        handler = transport.handler_for(node)
        if handler is not None:
            self._parked_handlers[node] = handler
        transport.detach(node)
        transport.set_node_down(node)

    def join_node(self, node: int) -> None:
        if node not in self._parked_handlers:
            stack = self.cluster.nodes.get(node)
            if stack is not None and (
                self.cluster.transport.handler_for(node) is None
            ):
                self.cluster.transport.attach(node, stack.on_message)
        self.recover_node(node)


class TcpBroadcastInjector(FaultInjector):
    """Fault-injector over a tcp-mode cluster: broadcast every action.

    Each node process holds its own copy of the link state; broadcasting
    the action to all of them keeps sender-side refusals (crashed peer,
    failed link, partition boundary) consistent without shared memory.
    Must run on the hub's loop thread (it writes to the node control
    channels).
    """

    def __init__(self, cluster: "ReplicaCluster"):
        self.cluster = cluster

    def _broadcast(self, action: str, args: Tuple) -> None:
        frame = encode_frame(("fault", action, tuple(args)))
        for writer in self.cluster._node_writers.values():
            try:
                writer.write(frame)
            except (ConnectionError, OSError):
                pass  # a dead node process cannot be injured further

    def crash_node(self, node: int) -> None:
        self._broadcast(ACTION_NODE_DOWN, (int(node),))

    def recover_node(self, node: int) -> None:
        self._broadcast(ACTION_NODE_UP, (int(node),))
        self.cluster._note_heal()

    def set_link(self, a: int, b: int, up: bool) -> None:
        action = ACTION_LINK_UP if up else ACTION_LINK_DOWN
        self._broadcast(action, (int(a), int(b)))
        if up:
            self.cluster._note_heal()

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        frozen = tuple(tuple(int(n) for n in group) for group in groups)
        self._broadcast(ACTION_PARTITION, (frozen,))

    def heal(self) -> None:
        self._broadcast(ACTION_HEAL, ())
        self.cluster._note_heal()

    def shock_demand(self, nodes: Sequence[int], factor: float) -> bool:
        if not self.cluster._has_shocks:
            # The node processes built their demand unwrapped; the
            # shock cannot take effect anywhere.
            return False
        self._broadcast(
            ACTION_DEMAND_SHOCK,
            (tuple(int(n) for n in nodes), float(factor)),
        )
        return True

    def packet_fault(self, action, params, duration) -> bool:
        self._broadcast(
            action, tuple(float(p) for p in params) + (float(duration),)
        )
        return True

    def leave_node(self, node: int) -> None:
        self._broadcast(ACTION_LEAVE, (int(node),))

    def join_node(self, node: int) -> None:
        self._broadcast(ACTION_JOIN, (int(node),))


class ReplicaCluster:
    """A live, queryable cluster of replicas over asyncio.

    Args:
        topology: Replica interconnection graph; default is a
            BRITE-style ``internet_like(nodes)`` graph.
        nodes: Node count used when no topology is given.
        config: Protocol variant (default: the paper's
            :func:`~repro.core.variants.fast_consistency`).
        demand: Demand model steering partner selection and pushes
            (default: ``UniformRandomDemand(seed=seed)``).
        seed: Master seed for the protocol's RNG streams.
        time_scale: Wall-clock seconds per protocol time unit.
        latency: Per-link latency model, in protocol units.
        loss: Message loss probability.
        track_limit: At most this many *fully replicated* updates keep
            their apply-time/latency records; older ones are evicted so
            a long-lived cluster's tracking state stays bounded
            (``wait_replicated`` on an evicted update still returns
            immediately for waiters already holding its event, but
            :meth:`apply_times` / :meth:`replication_latency` return
            empty/None for it).
        transport: ``"queue"`` (in-process, default) or ``"tcp"``
            (one OS process per node over real sockets).
        faults: Optional :class:`FaultSchedule` armed at :meth:`start`
            (schedule time 0 = boot); also enables demand shocks.
        control_port: When set, a control socket accepting ``repro
            chaos`` clients is opened on this port (0 = ephemeral; the
            bound address is :attr:`control_address`).  tcp mode always
            opens one — it doubles as the node-process hub.
        host: Interface the hub/control socket (and tcp node ports)
            bind to.
        standby_hubs: tcp mode only — how many *standby* hub listeners
            to open beyond the primary (default 1, making the hub no
            single point of failure: nodes carry the full ordered hub
            list and fail over to a standby when their hub connection
            dies).  With an explicit ``control_port`` the standbys bind
            ``control_port + 1 .. control_port + standby_hubs``;
            ephemeral otherwise.  All bound hubs are listed in
            :attr:`hub_addresses` (primary first).  Ignored in queue
            mode.
        token: Shared control-plane secret.  When set, every control
            connection (chaos clients *and* node processes) must send
            an ``("auth", token)`` frame before anything else; other
            frames from unauthenticated connections are refused with a
            one-line ``("error", ...)`` reply.

    Use as a context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        *,
        nodes: int = 8,
        config: Optional[ProtocolConfig] = None,
        demand: Optional[DemandModel] = None,
        seed: int = 0,
        time_scale: float = DEFAULT_TIME_SCALE,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        track_limit: int = DEFAULT_TRACK_LIMIT,
        transport: str = "queue",
        faults: Optional[FaultSchedule] = None,
        control_port: Optional[int] = None,
        host: str = "127.0.0.1",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        standby_hubs: int = 1,
        token: Optional[str] = None,
    ):
        if standby_hubs < 0:
            raise ConfigurationError(
                f"standby_hubs must be >= 0, got {standby_hubs}"
            )
        if track_limit < 1:
            raise ConfigurationError(
                f"track_limit must be >= 1, got {track_limit}"
            )
        if transport not in ("queue", "tcp"):
            raise ConfigurationError(
                f"transport must be 'queue' or 'tcp', got {transport!r}"
            )
        if topology is None:
            from ..topology.brite import internet_like

            topology = internet_like(nodes, seed=seed)
        if topology.num_nodes == 0:
            raise ConfigurationError("topology has no nodes")
        if not topology.is_connected():
            raise ConfigurationError("cluster topology must be connected")
        self.topology = topology
        self.config = (config if config is not None else fast_consistency()).validate()
        self._mode = transport
        self._faults = faults.validate() if faults is not None else None
        self._has_shocks = (
            self._faults is not None and self._faults.has_demand_shocks()
        )
        base_demand = demand if demand is not None else UniformRandomDemand(seed=seed)
        #: The unwrapped model; tcp node processes wrap their own copy.
        self._base_demand = base_demand
        if self._mode == "queue":
            self.demand = prepare_demand(base_demand, self._faults)
        else:
            self.demand = base_demand
        self.seed = int(seed)
        self.loss = float(loss)
        self._latency = latency
        self.runtime = AsyncioRuntime(seed=seed, time_scale=time_scale)
        self.transport: Optional[AsyncioTransport] = None
        self.nodes: Dict[int, ReplicationNode] = {}
        self.servers: Dict[int, ReplicaServer] = {}

        self._n = topology.num_nodes
        self._node_ids: List[int] = sorted(int(n) for n in topology.nodes)
        self._node_set = set(self._node_ids)
        self._lock = threading.Lock()
        self._track_limit = int(track_limit)
        self._apply_times: Dict[UpdateId, Dict[int, float]] = {}
        self._put_times: Dict[UpdateId, float] = {}
        self._replicated: Dict[UpdateId, threading.Event] = {}
        #: Fully replicated uids in completion order (eviction queue).
        self._completed_order: Deque[UpdateId] = collections.deque()
        #: Per-origin highest sequence number ever evicted; lets
        #: wait_replicated answer True for evicted updates without
        #: keeping per-uid state (bounded by the node count).
        self._evicted_seq: Dict[int, int] = {}
        self._completed_total = 0
        self._puts = 0
        self._gets = 0
        self._client_rng = self.runtime.rng.stream("cluster-client")

        # -- telemetry ---------------------------------------------------
        #: Shared-schema metrics (see :mod:`repro.telemetry`): counters
        #: for ops, moments + sketch for put-to-replicated seconds.
        #: Guarded by ``self._lock`` like the rest of the tracking state.
        self.telemetry = MetricRegistry()
        self._latency_moments = self.telemetry.moments(
            "cluster.replication_latency", transport=transport
        )
        self._latency_sketch = self.telemetry.sketch(
            "cluster.replication_latency.sketch", transport=transport
        )
        self._puts_counter = self.telemetry.counter(
            "cluster.puts", transport=transport
        )
        self._gets_counter = self.telemetry.counter(
            "cluster.gets", transport=transport
        )
        self._replicated_counter = self.telemetry.counter(
            "cluster.updates_replicated", transport=transport
        )
        #: Packet-fault effect counters, synced into the registry at
        #: snapshot time: queue mode reads the in-process transport's
        #: traffic counters, tcp mode folds the per-node counts the
        #: node processes push as ``packet`` frames.
        self._packet_counters = {
            name: self.telemetry.counter(
                f"cluster.packet.{name}", transport=transport
            )
            for name in (
                "corrupt_frames_dropped",
                "duplicates_suppressed",
                "reorders_applied",
            )
        }
        self._packet_counts: Dict[int, Dict[str, int]] = {}
        #: time.monotonic() of the most recent healing fault action and
        #: of the most recent full replication — their difference is the
        #: post-heal convergence time a chaos report wants.
        self._last_heal_mono: Optional[float] = None
        self._last_completion_mono: Optional[float] = None

        self._thread: Optional[threading.Thread] = None
        self._loop = None
        self._stop_event = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None
        self._closed = False
        #: Cross-thread call futures still awaiting a result; a closing
        #: cluster fails them with ReplicationError instead of letting
        #: callers hang until the call timeout.
        self._pending_calls: Set["concurrent.futures.Future"] = set()

        # -- chaos state ------------------------------------------------
        self._injector: Optional[FaultInjector] = None
        self._replayers: List[FaultReplayer] = []

        # -- tcp-mode state ---------------------------------------------
        self._host = host
        self._control_port = control_port
        self._max_frame_bytes = int(max_frame_bytes)
        self._standby_hubs = int(standby_hubs)
        self._token = token
        self.control_address: Optional[Tuple[str, int]] = None
        #: All bound hub listener addresses, primary first; node specs
        #: carry this list so children can fail over.
        self.hub_addresses: List[Tuple[str, int]] = []
        #: Listener per hub slot; a killed hub leaves None in its slot.
        self._hub_servers: List[object] = []
        #: Accepted control connections per hub slot, so killing a hub
        #: severs established channels too, not just the listener.
        self._hub_conn_writers: Dict[int, Set[object]] = {}
        self._control_server = None
        self._control_tasks: Set[object] = set()
        self._control_errors: List[str] = []
        self._processes: Dict[int, object] = {}
        self._node_writers: Dict[int, object] = {}
        self._node_addresses: Dict[int, Tuple[str, int]] = {}
        self._ready_nodes: Set[int] = set()
        self._all_registered = None
        self._all_ready = None
        self._tcp_pending: Dict[int, "concurrent.futures.Future"] = {}
        self._call_counter = itertools.count(1)
        #: time.monotonic() at boot completion: the zero point used to
        #: convert cross-process apply stamps into protocol units.
        self._mono_anchor: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ReplicaCluster":
        """Boot the event-loop thread and every replica; returns self."""
        if self._thread is not None:
            raise ReplicationError("cluster already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-cluster", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._boot_error is not None:
            self._thread.join()
            self._thread = None
            self._reap_processes()
            raise self._boot_error
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop the cluster and join the loop thread (idempotent).

        Client calls racing a concurrent ``close()`` fail with
        :class:`ReplicationError` instead of running on a dead loop;
        calls already in flight when the loop stops are failed the same
        way rather than left hanging until their timeout.
        """
        with self._lock:
            already = self._closed or self._thread is None
            self._closed = True
        if already:
            return
        loop = self._loop
        if loop is not None and loop.is_running() and self._stop_event is not None:
            loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout)
        self._reap_processes()
        self._fail_pending_calls()

    def __enter__(self) -> "ReplicaCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _thread_main(self) -> None:
        import asyncio

        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        import asyncio

        try:
            self.runtime.start()
            if self._mode == "tcp":
                await self._boot_tcp()
            else:
                self._boot_queue()
                if self._control_port is not None:
                    await self._open_control_server(self._control_port)
            if self._faults is not None:
                self._arm_replayer(self._faults)
            self._stop_event = asyncio.Event()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._boot_error = exc
            await self._shutdown_runtime()
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self._shutdown_runtime()

    def _boot_queue(self) -> None:
        self.transport = AsyncioTransport(
            self.runtime,
            self.topology,
            latency=self._latency,
            loss=self.loss,
        )
        self.runtime.transport = self.transport
        tables = None
        if self.config.demand_knowledge == KNOWLEDGE_ADVERTISED:
            tables = bootstrap_tables(self.transport, self.demand, at_time=0.0)
        for node in self.topology.nodes:
            stack = build_node_stack(
                self.runtime,
                self.topology,
                self.demand,
                self.config,
                node,
                tables=tables,
                on_new_updates=(
                    lambda updates, source, sender, _node=node: (
                        self._record_applied(_node, updates)
                    )
                ),
            )
            self.nodes[node] = stack
            self.servers[node] = stack.server
        self.transport.start_pumps()
        for stack in self.nodes.values():
            stack.start()

    async def _boot_tcp(self) -> None:
        import asyncio
        import multiprocessing

        self._all_registered = asyncio.Event()
        self._all_ready = asyncio.Event()
        await self._open_control_server(self._control_port or 0)
        context = multiprocessing.get_context("spawn")
        for node in self._node_ids:
            spec = NodeSpec(
                node=node,
                topology=self.topology,
                demand=self._base_demand,
                config=self.config,
                seed=self.seed,
                time_scale=self.runtime.time_scale,
                hub_addresses=tuple(self.hub_addresses),
                latency=self._latency,
                loss=self.loss,
                has_shocks=self._has_shocks,
                max_frame_bytes=self._max_frame_bytes,
                host=self._host,
                token=self._token,
            )
            process = context.Process(
                target=node_process_main, args=(spec,), daemon=True
            )
            process.start()
            self._processes[node] = process
        try:
            await asyncio.wait_for(
                self._all_registered.wait(), timeout=_BOOT_TIMEOUT
            )
        except asyncio.TimeoutError:
            raise ReplicationError(
                f"tcp cluster boot timed out: "
                f"{len(self._node_addresses)}/{self._n} nodes registered"
            ) from None
        directory = dict(self._node_addresses)
        for writer in self._node_writers.values():
            writer.write(encode_frame(("directory", directory)))
            writer.write(encode_frame(("start",)))
            await writer.drain()
        try:
            await asyncio.wait_for(self._all_ready.wait(), timeout=_BOOT_TIMEOUT)
        except asyncio.TimeoutError:
            raise ReplicationError(
                f"tcp cluster boot timed out: "
                f"{len(self._ready_nodes)}/{self._n} nodes ready"
            ) from None
        self._mono_anchor = time.monotonic()

    async def _open_control_server(self, port: int) -> None:
        import asyncio

        self._control_server = await asyncio.start_server(
            functools.partial(self._on_control_connection, hub_index=0),
            self._host,
            port,
        )
        self._hub_servers = [self._control_server]
        sock_host, sock_port = self._control_server.sockets[0].getsockname()[:2]
        self.control_address = (sock_host, sock_port)
        self.hub_addresses = [self.control_address]
        if self._mode != "tcp":
            return
        for index in range(1, self._standby_hubs + 1):
            standby_port = port + index if port else 0
            server = await asyncio.start_server(
                functools.partial(self._on_control_connection, hub_index=index),
                self._host,
                standby_port,
            )
            self._hub_servers.append(server)
            s_host, s_port = server.sockets[0].getsockname()[:2]
            self.hub_addresses.append((s_host, s_port))

    async def _shutdown_runtime(self) -> None:
        # A closing cluster must not leave armed fault timers behind:
        # a replay cancelled mid-schedule would otherwise keep firing
        # callbacks into a half-torn-down runtime.
        for replayer in self._replayers:
            replayer.cancel()
        if self._mode == "tcp":
            for writer in self._node_writers.values():
                try:
                    writer.write(encode_frame(("stop",)))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
            for writer in self._node_writers.values():
                writer.close()
        for server in self._hub_servers:
            if server is None:
                continue
            server.close()
            await server.wait_closed()
        self._hub_servers = []
        self._control_server = None
        if self._control_tasks:
            import asyncio

            for task in list(self._control_tasks):
                task.cancel()
            await asyncio.gather(*self._control_tasks, return_exceptions=True)
            self._control_tasks.clear()
        if self.transport is not None:
            await self.transport.stop_pumps()

    def _reap_processes(self, timeout: float = 5.0) -> None:
        for process in self._processes.values():
            process.join(timeout)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        self._processes.clear()

    def _fail_pending_calls(self) -> None:
        with self._lock:
            pending = list(self._pending_calls)
            self._pending_calls.clear()
        for future in pending:
            if not future.done():
                try:
                    future.set_exception(
                        ReplicationError(
                            "cluster closed while the call was in flight"
                        )
                    )
                except concurrent.futures.InvalidStateError:
                    pass  # the loop resolved it in the same instant

    # -- control-frame hub (tcp node processes + chaos clients) ----------

    async def _on_control_connection(self, reader, writer, hub_index: int = 0) -> None:
        import asyncio

        task = asyncio.current_task()
        self._control_tasks.add(task)
        self._hub_conn_writers.setdefault(hub_index, set()).add(writer)
        # Per-connection auth state: token-less clusters are born
        # authenticated, otherwise the first frame must be the token.
        conn = {"authed": self._token is None}
        decoder = FrameDecoder(self._max_frame_bytes)
        try:
            async for frame in read_frames(reader, decoder):
                await self._on_control_frame(frame, writer, conn)
        except ReproError as exc:
            self._control_errors.append(str(exc))
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._control_tasks.discard(task)
            self._hub_conn_writers.get(hub_index, set()).discard(writer)
            writer.close()

    async def _on_control_frame(
        self, frame: object, writer, conn: Optional[Dict[str, bool]] = None
    ) -> None:
        if not (isinstance(frame, tuple) and frame):
            self._control_errors.append(f"unrecognised frame: {frame!r:.120}")
            return
        kind = frame[0]
        if conn is not None and not conn["authed"]:
            if kind == "auth" and len(frame) == 2 and frame[1] == self._token:
                conn["authed"] = True
            else:
                self._control_errors.append(
                    f"refused unauthenticated {kind!r} frame"
                )
                writer.write(
                    encode_frame(
                        (
                            "error",
                            "unauthenticated: send ('auth', <token>) first",
                        )
                    )
                )
                await writer.drain()
            return
        if kind == "auth":
            return  # re-auth on an authenticated connection is a no-op
        if kind == "register":
            _, node, address = frame
            node = int(node)
            rejoining = node in self._node_addresses
            self._node_writers[node] = writer
            self._node_addresses[node] = (str(address[0]), int(address[1]))
            if rejoining and self._mono_anchor is not None:
                # Failover re-register on a running cluster: hand the
                # node the current directory and re-send start (the
                # node's stack survives, so this just re-acks ready).
                writer.write(
                    encode_frame(("directory", dict(self._node_addresses)))
                )
                writer.write(encode_frame(("start",)))
                await writer.drain()
                self._note_heal()
            if (
                len(self._node_addresses) >= self._n
                and self._all_registered is not None
            ):
                self._all_registered.set()
        elif kind == "ready":
            self._ready_nodes.add(int(frame[1]))
            if len(self._ready_nodes) >= self._n and self._all_ready is not None:
                self._all_ready.set()
        elif kind == "applied":
            _, node, pairs = frame
            node = int(node)
            with self._lock:
                for uid, stamp in pairs:
                    self._note_applied_locked(uid, node, self._units(stamp))
        elif kind == "packet":
            _, node, counts = frame
            with self._lock:
                self._packet_counts[int(node)] = {
                    str(k): int(v) for k, v in counts.items()
                }
        elif kind == "reply":
            _, call_id, ok, payload = frame
            future = self._tcp_pending.pop(call_id, None)
            if future is not None and not future.done():
                try:
                    future.set_result((ok, payload))
                except concurrent.futures.InvalidStateError:
                    pass
        elif kind == "chaos":
            schedule = frame[1]
            try:
                replayer = self._arm_replayer(schedule)
            except ReproError as exc:
                writer.write(encode_frame(("chaos-error", str(exc))))
            else:
                writer.write(
                    encode_frame(
                        (
                            "chaos-ack",
                            {"events": replayer.total, "name": schedule.name},
                        )
                    )
                )
            await writer.drain()
        elif kind == "topology?":
            writer.write(encode_frame(("topology", self.topology)))
            await writer.drain()
        elif kind == "hubs?":
            writer.write(encode_frame(("hubs", list(self.hub_addresses))))
            await writer.drain()
        elif kind == "kill-hub":
            # Ack *before* killing: the requester may well be talking
            # to the very hub it is about to take down.
            try:
                self._check_kill_hub()
            except ReproError as exc:
                writer.write(encode_frame(("kill-hub-error", str(exc))))
                await writer.drain()
            else:
                writer.write(
                    encode_frame(("kill-hub-ack", self.hub_addresses[0]))
                )
                await writer.drain()
                self._kill_hub_on_loop()
        elif kind == "status?":
            writer.write(encode_frame(("status", self._status())))
            await writer.drain()
        elif kind == "metrics?":
            writer.write(encode_frame(("metrics", self.telemetry_snapshot())))
            await writer.drain()
        else:
            self._control_errors.append(f"unrecognised frame kind {kind!r}")

    def _units(self, stamp: float) -> float:
        """A cross-process ``time.monotonic()`` stamp in protocol units."""
        anchor = self._mono_anchor if self._mono_anchor is not None else 0.0
        return (stamp - anchor) / self.runtime.time_scale

    def _post_heal_seconds_locked(self) -> Optional[float]:
        """Wall seconds from the last healing fault action to the last
        full replication — the convergence time a chaos report wants.
        None before any heal, or while nothing converged since it."""
        if self._last_heal_mono is None or self._last_completion_mono is None:
            return None
        delta = self._last_completion_mono - self._last_heal_mono
        return delta if delta >= 0 else None

    def _note_heal(self) -> None:
        with self._lock:
            self._last_heal_mono = time.monotonic()

    def _sync_packet_counters_locked(self) -> None:
        """Fold packet-fault effects into the registry (lock held).

        Queue mode reads the shared transport's traffic counters; tcp
        mode sums the latest per-node counts pushed by the processes.
        """
        if self._mode == "tcp":
            for name, counter in self._packet_counters.items():
                counter.value = sum(
                    counts.get(name, 0)
                    for counts in self._packet_counts.values()
                )
        elif self.transport is not None:
            counters = self.transport.counters
            for name, counter in self._packet_counters.items():
                counter.value = getattr(counters, name)

    def _status(self) -> Dict[str, object]:
        with self._lock:
            self._sync_packet_counters_locked()
            status: Dict[str, object] = {
                "nodes": self._n,
                "transport": self._mode,
                "time_scale": self.runtime.time_scale,
                "puts": self._puts,
                "updates_tracked": len(self._apply_times),
                "updates_fully_replicated": self._completed_total,
                "post_heal_seconds": self._post_heal_seconds_locked(),
                "telemetry": self.telemetry.snapshot(),
            }
        status["chaos"] = self.chaos_status()
        return status

    # -- chaos ----------------------------------------------------------

    def _make_injector(self) -> FaultInjector:
        if self._injector is None:
            if self._mode == "tcp":
                self._injector = TcpBroadcastInjector(self)
            else:
                self._injector = ClusterFaultInjector(self)
        return self._injector

    def _arm_replayer(self, schedule: FaultSchedule) -> FaultReplayer:
        """Arm a wall-clock replay *on the loop thread* (schedule t=0 is now)."""
        schedule.validate()
        replayer = FaultReplayer(self.runtime, self._make_injector(), schedule)
        self._replayers.append(replayer)
        return replayer

    def inject_faults(self, schedule: FaultSchedule) -> FaultReplayer:
        """Replay ``schedule`` against the running cluster on wall clock.

        Schedule time 0 maps to the moment of injection; event times are
        protocol units, scaled by the cluster's ``time_scale`` — the
        very same :class:`FaultSchedule` object a simulation replays.
        Returns the armed :class:`FaultReplayer` (its ``applied`` /
        ``skipped`` / ``done`` reflect live progress).
        """
        schedule.validate()
        return self._call(self._arm_replayer, schedule)

    def chaos_status(self) -> Optional[Dict[str, object]]:
        """Progress of the most recent fault replay (None before any)."""
        if not self._replayers:
            return None
        replayer = self._replayers[-1]
        return {
            "schedule": replayer.schedule.name,
            "applied": replayer.applied,
            "skipped": len(replayer.skipped),
            "total": replayer.total,
            "done": replayer.done,
        }

    def _check_kill_hub(self) -> None:
        if self._mode != "tcp":
            raise ReplicationError("kill_hub is a tcp-mode fault")
        if len(self._hub_servers) < 2 or all(
            s is None for s in self._hub_servers[1:]
        ):
            raise ReplicationError(
                "no standby hub to fail over to (standby_hubs=0 or all dead)"
            )
        if self._hub_servers[0] is None:
            raise ReplicationError("primary hub is already dead")

    def _kill_hub_on_loop(self) -> None:
        """Take the primary hub down mid-run (loop thread only).

        Closes the primary listener *and* every control connection it
        accepted — node processes lose their hub channel and must fail
        over to a standby.  In-flight replication traffic rides the
        peer-to-peer connections and is untouched.
        """
        self._check_kill_hub()
        server = self._hub_servers[0]
        self._hub_servers[0] = None
        server.close()
        for conn_writer in list(self._hub_conn_writers.get(0, ())):
            try:
                conn_writer.close()
            except (ConnectionError, OSError):
                pass
        # Stale node channels must not swallow new control calls: drop
        # writers that just died so _tcp_call fails fast until the node
        # re-registers on a standby.
        for node, node_writer in list(self._node_writers.items()):
            if node_writer.is_closing():
                del self._node_writers[node]

    def kill_hub(self) -> None:
        """Kill the primary hub listener while the cluster serves.

        A scheduled-fault-grade event: replicas reconnect to a standby
        hub (see ``standby_hubs``) with exponential backoff, re-register
        and replay their recent ``applied`` reports; client calls during
        the failover window fail fast with :class:`ReplicationError`
        instead of hanging.  Raises when there is no standby to absorb
        the failover.
        """
        self._call(self._kill_hub_on_loop)

    # -- replication tracking -------------------------------------------

    def _record_applied(self, node: int, updates: List[Update]) -> None:
        now = self.runtime.now
        with self._lock:
            for update in updates:
                self._note_applied_locked(update.uid, node, now)

    def _note_applied_locked(self, uid: UpdateId, node: int, t: float) -> None:
        times = self._apply_times.setdefault(uid, {})
        times.setdefault(node, t)
        if len(times) >= self._n:
            event = self._replicated.setdefault(uid, threading.Event())
            if not event.is_set():
                event.set()
                self._completed_total += 1
                self._completed_order.append(uid)
                self._last_completion_mono = time.monotonic()
                self._replicated_counter.inc()
                t0 = self._put_times.get(uid)
                if t0 is not None:
                    # Fold the latency *at completion*, before eviction
                    # can drop the put stamp: the telemetry keeps the
                    # full latency distribution even when the per-uid
                    # records are long gone.
                    seconds = (max(times.values()) - t0) * self.runtime.time_scale
                    self._latency_moments.add(seconds)
                    self._latency_sketch.add(seconds)
                self._evict_locked()

    def _evict_locked(self) -> None:
        """Drop tracking state of the oldest fully replicated updates
        beyond ``track_limit`` (caller holds the lock).  Waiters that
        already hold the threading.Event keep their reference; only the
        cluster-side records go."""
        while len(self._completed_order) > self._track_limit:
            uid = self._completed_order.popleft()
            origin, seq = uid
            if seq > self._evicted_seq.get(origin, -1):
                self._evicted_seq[origin] = seq
            self._apply_times.pop(uid, None)
            self._put_times.pop(uid, None)
            self._replicated.pop(uid, None)

    def _event_for(self, uid: UpdateId) -> Optional[threading.Event]:
        """The completion event of ``uid``, or None if it was already
        fully replicated and evicted (no per-uid state remains)."""
        with self._lock:
            event = self._replicated.get(uid)
            if event is not None:
                return event
            if uid not in self._apply_times:
                # Never-tracked uid: either evicted after completing
                # (origin watermark covers it — every put applies at its
                # origin instantly, so any live update stays tracked) or
                # genuinely unknown.
                origin, seq = uid
                if seq <= self._evicted_seq.get(origin, -1):
                    return None
            return self._replicated.setdefault(uid, threading.Event())

    # -- cross-thread plumbing ------------------------------------------

    def _register_pending(self) -> "concurrent.futures.Future":
        """New call future, tracked so close() can fail it cleanly."""
        future: "concurrent.futures.Future" = concurrent.futures.Future()
        with self._lock:
            if self._thread is None or self._closed:
                raise ReplicationError(
                    "cluster is not running (start() it first)"
                )
            self._pending_calls.add(future)
        future.add_done_callback(self._discard_pending)
        return future

    def _discard_pending(self, future) -> None:
        with self._lock:
            self._pending_calls.discard(future)

    def _call(self, fn, *args):
        """Run ``fn(*args)`` on the loop thread; return its result.

        Raises :class:`ReplicationError` when the cluster is not (or no
        longer) running — including a concurrent :meth:`close` racing
        this call, in which case the pending call fails rather than
        executing on a stopped loop or hanging until the call timeout.
        """
        future = self._register_pending()

        def runner() -> None:
            if future.done():
                return  # already failed by a concurrent close()
            try:
                result = fn(*args)
            except BaseException as exc:  # noqa: BLE001 - re-raised at caller
                try:
                    future.set_exception(exc)
                except concurrent.futures.InvalidStateError:
                    pass
            else:
                try:
                    future.set_result(result)
                except concurrent.futures.InvalidStateError:
                    pass

        try:
            self._loop.call_soon_threadsafe(runner)
        except RuntimeError as exc:  # loop already closed under us
            raise ReplicationError("cluster stopped during the call") from exc
        try:
            return future.result(timeout=_CALL_TIMEOUT)
        except concurrent.futures.TimeoutError as exc:
            raise ReplicationError(
                "cluster call timed out (cluster closing concurrently?)"
            ) from exc

    def _tcp_call(self, node: int, method: str, args: Tuple):
        """Round-trip one control call to ``node``'s process."""
        future = self._register_pending()
        call_id = next(self._call_counter)

        def dispatch() -> None:
            if future.done():
                return
            writer = self._node_writers.get(node)
            if writer is None or writer.is_closing():
                # No live channel (process dead, or hub failover in
                # progress): fail fast instead of hanging to timeout.
                try:
                    future.set_exception(
                        ReplicationError(
                            f"node {node} has no live control channel "
                            "(process dead or hub failover in progress)"
                        )
                    )
                except concurrent.futures.InvalidStateError:
                    pass
                return
            self._tcp_pending[call_id] = future
            writer.write(encode_frame(("call", call_id, method, tuple(args))))

        try:
            self._loop.call_soon_threadsafe(dispatch)
        except RuntimeError as exc:
            raise ReplicationError("cluster stopped during the call") from exc
        try:
            ok, payload = future.result(timeout=_CALL_TIMEOUT)
        except concurrent.futures.TimeoutError as exc:
            raise ReplicationError(
                f"call to node {node} timed out after {_CALL_TIMEOUT}s"
            ) from exc
        finally:
            loop = self._loop
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(
                    lambda: self._tcp_pending.pop(call_id, None)
                )
        if not ok:
            raise ReplicationError(str(payload))
        return payload

    def _resolve_node(self, node: Optional[int]) -> int:
        if self._thread is None or self._closed:
            raise ReplicationError("cluster is not running (start() it first)")
        if node is None:
            return self._client_rng.choice(self._node_ids)
        if int(node) not in self._node_set:
            raise ReplicationError(f"unknown node {node}")
        return int(node)

    @property
    def node_ids(self) -> List[int]:
        """All replica node ids, sorted (valid targets for put/read)."""
        return list(self._node_ids)

    # -- client API -----------------------------------------------------

    def put(
        self,
        key: str,
        value: object,
        node: Optional[int] = None,
        wait: bool = False,
        timeout: Optional[float] = None,
    ) -> Update:
        """Client write at ``node`` (random replica when omitted).

        Returns once the write is applied locally; the cluster
        propagates it in the background (fast-update push first, then
        anti-entropy).  With ``wait=True``, block until every replica
        absorbed it (raises :class:`ReplicationError` on timeout).
        A write addressed to a node currently crashed by an injected
        fault fails with a clean :class:`ReplicationError`.
        """
        target = self._resolve_node(node)

        if self._mode == "tcp":
            update, stamp = self._tcp_call(target, "put", (key, value))
            with self._lock:
                self._put_times[update.uid] = self._units(stamp)
                self._puts += 1
                self._puts_counter.inc()
        else:

            def write() -> Update:
                transport = self.transport
                if transport.link_state.active and not transport.node_is_up(
                    target
                ):
                    raise ReplicationError(
                        f"node {target} is down (injected fault)"
                    )
                t0 = self.runtime.now
                result = self.servers[target].local_write(key, value)
                with self._lock:
                    self._put_times[result.uid] = t0
                return result

            update = self._call(write)
            with self._lock:
                self._puts += 1
                self._puts_counter.inc()
        if wait and not self.wait_replicated(update.uid, timeout=timeout):
            raise ReplicationError(
                f"update {update.uid} not fully replicated within {timeout}s"
            )
        return update

    def get(self, key: str, node: Optional[int] = None) -> object:
        """Read ``key`` at one replica (weakly consistent: maybe stale)."""
        entry = self.read(key, node=node)
        return entry.value if entry is not None else None

    def read(self, key: str, node: Optional[int] = None) -> Optional[StoreEntry]:
        """Like :meth:`get` but returns the full store entry."""
        target = self._resolve_node(node)
        with self._lock:
            self._gets += 1
            self._gets_counter.inc()
        if self._mode == "tcp":
            return self._tcp_call(target, "read", (key,))

        def reader() -> Optional[StoreEntry]:
            transport = self.transport
            if transport.link_state.active and not transport.node_is_up(target):
                raise ReplicationError(f"node {target} is down (injected fault)")
            return self.servers[target].read(key)

        return self._call(reader)

    def wait_replicated(
        self, uid: UpdateId, timeout: Optional[float] = None
    ) -> bool:
        """Block until ``uid`` reached every replica; False on timeout.

        An update that completed and was since evicted (see
        ``track_limit``) returns True immediately.
        """
        event = self._event_for(uid)
        if event is None:
            return True  # completed before being evicted
        return event.wait(timeout)

    def apply_times(self, uid: UpdateId) -> Dict[int, float]:
        """First-application time per node, in protocol units."""
        with self._lock:
            return dict(self._apply_times.get(uid, {}))

    def replication_latency(self, uid: UpdateId) -> Optional[float]:
        """Wall-clock seconds from ``put`` to the last replica's apply.

        None while the update has not reached every replica (or was
        never written through :meth:`put`).
        """
        with self._lock:
            times = self._apply_times.get(uid, {})
            t0 = self._put_times.get(uid)
            if t0 is None or len(times) < self._n:
                return None
            return (max(times.values()) - t0) * self.runtime.time_scale

    # -- introspection --------------------------------------------------

    def telemetry_snapshot(self) -> Dict[str, object]:
        """The registry's JSON snapshot, taken under the cluster lock.

        Safe to call from any thread while the cluster serves; this is
        what the periodic metrics emitter and the control socket's
        ``metrics?`` frame read.
        """
        with self._lock:
            self._sync_packet_counters_locked()
            return self.telemetry.snapshot()

    def emit_metrics(self, emitter, **context: object) -> Dict[str, object]:
        """Emit one snapshot line through ``emitter`` under the lock.

        The :class:`~repro.telemetry.emitter.SnapshotEmitter` itself is
        lock-free; serialising the emit here keeps the snapshot
        consistent with concurrent folds on the loop thread.
        """
        with self._lock:
            self._sync_packet_counters_locked()
            return emitter.emit(**context)

    def replication_latency_quantile(self, p: float) -> Optional[float]:
        """Streaming quantile of put-to-replicated seconds (None while
        no put has fully replicated)."""
        with self._lock:
            if not self._latency_sketch.count:
                return None
            return self._latency_sketch.quantile(p)

    def stats(self) -> Dict[str, object]:
        """Operational counters: ops, replication coverage, traffic."""
        with self._lock:
            tracked = len(self._apply_times)
            replicated = self._completed_total
            puts, gets = self._puts, self._gets
            self._sync_packet_counters_locked()
            telemetry = self.telemetry.snapshot()
            post_heal = self._post_heal_seconds_locked()
        out: Dict[str, object] = {
            "nodes": self._n,
            "variant": self.config.describe(),
            "transport": self._mode,
            "time_scale": self.runtime.time_scale,
            "puts": puts,
            "gets": gets,
            "updates_tracked": tracked,
            "updates_fully_replicated": replicated,
            "post_heal_seconds": post_heal,
            "telemetry": telemetry,
        }
        chaos = self.chaos_status()
        if chaos is not None:
            out["chaos"] = chaos
        if self._mode == "tcp":
            sessions: Dict[str, int] = {}
            traffic: Optional[Dict[str, object]] = None
            handler_errors = 0
            for node in self._node_ids:
                payload = self._tcp_call(node, "stats", ())
                for name, count in payload["sessions"].items():
                    sessions[name] = sessions.get(name, 0) + count
                snapshot = payload["traffic"]
                if traffic is None:
                    traffic = dict(snapshot)
                else:
                    for name, value in snapshot.items():
                        if isinstance(value, dict):
                            merged = dict(traffic.get(name, {}))
                            for k, v in value.items():
                                merged[k] = merged.get(k, 0) + v
                            traffic[name] = merged
                        else:
                            traffic[name] = traffic.get(name, 0) + value
                handler_errors += payload["handler_errors"]
            out["sessions"] = sessions
            out["traffic"] = traffic
            out["handler_errors"] = handler_errors
        else:
            sessions = {}
            for stack in self.nodes.values():
                stats = stack.anti_entropy.stats
                for name in (
                    "initiated",
                    "completed_initiator",
                    "completed_responder",
                ):
                    sessions[name] = sessions.get(name, 0) + getattr(stats, name)
            out["sessions"] = sessions
            if self.transport is not None:
                out["traffic"] = self.transport.counters.snapshot()
                out["handler_errors"] = len(self.transport.handler_errors)
        if self._loop is not None and self._loop.is_running():
            out["uptime_units"] = self._call(lambda: self.runtime.now)
        return out
