"""Declarative fault schedules.

A :class:`FaultSchedule` is a timed list of :class:`FaultEvent` records
— node crashes and recoveries, link flaps, network partitions and heals,
demand shocks, churn joins/leaves, and windowed packet-level faults
(latency shocks, reordering, duplication, frame corruption). Like the
rest of the experiment
pipeline it is **data, not behaviour**: every field is a plain number,
string or tuple, so schedules pickle across process boundaries, compare
by value, and can be rebuilt deterministically from registry names plus
seeds (see :mod:`repro.faults.generators` and the ``FAULTS`` registry in
:mod:`repro.experiments.scenarios`).

Replaying a schedule inside a live simulation is the job of
:class:`repro.faults.process.FaultProcess`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import FaultError

#: Actions a fault event may carry, with their argument arity contract.
ACTION_NODE_DOWN = "node_down"  # (node,)
ACTION_NODE_UP = "node_up"  # (node,)
ACTION_LINK_DOWN = "link_down"  # (a, b)
ACTION_LINK_UP = "link_up"  # (a, b)
ACTION_PARTITION = "partition"  # (groups,) — tuple of node tuples
ACTION_HEAL = "heal"  # ()
ACTION_DEMAND_SHOCK = "demand_shock"  # (nodes, factor)
ACTION_LEAVE = "leave"  # (node,) — churn: crash + detach handler
ACTION_JOIN = "join"  # (node,) — churn: re-attach + recover
ACTION_LATENCY_SHOCK = "latency_shock"  # (factor, duration)
ACTION_PACKET_REORDER = "packet_reorder"  # (probability, window, duration)
ACTION_PACKET_DUPLICATE = "packet_duplicate"  # (probability, duration)
ACTION_CORRUPT_FRAME = "corrupt_frame"  # (probability, duration)

#: Packet-level disturbances: windowed (self-expiring) channel faults.
PACKET_ACTIONS = frozenset(
    {
        ACTION_LATENCY_SHOCK,
        ACTION_PACKET_REORDER,
        ACTION_PACKET_DUPLICATE,
        ACTION_CORRUPT_FRAME,
    }
)

#: All known actions, for validation.
ACTIONS = frozenset(
    {
        ACTION_NODE_DOWN,
        ACTION_NODE_UP,
        ACTION_LINK_DOWN,
        ACTION_LINK_UP,
        ACTION_PARTITION,
        ACTION_HEAL,
        ACTION_DEMAND_SHOCK,
        ACTION_LEAVE,
        ACTION_JOIN,
    }
    | PACKET_ACTIONS
)

#: Actions that make a node unreachable / reachable again.
_DOWN_ACTIONS = frozenset({ACTION_NODE_DOWN, ACTION_LEAVE})
_UP_ACTIONS = frozenset({ACTION_NODE_UP, ACTION_JOIN})


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault action.

    Attributes:
        time: Simulated time at which the action applies.
        action: One of the ``ACTION_*`` constants.
        args: Action-specific arguments (plain numbers / nested tuples
            only, so the event stays picklable and hashable).
    """

    time: float
    action: str
    args: Tuple = ()

    def validate(self) -> "FaultEvent":
        if self.time < 0:
            raise FaultError(f"fault event time {self.time} < 0")
        if self.action not in ACTIONS:
            raise FaultError(
                f"unknown fault action {self.action!r}; known: {sorted(ACTIONS)}"
            )
        arity = {
            ACTION_NODE_DOWN: 1,
            ACTION_NODE_UP: 1,
            ACTION_LEAVE: 1,
            ACTION_JOIN: 1,
            ACTION_LINK_DOWN: 2,
            ACTION_LINK_UP: 2,
            ACTION_PARTITION: 1,
            ACTION_HEAL: 0,
            ACTION_DEMAND_SHOCK: 2,
            ACTION_LATENCY_SHOCK: 2,
            ACTION_PACKET_REORDER: 3,
            ACTION_PACKET_DUPLICATE: 2,
            ACTION_CORRUPT_FRAME: 2,
        }[self.action]
        if len(self.args) != arity:
            raise FaultError(
                f"{self.action} takes {arity} argument(s), got {self.args!r}"
            )
        if self.action == ACTION_PARTITION:
            groups = self.args[0]
            if not groups or any(not group for group in groups):
                raise FaultError(f"partition groups must be non-empty: {groups!r}")
        if self.action == ACTION_DEMAND_SHOCK:
            nodes, factor = self.args
            if not nodes:
                raise FaultError("demand_shock needs at least one node")
            if factor < 0:
                raise FaultError(f"demand_shock factor must be >= 0, got {factor}")
        if self.action in PACKET_ACTIONS:
            duration = self.args[-1]
            if duration <= 0:
                raise FaultError(
                    f"{self.action} duration must be > 0, got {duration}"
                )
            if self.action == ACTION_LATENCY_SHOCK:
                factor = self.args[0]
                if factor <= 0:
                    raise FaultError(
                        f"latency_shock factor must be > 0, got {factor}"
                    )
            else:
                probability = self.args[0]
                if not 0.0 <= probability <= 1.0:
                    raise FaultError(
                        f"{self.action} probability must be in [0, 1], "
                        f"got {probability}"
                    )
            if self.action == ACTION_PACKET_REORDER and self.args[1] <= 0:
                raise FaultError(
                    f"packet_reorder window must be > 0, got {self.args[1]}"
                )
        return self


# -- event constructors (the readable way to hand-roll schedules) ---------


def node_down(time: float, node: int) -> FaultEvent:
    """Crash ``node`` at ``time``."""
    return FaultEvent(float(time), ACTION_NODE_DOWN, (int(node),))


def node_up(time: float, node: int) -> FaultEvent:
    """Recover a crashed ``node`` at ``time``."""
    return FaultEvent(float(time), ACTION_NODE_UP, (int(node),))


def link_down(time: float, a: int, b: int) -> FaultEvent:
    """Fail the ``a``-``b`` link (both directions) at ``time``."""
    return FaultEvent(float(time), ACTION_LINK_DOWN, (int(a), int(b)))


def link_up(time: float, a: int, b: int) -> FaultEvent:
    """Restore the ``a``-``b`` link at ``time``."""
    return FaultEvent(float(time), ACTION_LINK_UP, (int(a), int(b)))


def partition(time: float, groups: Iterable[Iterable[int]]) -> FaultEvent:
    """Split the network into ``groups`` at ``time``."""
    frozen = tuple(tuple(int(n) for n in group) for group in groups)
    return FaultEvent(float(time), ACTION_PARTITION, (frozen,))


def heal(time: float) -> FaultEvent:
    """Remove any active partition at ``time``."""
    return FaultEvent(float(time), ACTION_HEAL, ())


def demand_shock(time: float, nodes: Iterable[int], factor: float) -> FaultEvent:
    """Multiply the true demand of ``nodes`` by ``factor`` from ``time`` on."""
    return FaultEvent(
        float(time),
        ACTION_DEMAND_SHOCK,
        (tuple(sorted(int(n) for n in nodes)), float(factor)),
    )


def leave(time: float, node: int) -> FaultEvent:
    """Churn out: ``node`` crashes and detaches its handler at ``time``."""
    return FaultEvent(float(time), ACTION_LEAVE, (int(node),))


def join(time: float, node: int) -> FaultEvent:
    """Churn in: ``node`` re-attaches and recovers at ``time``."""
    return FaultEvent(float(time), ACTION_JOIN, (int(node),))


def latency_shock(time: float, factor: float, duration: float) -> FaultEvent:
    """Multiply every message delay by ``factor`` for ``duration`` units."""
    return FaultEvent(
        float(time), ACTION_LATENCY_SHOCK, (float(factor), float(duration))
    )


def packet_reorder(
    time: float, probability: float, window: float, duration: float
) -> FaultEvent:
    """Delay each message by up to ``window`` extra units with ``probability``.

    Delivery order within the window becomes arbitrary — the classic
    reordering regime the protocol must tolerate on WAN paths.
    """
    return FaultEvent(
        float(time),
        ACTION_PACKET_REORDER,
        (float(probability), float(window), float(duration)),
    )


def packet_duplicate(time: float, probability: float, duration: float) -> FaultEvent:
    """Duplicate each message with ``probability`` for ``duration`` units.

    Duplicates are suppressed (and metered) at the receiving transport,
    modelling at-least-once delivery over a deduplicating channel.
    """
    return FaultEvent(
        float(time),
        ACTION_PACKET_DUPLICATE,
        (float(probability), float(duration)),
    )


def corrupt_frame(time: float, probability: float, duration: float) -> FaultEvent:
    """Corrupt each message in flight with ``probability`` for ``duration``.

    A corrupted message is dropped (and metered) by the receiver — over
    TCP it arrives as a garbage frame the decoder must skip, never a
    crash of the receive pump.
    """
    return FaultEvent(
        float(time),
        ACTION_CORRUPT_FRAME,
        (float(probability), float(duration)),
    )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted sequence of fault events.

    Attributes:
        events: The events; stored sorted by (time, insertion order) so
            two schedules built from the same events compare equal.
        name: Optional label (the registry key for generated schedules).
    """

    events: Tuple[FaultEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: e.time)
        )  # stable: same-time events keep insertion order
        object.__setattr__(self, "events", ordered)

    def validate(self) -> "FaultSchedule":
        """Validate every event; raises :class:`FaultError` on the first bad one."""
        for event in self.events:
            event.validate()
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        """Merge two schedules (events re-sorted by time)."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        name = self.name if self.name == other.name else (
            "+".join(n for n in (self.name, other.name) if n)
        )
        return FaultSchedule(events=self.events + other.events, name=name)

    # -- structure queries (used by metrics and the replay process) -------

    @property
    def duration(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def actions(self, *names: str) -> Tuple[FaultEvent, ...]:
        """All events whose action is one of ``names``, in time order."""
        wanted = set(names)
        return tuple(e for e in self.events if e.action in wanted)

    def has_demand_shocks(self) -> bool:
        return any(e.action == ACTION_DEMAND_SHOCK for e in self.events)

    def has_packet_faults(self) -> bool:
        return any(e.action in PACKET_ACTIONS for e in self.events)

    def last_packet_window_end(self) -> Optional[float]:
        """Latest ``time + duration`` over packet-fault events, if any.

        Benches use this to know when the channel is clean again —
        packet windows expire by time rather than via paired up events.
        """
        ends = [
            e.time + e.args[-1] for e in self.events if e.action in PACKET_ACTIONS
        ]
        return max(ends) if ends else None

    def partition_windows(self) -> List[Tuple[float, Optional[float]]]:
        """``(partition_time, heal_time)`` pairs, in order.

        A partition still active at the end of the schedule yields a
        ``None`` heal time. Re-partitioning while already split starts a
        new window (the network keeps only the latest assignment).
        """
        windows: List[Tuple[float, Optional[float]]] = []
        open_at: Optional[float] = None
        for event in self.events:
            if event.action == ACTION_PARTITION:
                if open_at is not None:
                    windows.append((open_at, event.time))
                open_at = event.time
            elif event.action == ACTION_HEAL and open_at is not None:
                windows.append((open_at, event.time))
                open_at = None
        if open_at is not None:
            windows.append((open_at, None))
        return windows

    def last_heal_time(self) -> Optional[float]:
        """Heal time of the last fully-healed partition window, if any."""
        healed = [end for _, end in self.partition_windows() if end is not None]
        return healed[-1] if healed else None

    def last_shock_time(self) -> Optional[float]:
        """Time of the last demand shock, if any.

        Metrics that want the fully-shocked demand surface (e.g. the
        post-shock hot-set ranking in ``run_trial``) evaluate demand at
        this instant.
        """
        shocks = self.actions(ACTION_DEMAND_SHOCK)
        return shocks[-1].time if shocks else None

    def down_intervals(self) -> Dict[int, List[Tuple[float, Optional[float]]]]:
        """Per node: ``(down_at, up_at)`` intervals from crash/leave events.

        An interval still open at the end of the schedule has a ``None``
        recovery time. Duplicate downs (already down) extend nothing.
        """
        intervals: Dict[int, List[Tuple[float, Optional[float]]]] = {}
        open_at: Dict[int, float] = {}
        for event in self.events:
            if event.action in _DOWN_ACTIONS:
                node = event.args[0]
                open_at.setdefault(node, event.time)
            elif event.action in _UP_ACTIONS:
                node = event.args[0]
                start = open_at.pop(node, None)
                if start is not None:
                    intervals.setdefault(node, []).append((start, event.time))
        for node, start in open_at.items():
            intervals.setdefault(node, []).append((start, None))
        return intervals

    def affected_nodes(self) -> Tuple[int, ...]:
        """Sorted node ids any crash/churn event touches."""
        nodes = set()
        for event in self.events:
            if event.action in _DOWN_ACTIONS | _UP_ACTIONS:
                nodes.add(event.args[0])
        return tuple(sorted(nodes))

    def always_recovers(self) -> bool:
        """True when every crash/leave and partition is eventually undone.

        Generators used in convergence experiments must satisfy this —
        a node that never comes back makes full replication impossible.
        """
        if any(end is None for _, end in self.partition_windows()):
            return False
        for intervals in self.down_intervals().values():
            if any(end is None for _, end in intervals):
                return False
        return True
