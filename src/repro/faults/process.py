"""Replaying a fault schedule against any execution world.

The declarative events of a :class:`~repro.faults.schedule.FaultSchedule`
become calls on the :class:`~repro.runtime.base.FaultInjector` port —
crash/recover, link flaps, partitions, demand shocks, churn — so the
*same* schedule replays against the discrete-event simulator, an
in-process asyncio cluster, or a multi-process TCP cluster:

* :func:`apply_fault` maps one :class:`FaultEvent` to injector calls
  (the single dispatch every replayer shares);
* :class:`SystemFaultInjector` adapts a simulated
  :class:`~repro.core.system.ReplicationSystem` (network + demand) to
  the port — the pre-port ``FaultProcess`` behaviour, bit-identical;
* :class:`FaultProcess` replays in *virtual* time: events are scheduled
  at construction with a priority that beats ordinary protocol events,
  so a fault takes effect at its timestamp — before any message
  delivery or session timer due at the same instant — keeping replays
  deterministic across execution backends;
* :class:`FaultReplayer` replays on *wall-clock* time against a live
  injector (the runtime's ``time_scale`` maps protocol units to
  seconds), anchored at the moment the replay is armed.

Demand shocks need a mutable hook into the otherwise-static demand
model: :class:`ShockableDemand` wraps any
:class:`~repro.demand.base.DemandModel` with time-aware multipliers.
The wrapper must be in place *before* the system is built (demand views
capture the model reference at construction), which is what
:func:`prepare_demand` is for — the harness and ``build_system`` call it
when a schedule carries shocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..demand.base import DemandModel
from ..errors import FaultError
from ..runtime.base import FaultInjector
from .schedule import (
    ACTION_DEMAND_SHOCK,
    ACTION_HEAL,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_LINK_DOWN,
    ACTION_LINK_UP,
    ACTION_NODE_DOWN,
    ACTION_NODE_UP,
    ACTION_PARTITION,
    PACKET_ACTIONS,
    FaultEvent,
    FaultSchedule,
)

#: Same-time ordering: faults apply before protocol events (lower wins).
FAULT_PRIORITY = -100


class ShockableDemand(DemandModel):
    """Wrap a demand model with time-aware multiplicative shocks.

    ``demand(node, time)`` is the inner model's value times the factors
    of every shock applied at or before ``time`` that covers ``node`` —
    so queries about the pre-shock past stay unshocked and replaying the
    same schedule always yields the same demand surface.
    """

    def __init__(self, inner: DemandModel):
        self.inner = inner
        self._shocks: List[Tuple[float, frozenset, float]] = []

    def apply_shock(self, nodes: Iterable[int], factor: float, at: float) -> None:
        """Multiply ``nodes``' demand by ``factor`` from time ``at`` on."""
        if factor < 0:
            raise FaultError(f"shock factor must be >= 0, got {factor}")
        self._shocks.append((float(at), frozenset(int(n) for n in nodes), factor))

    def demand(self, node: int, time: float) -> float:
        value = self.inner.demand(node, time)
        node = int(node)
        for at, nodes, factor in self._shocks:
            if at <= time and node in nodes:
                value *= factor
        return value


def prepare_demand(
    demand: DemandModel, schedule: Optional[FaultSchedule]
) -> DemandModel:
    """Wrap ``demand`` for shock injection when ``schedule`` needs it.

    Must run before the :class:`ReplicationSystem` is constructed:
    demand views and advertisers capture the model reference at build
    time, so a later swap would leave them reading the unwrapped model.
    """
    if schedule is not None and schedule.has_demand_shocks():
        return ShockableDemand(demand)
    return demand


class SystemFaultInjector(FaultInjector):
    """Fault-injector adapter over a simulated :class:`ReplicationSystem`.

    Crash/link/partition actions mutate the system's
    :class:`~repro.sim.network.Network`; shocks reach the demand model;
    churn parks and restores delivery handlers so a re-joined node
    receives messages exactly as before it left.
    """

    def __init__(self, system):
        self.system = system
        self._parked_handlers: Dict[int, object] = {}

    def crash_node(self, node: int) -> None:
        self.system.network.set_node_down(node)

    def recover_node(self, node: int) -> None:
        """Bring a crashed node back, restoring any handler a leave parked.

        ``node_up`` after ``leave`` must re-attach too — the schedule
        data model pairs any down action with any up action
        (:meth:`FaultSchedule.down_intervals`), so recovery semantics
        cannot depend on which up action closed the interval. A node
        that was only ``node_down`` keeps whatever handler is attached.
        """
        network = self.system.network
        handler = self._parked_handlers.pop(node, None)
        if handler is not None:
            network.attach(node, handler)
        network.set_node_up(node)

    def set_link(self, a: int, b: int, up: bool) -> None:
        if up:
            self.system.network.set_link_up(a, b)
        else:
            self.system.network.set_link_down(a, b)

    def partition(self, groups: Sequence[Sequence[int]]) -> None:
        self.system.network.partition(groups)

    def heal(self) -> None:
        self.system.network.heal_partition()

    def shock_demand(self, nodes: Sequence[int], factor: float) -> bool:
        demand = self.system.demand
        apply_shock = getattr(demand, "apply_shock", None)
        if apply_shock is None:
            return False
        apply_shock(nodes, factor, at=self.system.runtime.now)
        return True

    def packet_fault(
        self, action: str, params: Sequence[float], duration: float
    ) -> bool:
        self.system.network.apply_packet_fault(action, params, duration)
        return True

    def leave_node(self, node: int) -> None:
        """Churn out: crash the node and park its delivery handler."""
        network = self.system.network
        handler = network.handler_for(node)
        if handler is not None:
            self._parked_handlers[node] = handler
        network.detach(node)
        network.set_node_down(node)

    def join_node(self, node: int) -> None:
        """Churn in: restore the handler (parked or the node's own) and recover."""
        if node not in self._parked_handlers:
            replication_node = self.system.nodes.get(node)
            if replication_node is not None and (
                self.system.network.handler_for(node) is None
            ):
                self.system.network.attach(node, replication_node.on_message)
        self.recover_node(node)


def apply_fault(injector: FaultInjector, event: FaultEvent) -> bool:
    """Apply one fault event through the injector port.

    Returns False when the event could not take effect (a demand shock
    against a non-shockable deployment, or a packet-level fault against
    an injector that cannot express packet faults); replayers record
    such events as skipped, mirroring the pre-port semantics.
    """
    action, args = event.action, event.args
    if action == ACTION_NODE_DOWN:
        injector.crash_node(args[0])
    elif action == ACTION_NODE_UP:
        injector.recover_node(args[0])
    elif action == ACTION_LINK_DOWN:
        injector.set_link(args[0], args[1], up=False)
    elif action == ACTION_LINK_UP:
        injector.set_link(args[0], args[1], up=True)
    elif action == ACTION_PARTITION:
        injector.partition(args[0])
    elif action == ACTION_HEAL:
        injector.heal()
    elif action == ACTION_LEAVE:
        injector.leave_node(args[0])
    elif action == ACTION_JOIN:
        injector.join_node(args[0])
    elif action == ACTION_DEMAND_SHOCK:
        return injector.shock_demand(args[0], args[1])
    elif action in PACKET_ACTIONS:
        # Duration rides last in every packet action's args.
        return injector.packet_fault(action, args[:-1], args[-1])
    return True


class FaultProcess:
    """Schedules and applies every event of a schedule in virtual time.

    Args:
        system: The live simulated system whose network/demand the
            faults hit (adapted via :class:`SystemFaultInjector`).
        schedule: The (validated) declarative schedule to replay.

    Attributes:
        stats: action name -> how many events of it were applied.
        skipped: events that could not be applied (e.g. a demand shock
            against a system built without :func:`prepare_demand`).
    """

    def __init__(self, system, schedule: FaultSchedule):
        schedule.validate()
        self.system = system
        self.schedule = schedule
        self.injector = SystemFaultInjector(system)
        self.stats: Dict[str, int] = {}
        self.skipped: List[FaultEvent] = []
        runtime = system.runtime
        for event in schedule.events:
            if event.time < runtime.now:
                raise FaultError(
                    f"fault at t={event.time} is in the past (now={runtime.now})"
                )
            runtime.schedule_at(
                event.time,
                self._apply,
                event,
                priority=FAULT_PRIORITY,
                label=f"fault.{event.action}",
            )

    def _apply(self, event: FaultEvent) -> None:
        trace = self.system.runtime.trace
        if not apply_fault(self.injector, event):
            self.skipped.append(event)
            if trace.wants("fault.skipped"):
                trace.record(
                    self.system.runtime.now, "fault.skipped", action=event.action
                )
            return
        self.stats[event.action] = self.stats.get(event.action, 0) + 1
        if trace.wants("fault.apply"):
            trace.record(
                self.system.runtime.now,
                "fault.apply",
                action=event.action,
                args=event.args,
            )


class FaultReplayer:
    """Replays a schedule on wall-clock time against a live injector.

    Each event is scheduled on the runtime's clock at ``anchor +
    event.time`` protocol units (the runtime's ``time_scale`` maps
    units to seconds), so the same :class:`FaultSchedule` that injures
    a simulation injures a live cluster at the same protocol times.

    Must be constructed on the runtime's event-loop thread (it calls
    ``runtime.schedule_at``); :meth:`ReplicaCluster.inject_faults`
    does that plumbing for cluster users.

    Args:
        runtime: Clock (and tracer) the replay is scheduled on.
        injector: Where the fault actions land.
        schedule: The (validated) schedule to replay.
        anchor: Protocol time that schedule time 0 maps to; defaults to
            ``runtime.now`` — i.e. the schedule starts *now*.

    Attributes:
        stats: action name -> how many events of it were applied.
        skipped: events that could not be applied.
        applied: total events applied so far (skipped ones excluded).
    """

    def __init__(
        self,
        runtime,
        injector: FaultInjector,
        schedule: FaultSchedule,
        anchor: Optional[float] = None,
    ):
        schedule.validate()
        self.runtime = runtime
        self.injector = injector
        self.schedule = schedule
        self.anchor = runtime.now if anchor is None else float(anchor)
        self.stats: Dict[str, int] = {}
        self.skipped: List[FaultEvent] = []
        self.applied = 0
        self._handles = [
            runtime.schedule_at(
                self.anchor + event.time,
                self._apply,
                event,
                priority=FAULT_PRIORITY,
                label=f"fault.{event.action}",
            )
            for event in schedule.events
        ]

    @property
    def total(self) -> int:
        """Number of events the replay will eventually attempt."""
        return len(self.schedule.events)

    @property
    def done(self) -> bool:
        """True once every event has been applied or skipped."""
        return self.applied + len(self.skipped) >= self.total

    def cancel(self) -> int:
        """Cancel all not-yet-fired events; returns how many were pending."""
        cancelled = 0
        for handle in self._handles:
            if self.runtime.cancel(handle):
                cancelled += 1
        return cancelled

    def _apply(self, event: FaultEvent) -> None:
        trace = self.runtime.trace
        if not apply_fault(self.injector, event):
            self.skipped.append(event)
            if trace.wants("fault.skipped"):
                trace.record(
                    self.runtime.now, "fault.skipped", action=event.action
                )
            return
        self.applied += 1
        self.stats[event.action] = self.stats.get(event.action, 0) + 1
        if trace.wants("fault.apply"):
            trace.record(
                self.runtime.now,
                "fault.apply",
                action=event.action,
                args=event.args,
            )
