"""Replaying a fault schedule inside a live simulation.

:class:`FaultProcess` turns the declarative events of a
:class:`~repro.faults.schedule.FaultSchedule` into calls on a running
:class:`~repro.core.system.ReplicationSystem`'s network (crash/recover,
link flaps, partitions) and demand model (shocks). Events are scheduled
at construction time with a priority that beats ordinary protocol
events, so a fault takes effect *at* its timestamp — before any message
delivery or session timer due at the same instant — which keeps replays
deterministic and bit-identical across execution backends.

Demand shocks need a mutable hook into the otherwise-static demand
model: :class:`ShockableDemand` wraps any
:class:`~repro.demand.base.DemandModel` with time-aware multipliers.
The wrapper must be in place *before* the system is built (demand views
capture the model reference at construction), which is what
:func:`prepare_demand` is for — the harness and ``build_system`` call it
when a schedule carries shocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..demand.base import DemandModel
from ..errors import FaultError
from .schedule import (
    ACTION_DEMAND_SHOCK,
    ACTION_HEAL,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_LINK_DOWN,
    ACTION_LINK_UP,
    ACTION_NODE_DOWN,
    ACTION_NODE_UP,
    ACTION_PARTITION,
    FaultEvent,
    FaultSchedule,
)

#: Same-time ordering: faults apply before protocol events (lower wins).
FAULT_PRIORITY = -100


class ShockableDemand(DemandModel):
    """Wrap a demand model with time-aware multiplicative shocks.

    ``demand(node, time)`` is the inner model's value times the factors
    of every shock applied at or before ``time`` that covers ``node`` —
    so queries about the pre-shock past stay unshocked and replaying the
    same schedule always yields the same demand surface.
    """

    def __init__(self, inner: DemandModel):
        self.inner = inner
        self._shocks: List[Tuple[float, frozenset, float]] = []

    def apply_shock(self, nodes: Iterable[int], factor: float, at: float) -> None:
        """Multiply ``nodes``' demand by ``factor`` from time ``at`` on."""
        if factor < 0:
            raise FaultError(f"shock factor must be >= 0, got {factor}")
        self._shocks.append((float(at), frozenset(int(n) for n in nodes), factor))

    def demand(self, node: int, time: float) -> float:
        value = self.inner.demand(node, time)
        node = int(node)
        for at, nodes, factor in self._shocks:
            if at <= time and node in nodes:
                value *= factor
        return value


def prepare_demand(
    demand: DemandModel, schedule: Optional[FaultSchedule]
) -> DemandModel:
    """Wrap ``demand`` for shock injection when ``schedule`` needs it.

    Must run before the :class:`ReplicationSystem` is constructed:
    demand views and advertisers capture the model reference at build
    time, so a later swap would leave them reading the unwrapped model.
    """
    if schedule is not None and schedule.has_demand_shocks():
        return ShockableDemand(demand)
    return demand


class FaultProcess:
    """Schedules and applies every event of a fault schedule.

    Args:
        system: The live system whose network/demand the faults hit.
        schedule: The (validated) declarative schedule to replay.

    Attributes:
        stats: action name -> how many events of it were applied.
        skipped: events that could not be applied (e.g. a demand shock
            against a system built without :func:`prepare_demand`).
    """

    def __init__(self, system, schedule: FaultSchedule):
        schedule.validate()
        self.system = system
        self.schedule = schedule
        self.stats: Dict[str, int] = {}
        self.skipped: List[FaultEvent] = []
        self._parked_handlers: Dict[int, object] = {}
        sim = system.sim
        for event in schedule.events:
            if event.time < sim.now:
                raise FaultError(
                    f"fault at t={event.time} is in the past (now={sim.now})"
                )
            sim.schedule_at(
                event.time,
                self._apply,
                event,
                priority=FAULT_PRIORITY,
                label=f"fault.{event.action}",
            )

    # -- event application ------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        network = self.system.network
        action, args = event.action, event.args
        if action == ACTION_NODE_DOWN:
            network.set_node_down(args[0])
        elif action == ACTION_NODE_UP:
            self._recover(args[0])
        elif action == ACTION_LINK_DOWN:
            network.set_link_down(args[0], args[1])
        elif action == ACTION_LINK_UP:
            network.set_link_up(args[0], args[1])
        elif action == ACTION_PARTITION:
            network.partition(args[0])
        elif action == ACTION_HEAL:
            network.heal_partition()
        elif action == ACTION_LEAVE:
            self._leave(args[0])
        elif action == ACTION_JOIN:
            self._join(args[0])
        elif action == ACTION_DEMAND_SHOCK:
            if not self._shock(args[0], args[1]):
                self.skipped.append(event)
                self.system.sim.trace.record(
                    self.system.sim.now, "fault.skipped", action=action
                )
                return
        self.stats[action] = self.stats.get(action, 0) + 1
        self.system.sim.trace.record(
            self.system.sim.now, "fault.apply", action=action, args=args
        )

    def _leave(self, node: int) -> None:
        """Churn out: crash the node and park its delivery handler."""
        network = self.system.network
        handler = network.handler_for(node)
        if handler is not None:
            self._parked_handlers[node] = handler
        network.detach(node)
        network.set_node_down(node)

    def _recover(self, node: int) -> None:
        """Bring a crashed node back, restoring any handler a leave parked.

        ``node_up`` after ``leave`` must re-attach too — the schedule
        data model pairs any down action with any up action
        (:meth:`FaultSchedule.down_intervals`), so recovery semantics
        cannot depend on which up action closed the interval. A node
        that was only ``node_down`` keeps whatever handler is attached.
        """
        network = self.system.network
        handler = self._parked_handlers.pop(node, None)
        if handler is not None:
            network.attach(node, handler)
        network.set_node_up(node)

    def _join(self, node: int) -> None:
        """Churn in: restore the handler (parked or the node's own) and recover."""
        if node not in self._parked_handlers:
            replication_node = self.system.nodes.get(node)
            if replication_node is not None and (
                self.system.network.handler_for(node) is None
            ):
                self.system.network.attach(node, replication_node.on_message)
        self._recover(node)

    def _shock(self, nodes: Tuple[int, ...], factor: float) -> bool:
        demand = self.system.demand
        apply_shock = getattr(demand, "apply_shock", None)
        if apply_shock is None:
            return False
        apply_shock(nodes, factor, at=self.system.sim.now)
        return True
