"""Fault & churn scenario subsystem.

The paper motivates demand-driven replication with unreliable wide-area
networks; this package makes that unreliability a first-class,
sweepable experiment axis:

* :mod:`repro.faults.schedule` — declarative, picklable
  :class:`FaultSchedule` / :class:`FaultEvent` data (node crashes, link
  flaps, partitions, demand shocks, churn) plus constructor helpers.
* :mod:`repro.faults.generators` — seeded schedule generators
  (:func:`poisson_churn`, :func:`flapping_links`, :func:`split_brain`,
  :func:`demand_shock_storm`, :func:`rolling_restart`, and the
  packet-level :func:`lossy_wan` / :func:`corrupt_storm`), pure
  functions of ``(topology, seed)`` like the demand registry's builders.
* :mod:`repro.faults.process` — replay over the
  :class:`~repro.runtime.base.FaultInjector` port:
  :class:`FaultProcess` (virtual time, deterministic),
  :class:`FaultReplayer` (wall clock, for live clusters),
  :class:`SystemFaultInjector` / :func:`apply_fault`, and
  :class:`ShockableDemand` / :func:`prepare_demand` for demand shocks.

Registry names (``"split_brain"``, ``"poisson_churn"``, ...) live in
:data:`repro.experiments.scenarios.FAULTS`; ``repro sweep --faults``
and :class:`~repro.experiments.plan.ExperimentPlan` sweep them across
execution backends bit-identically.
"""

from .generators import (
    corrupt_storm,
    demand_shock_storm,
    flapping_links,
    lossy_wan,
    poisson_churn,
    rolling_restart,
    split_brain,
)
from .process import (
    FAULT_PRIORITY,
    FaultProcess,
    FaultReplayer,
    ShockableDemand,
    SystemFaultInjector,
    apply_fault,
    prepare_demand,
)
from .schedule import (
    ACTIONS,
    PACKET_ACTIONS,
    FaultEvent,
    FaultSchedule,
    corrupt_frame,
    demand_shock,
    heal,
    join,
    latency_shock,
    leave,
    link_down,
    link_up,
    node_down,
    node_up,
    packet_duplicate,
    packet_reorder,
    partition,
)

__all__ = [
    "ACTIONS",
    "FAULT_PRIORITY",
    "PACKET_ACTIONS",
    "FaultEvent",
    "FaultProcess",
    "FaultReplayer",
    "FaultSchedule",
    "ShockableDemand",
    "SystemFaultInjector",
    "apply_fault",
    "corrupt_frame",
    "corrupt_storm",
    "demand_shock",
    "demand_shock_storm",
    "flapping_links",
    "heal",
    "join",
    "latency_shock",
    "leave",
    "link_down",
    "link_up",
    "lossy_wan",
    "node_down",
    "node_up",
    "packet_duplicate",
    "packet_reorder",
    "partition",
    "poisson_churn",
    "prepare_demand",
    "rolling_restart",
    "split_brain",
]
