"""Seeded fault-schedule generators.

Each generator is a pure function of ``(topology, seed, parameters)``
returning a :class:`~repro.faults.schedule.FaultSchedule` — the same
contract the demand registry uses for its builders, and for the same
reason: the experiment pipeline rebuilds schedules from registry names
and derived seeds inside worker processes, so the same ``(topology,
seed)`` must always produce the same schedule or serial and parallel
runs would diverge.

All generators keep the system *recoverable*: every crash is paired
with a recovery and every partition with a heal, so convergence
experiments still have a well-defined completion time (asserted by
:meth:`FaultSchedule.always_recovers` in tests).
"""

from __future__ import annotations

import random
from typing import List

from ..errors import FaultError
from .schedule import (
    FaultEvent,
    FaultSchedule,
    corrupt_frame,
    demand_shock,
    heal,
    join,
    latency_shock,
    leave,
    link_down,
    link_up,
    node_down,
    node_up,
    packet_duplicate,
    packet_reorder,
    partition,
)


def _nodes_of(topology) -> List[int]:
    nodes = sorted(int(n) for n in topology.nodes)
    if not nodes:
        raise FaultError("cannot generate faults for an empty topology")
    return nodes


def poisson_churn(
    topology,
    seed: int,
    rate: float = 0.08,
    mean_downtime: float = 3.0,
    horizon: float = 30.0,
    max_concurrent_fraction: float = 0.34,
) -> FaultSchedule:
    """Memoryless node churn: leaves arrive Poisson, downtimes exponential.

    Crash arrivals form a Poisson process of ``rate`` events per session
    time over ``[0, horizon)``; each picks a currently-up node uniformly
    and takes it down (``leave``) for an Exp(``mean_downtime``) period
    (``join``), truncated so every node is back before
    ``horizon + 3 * mean_downtime``. At most
    ``max_concurrent_fraction`` of the nodes are down at once, so the
    network never empties out.
    """
    if rate < 0:
        raise FaultError(f"churn rate must be >= 0, got {rate}")
    if mean_downtime <= 0:
        raise FaultError(f"mean_downtime must be > 0, got {mean_downtime}")
    if horizon <= 0:
        raise FaultError(f"horizon must be > 0, got {horizon}")
    nodes = _nodes_of(topology)
    rng = random.Random(seed)
    max_down = max(1, int(len(nodes) * max_concurrent_fraction))
    deadline = horizon + 3.0 * mean_downtime
    events: List[FaultEvent] = []
    up_until = {node: 0.0 for node in nodes}  # node -> time it is up again
    now = 0.0
    while rate > 0:
        now += rng.expovariate(rate)
        if now >= horizon:
            break
        candidates = [n for n in nodes if up_until[n] <= now]
        down_count = sum(1 for n in nodes if up_until[n] > now)
        if not candidates or down_count >= max_down:
            continue
        victim = rng.choice(candidates)
        downtime = min(rng.expovariate(1.0 / mean_downtime), deadline - now)
        events.append(leave(now, victim))
        events.append(join(now + downtime, victim))
        up_until[victim] = now + downtime
    return FaultSchedule(events=tuple(events), name="poisson_churn").validate()


def flapping_links(
    topology,
    seed: int,
    fraction: float = 0.2,
    period: float = 4.0,
    duty: float = 0.5,
    start: float = 1.0,
    horizon: float = 25.0,
) -> FaultSchedule:
    """A random subset of links flaps down/up on a fixed period.

    ``fraction`` of the edges (at least one) are chosen with the seeded
    RNG; each flaps independently with a random phase: down for
    ``duty * period``, up for the rest, from ``start`` until ``horizon``
    — and is always restored at the end.
    """
    if not 0 < fraction <= 1:
        raise FaultError(f"fraction must be in (0, 1], got {fraction}")
    if period <= 0 or not 0 < duty < 1:
        raise FaultError(f"invalid flap period {period} / duty {duty}")
    edges = sorted((min(a, b), max(a, b)) for a, b, _ in topology.edges())
    if not edges:
        raise FaultError("topology has no links to flap")
    rng = random.Random(seed)
    count = max(1, round(len(edges) * fraction))
    flappers = rng.sample(edges, count)
    events: List[FaultEvent] = []
    for a, b in flappers:
        t = start + rng.uniform(0.0, period)
        while t < horizon:
            t_up = min(t + duty * period, horizon)
            events.append(link_down(t, a, b))
            events.append(link_up(t_up, a, b))
            t += period
    return FaultSchedule(events=tuple(events), name="flapping_links").validate()


def split_brain(
    topology,
    seed: int,
    at: float = 4.0,
    heal_at: float = 16.0,
    balance: float = 0.5,
) -> FaultSchedule:
    """One clean two-way partition: split at ``at``, heal at ``heal_at``.

    The cut is an edge of a BFS spanning tree grown from a seeded root:
    removing one tree edge leaves exactly two components, each connected
    through the remaining tree edges, so *both* sides are connected
    subgraphs (a geographic cut, not random assignment) and anti-entropy
    keeps converging within each side while the brain is split. Among
    all tree edges, the one whose subtree size is closest to ``balance``
    of the nodes is cut (ties broken by node id for determinism).
    """
    if heal_at <= at:
        raise FaultError(f"heal_at {heal_at} must be after at {at}")
    if not 0 < balance < 1:
        raise FaultError(f"balance must be in (0, 1), got {balance}")
    nodes = _nodes_of(topology)
    if len(nodes) < 2:
        raise FaultError("split_brain needs at least 2 nodes")
    rng = random.Random(seed)
    target = max(1, min(len(nodes) - 1, round(len(nodes) * balance)))
    root = rng.choice(nodes)

    # BFS spanning tree (deterministic: sorted neighbour order).
    parent = {root: None}
    order = [root]
    frontier = [root]
    while frontier:
        node = frontier.pop(0)
        for neighbor in sorted(int(n) for n in topology.neighbors(node)):
            if neighbor not in parent:
                parent[neighbor] = node
                order.append(neighbor)
                frontier.append(neighbor)

    if len(parent) < len(nodes):
        # An unreachable node would be lumped arbitrarily into one side,
        # silently breaking the both-sides-connected guarantee.
        raise FaultError(
            "split_brain needs a connected topology; "
            f"{len(nodes) - len(parent)} node(s) unreachable from {root}"
        )

    # Subtree sizes, accumulated leaves-first along the BFS order.
    size = {node: 1 for node in order}
    for node in reversed(order[1:]):
        size[parent[node]] += size[node]

    # Cut the tree edge whose subtree is closest to the target size.
    cut = min(order[1:], key=lambda n: (abs(size[n] - target), n))
    side_a = {cut}
    for node in order:
        if parent[node] in side_a:
            side_a.add(node)
    side_b = [n for n in nodes if n not in side_a]
    events = (
        partition(at, (tuple(sorted(side_a)), tuple(side_b))),
        heal(heal_at),
    )
    return FaultSchedule(events=events, name="split_brain").validate()


def demand_shock_storm(
    topology,
    seed: int,
    at: float = 3.0,
    fraction: float = 0.1,
    factor: float = 25.0,
) -> FaultSchedule:
    """A flash crowd: a seeded node subset's true demand jumps at ``at``.

    Models the introduction's breaking-news motif while an update is in
    flight — dynamic variants should re-route pushes toward the newly
    hot region, static tables keep serving the stale ranking.
    """
    if not 0 < fraction <= 1:
        raise FaultError(f"fraction must be in (0, 1], got {fraction}")
    nodes = _nodes_of(topology)
    rng = random.Random(seed)
    count = max(1, round(len(nodes) * fraction))
    hot = rng.sample(nodes, count)
    return FaultSchedule(
        events=(demand_shock(at, hot, factor),), name="demand_shock"
    ).validate()


def rolling_restart(
    topology,
    seed: int,
    start: float = 2.0,
    downtime: float = 1.5,
    gap: float = 0.5,
    fraction: float = 1.0,
) -> FaultSchedule:
    """Restart nodes one at a time in seeded-random order.

    Every chosen node crashes for ``downtime`` and recovers before the
    next one goes down (an operator draining a fleet) — the heaviest
    recoverable churn pattern: eventually every replica was offline once.
    """
    if downtime <= 0 or gap < 0:
        raise FaultError(f"invalid downtime {downtime} / gap {gap}")
    if not 0 < fraction <= 1:
        raise FaultError(f"fraction must be in (0, 1], got {fraction}")
    nodes = _nodes_of(topology)
    rng = random.Random(seed)
    order = rng.sample(nodes, max(1, round(len(nodes) * fraction)))
    events: List[FaultEvent] = []
    t = start
    for node in order:
        events.append(node_down(t, node))
        events.append(node_up(t + downtime, node))
        t += downtime + gap
    return FaultSchedule(events=tuple(events), name="rolling_restart").validate()


def lossy_wan(
    topology,
    seed: int,
    start: float = 1.0,
    horizon: float = 20.0,
    episodes: int = 3,
    max_factor: float = 4.0,
    max_reorder: float = 0.4,
    max_duplicate: float = 0.25,
) -> FaultSchedule:
    """Episodic wide-area weather: latency shocks, reordering, duplication.

    ``episodes`` windows are placed over ``[start, horizon)`` with seeded
    jitter; each opens a latency shock (factor up to ``max_factor``)
    together with a reorder window and a duplication window whose
    probabilities are drawn up to the given caps. All windows expire
    within the episode, so the channel is clean after
    :meth:`FaultSchedule.last_packet_window_end`. The topology only
    anchors the contract shared by every generator — packet weather hits
    the whole channel, not chosen nodes.
    """
    if episodes < 1:
        raise FaultError(f"episodes must be >= 1, got {episodes}")
    if horizon <= start:
        raise FaultError(f"horizon {horizon} must be after start {start}")
    if max_factor <= 1.0:
        raise FaultError(f"max_factor must be > 1, got {max_factor}")
    _nodes_of(topology)  # same empty-topology contract as the other generators
    rng = random.Random(seed)
    span = (horizon - start) / episodes
    events: List[FaultEvent] = []
    for i in range(episodes):
        t = start + i * span + rng.uniform(0.0, 0.3 * span)
        duration = rng.uniform(0.4 * span, 0.8 * span)
        duration = min(duration, horizon - t)
        if duration <= 0:
            continue
        factor = rng.uniform(1.5, max_factor)
        events.append(latency_shock(t, factor, duration))
        events.append(
            packet_reorder(
                t,
                rng.uniform(0.1, max_reorder),
                rng.uniform(0.2, 1.0),
                duration,
            )
        )
        events.append(
            packet_duplicate(t, rng.uniform(0.05, max_duplicate), duration)
        )
    return FaultSchedule(events=tuple(events), name="lossy_wan").validate()


def corrupt_storm(
    topology,
    seed: int,
    start: float = 1.0,
    horizon: float = 20.0,
    bursts: int = 4,
    max_corrupt: float = 0.3,
    max_duplicate: float = 0.2,
) -> FaultSchedule:
    """Bursts of frame corruption (with some duplication) on the channel.

    Each burst corrupts messages in flight with a seeded probability up
    to ``max_corrupt`` — the receiver must meter and skip the garbage
    without the protocol stalling (retransmission through anti-entropy
    covers the losses). Alternating bursts also duplicate frames, so
    dedup and corruption-skip are exercised together.
    """
    if bursts < 1:
        raise FaultError(f"bursts must be >= 1, got {bursts}")
    if horizon <= start:
        raise FaultError(f"horizon {horizon} must be after start {start}")
    if not 0 < max_corrupt <= 1:
        raise FaultError(f"max_corrupt must be in (0, 1], got {max_corrupt}")
    _nodes_of(topology)
    rng = random.Random(seed)
    span = (horizon - start) / bursts
    events: List[FaultEvent] = []
    for i in range(bursts):
        t = start + i * span + rng.uniform(0.0, 0.25 * span)
        duration = rng.uniform(0.3 * span, 0.7 * span)
        duration = min(duration, horizon - t)
        if duration <= 0:
            continue
        events.append(corrupt_frame(t, rng.uniform(0.05, max_corrupt), duration))
        if i % 2 == 1:
            events.append(
                packet_duplicate(t, rng.uniform(0.05, max_duplicate), duration)
            )
    return FaultSchedule(events=tuple(events), name="corrupt_storm").validate()
