"""Per-node protocol stack composition.

A :class:`ReplicationNode` owns one replica's server and agents and
routes incoming network messages to the right agent. Which agents exist
depends on the :class:`~repro.core.config.ProtocolConfig`:

* always: an :class:`~repro.core.antientropy.AntiEntropyAgent`
  (the weak-consistency part every variant keeps);
* with ``config.fast_update``: a
  :class:`~repro.core.fastupdate.FastUpdateAgent`;
* with ``config.demand_knowledge == "advertised"``: a
  :class:`~repro.demand.advertisement.DemandAdvertiser`.

System-level wiring (building every node, attaching network handlers,
injecting writes) lives in :mod:`repro.core.system`.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..demand.advertisement import DemandAdvert, DemandAdvertiser
from ..demand.views import DemandView
from ..errors import ReplicationError
from ..replica.messages import (
    FastUpdateOffer,
    FastUpdatePayload,
    FastUpdateReply,
    SessionAbort,
    SessionBusy,
    SessionRequest,
    SummaryMessage,
    UpdateBatch,
)
from ..replica.server import ReplicaServer
from ..runtime.base import Runtime
from .antientropy import AntiEntropyAgent
from .config import ProtocolConfig
from .fastupdate import FastUpdateAgent
from .policies import PartnerSelectionPolicy

_SESSION_TYPES = (SessionRequest, SessionBusy, SummaryMessage, UpdateBatch, SessionAbort)
_FAST_TYPES = (FastUpdateOffer, FastUpdateReply, FastUpdatePayload)


class ReplicationNode:
    """One node's complete protocol stack.

    Args:
        runtime: Owning runtime; the node attaches its dispatcher to
            ``runtime.transport``.
        server: The replica state machine.
        config: Protocol variant switches.
        policy: Partner-selection policy instance (node-local state).
        view: Believed demand of other nodes.
        own_demand: Callable returning this node's current true demand.
        advertiser: Optional demand advertiser (advertised knowledge).
    """

    def __init__(
        self,
        runtime: Runtime,
        server: ReplicaServer,
        config: ProtocolConfig,
        policy: PartnerSelectionPolicy,
        view: DemandView,
        own_demand: Callable[[], float],
        advertiser: Optional[DemandAdvertiser] = None,
        ack_manager=None,
    ):
        self.runtime = runtime
        self.transport = runtime.transport
        self.server = server
        self.config = config
        self.view = view
        self.node = server.node
        self.ack_manager = ack_manager
        self.anti_entropy = AntiEntropyAgent(
            runtime, server, config, policy, ack_manager=ack_manager
        )
        self.fast: Optional[FastUpdateAgent] = None
        if config.fast_update:
            self.fast = FastUpdateAgent(
                runtime, server, config, view, own_demand
            )
        self.advertiser = advertiser
        # Type-keyed dispatch: one dict hit routes a delivered message to
        # the owning agent's leaf handler, replacing the isinstance
        # chains that used to dominate the delivery hot path.  Every
        # handler has the uniform ``(src, message)`` signature.
        anti_entropy = self.anti_entropy
        self._dispatch = {
            SessionRequest: anti_entropy._handle_request,
            SessionBusy: anti_entropy._handle_busy,
            SummaryMessage: anti_entropy._handle_summary,
            UpdateBatch: anti_entropy._handle_batch,
            SessionAbort: anti_entropy._handle_abort,
        }
        if self.fast is not None:
            self._dispatch[FastUpdateOffer] = self.fast._handle_offer
            self._dispatch[FastUpdateReply] = self.fast._handle_reply
            self._dispatch[FastUpdatePayload] = self.fast._handle_payload
        else:
            for fast_type in _FAST_TYPES:
                self._dispatch[fast_type] = self._ignore_fast
        self._dispatch[DemandAdvert] = (
            self.advertiser.on_message
            if self.advertiser is not None
            else self._ignore_advert
        )
        self.transport.attach(self.node, self.on_message)
        self._started = False

    def start(self) -> None:
        """Start all periodic activity (sessions, advertisements)."""
        if self._started:
            raise ReplicationError(f"node {self.node} already started")
        self._started = True
        self.anti_entropy.start()
        if self.advertiser is not None:
            self.advertiser.start()

    def stop(self) -> None:
        """Stop all periodic activity (replica retirement).

        Idempotent; safe on a node that was never started. In-flight
        sessions are left to drain through their ordinary timeouts.
        """
        self.anti_entropy.stop()
        if self.advertiser is not None:
            self.advertiser.stop()

    def on_message(self, src: int, message: object) -> None:
        """Route a delivered message to the owning agent."""
        handler = self._dispatch.get(message.__class__)
        if handler is None:
            handler = self._resolve_handler(src, message)
        handler(src, message)

    def _resolve_handler(self, src: int, message: object):
        """Slow path: subclassed message types fall back to isinstance.

        The resolution is cached under the concrete type, so a subclass
        pays the chain walk once and rides the dispatch dict afterwards.
        """
        if isinstance(message, _SESSION_TYPES):
            handler = self.anti_entropy.on_message
        elif isinstance(message, _FAST_TYPES):
            handler = (
                self.fast.on_message if self.fast is not None else self._ignore_fast
            )
        elif isinstance(message, DemandAdvert):
            handler = (
                self.advertiser.on_message
                if self.advertiser is not None
                else self._ignore_advert
            )
        else:
            raise ReplicationError(
                f"node {self.node}: unroutable message {message!r} from {src}"
            )
        self._dispatch[message.__class__] = handler
        return handler

    def _ignore_fast(self, src: int, message: object) -> None:
        # A fast-capable peer pushed at us even though we run the plain
        # protocol; ignore rather than crash (mirrors a deployment
        # mixing versions).
        trace = self.runtime.trace
        if trace.wants("node.ignored-fast"):
            trace.record(
                self.runtime.now, "node.ignored-fast", node=self.node, src=src
            )

    @staticmethod
    def _ignore_advert(src: int, message: object) -> None:
        """Adverts at a node without an advertiser are silently dropped."""

    def add_bridge_targets(self, peers) -> None:
        """Register overlay peers that always receive fast offers (§6)."""
        if self.fast is None:
            raise ReplicationError(
                "island bridges require fast_update to be enabled"
            )
        self.fast.extra_targets.update(int(p) for p in peers)
