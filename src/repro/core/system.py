"""System builder: a whole replicated system in one object.

:class:`ReplicationSystem` wires the full stack for every node of a
topology — transport, replica servers, demand views, policies, agents —
from one :class:`~repro.core.config.ProtocolConfig`, and exposes the
operations experiments need: inject a write, run until it is everywhere,
read convergence times.

The per-node assembly lives in :func:`build_node_stack`, which depends
only on the :class:`~repro.runtime.base.Runtime` port — the same
function wires nodes inside the discrete-event simulator (this class,
on :class:`~repro.runtime.simulation.SimRuntime`) and inside a live
wall-clock deployment
(:class:`~repro.runtime.cluster.ReplicaCluster`, on
:class:`~repro.runtime.live.AsyncioRuntime`).

``ReplicationSystem`` is the simulation entry point of the public API::

    from repro import ReplicationSystem, fast_consistency
    from repro.topology import internet_like
    from repro.demand import UniformRandomDemand

    topo = internet_like(50, seed=1)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=1),
        config=fast_consistency(),
        seed=1,
    )
    system.start()
    update = system.inject_write(node=0)
    done_at = system.run_until_replicated(update.uid, max_time=50)

For serving live traffic on the same protocol code, see
:class:`repro.runtime.cluster.ReplicaCluster`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..demand.advertisement import DemandAdvertiser, bootstrap_tables
from ..demand.base import DemandModel
from ..demand.views import (
    DemandTable,
    DemandView,
    OracleDemandView,
    SnapshotDemandView,
    TableDemandView,
)
from ..errors import ConfigurationError, SimulationError
from ..replica.log import MaxEntries, Update, UpdateId
from ..replica.server import NewUpdatesListener, ReplicaServer
from .acking import AckManager
from ..runtime.base import Runtime
from ..runtime.simulation import SimRuntime
from ..sim.engine import Simulator
from ..sim.network import FixedLatency, LatencyModel, Network
from ..topology.graph import Topology
from .config import (
    KNOWLEDGE_ADVERTISED,
    KNOWLEDGE_ORACLE,
    KNOWLEDGE_SNAPSHOT,
    ProtocolConfig,
)
from .policies import make_policy
from .protocol import ReplicationNode

#: Topic published whenever any replica first absorbs updates.
TOPIC_UPDATE_APPLIED = "update.applied"


def build_node_stack(
    runtime: Runtime,
    topology: Topology,
    demand: DemandModel,
    config: ProtocolConfig,
    node: int,
    tables: Optional[Dict[int, DemandTable]] = None,
    on_new_updates: Optional[NewUpdatesListener] = None,
) -> ReplicationNode:
    """Assemble one node's complete protocol stack on any runtime.

    Creates the replica server, demand view, partner-selection policy,
    optional advertiser / ack manager, and the
    :class:`~repro.core.protocol.ReplicationNode` that routes messages
    between them.  Everything is wired against the
    :class:`~repro.runtime.base.Runtime` port, so the identical stack
    runs inside the simulator and on a live asyncio deployment.

    Args:
        runtime: Execution world (clock, transport, RNG, trace).
        topology: The replica interconnection graph.
        demand: Demand model (nodes read their own true demand from it).
        config: Protocol variant switches.
        node: The node to build.
        tables: Shared per-node demand tables; required for
            ``"advertised"`` knowledge (missing entries are filled from
            current neighbour demand).
        on_new_updates: Optional listener registered on the server
            *before* the agents, so convergence trackers observe
            arrivals ahead of the fast-update re-push.
    """
    advertised = config.demand_knowledge == KNOWLEDGE_ADVERTISED
    truncation = None
    if config.log_truncation == "max-entries":
        truncation = MaxEntries(limit=config.max_log_entries)
    server = ReplicaServer(
        node,
        truncation=truncation,
        default_payload_bytes=config.update_payload_bytes,
    )
    if on_new_updates is not None:
        server.on_new_updates(on_new_updates)
    ack_manager = None
    if config.log_truncation == "acked":
        ack_manager = AckManager(runtime, server, topology.nodes)
    if advertised:
        if tables is None:
            raise ConfigurationError(
                "advertised demand knowledge needs a shared tables dict"
            )
        if node not in tables:
            # Late joiner (replica creation): seed its table from the
            # neighbours' current demand, as bootstrap_tables does at t=0.
            table = DemandTable()
            for neighbor in topology.neighbors(node):
                table.update(
                    neighbor,
                    demand.demand(neighbor, runtime.now),
                    runtime.now,
                )
            tables[node] = table
    view = _make_view(runtime, topology, demand, config, node, tables)
    policy = make_policy(config, view, runtime.rng.stream("policy", node))
    advertiser = None
    if advertised:
        advertiser = DemandAdvertiser(
            runtime,
            runtime.transport,
            node,
            demand,
            tables[node],
            period=config.advert_period,
        )
    own_demand = lambda _node=node: demand.demand(_node, runtime.now)
    return ReplicationNode(
        runtime=runtime,
        server=server,
        config=config,
        policy=policy,
        view=view,
        own_demand=own_demand,
        advertiser=advertiser,
        ack_manager=ack_manager,
    )


def _make_view(
    runtime: Runtime,
    topology: Topology,
    demand: DemandModel,
    config: ProtocolConfig,
    node: int,
    tables: Optional[Dict[int, DemandTable]],
) -> DemandView:
    """The demand view matching ``config.demand_knowledge``."""
    knowledge = config.demand_knowledge
    if knowledge == KNOWLEDGE_ORACLE:
        return OracleDemandView(demand, lambda: runtime.now)
    if knowledge == KNOWLEDGE_SNAPSHOT:
        return SnapshotDemandView(demand, topology.nodes, at_time=0.0)
    if knowledge == KNOWLEDGE_ADVERTISED:
        return TableDemandView(tables[node])
    raise ConfigurationError(f"unknown demand knowledge {knowledge!r}")


class ReplicationSystem:
    """A complete simulated replicated system.

    Args:
        topology: The replica interconnection graph (must be connected).
        demand: Demand model (requests per session-time unit per node).
        config: Protocol variant; see :mod:`repro.core.variants`.
        seed: Master seed — two systems with equal arguments produce
            identical traces.
        latency: Optional latency model (default: fixed
            ``config.link_delay``).
        loss: Message loss probability.
        sim: Optionally reuse an existing simulator (advanced; e.g. to
            co-simulate other agents).
    """

    def __init__(
        self,
        topology: Topology,
        demand: DemandModel,
        config: ProtocolConfig,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        sim: Optional[Simulator] = None,
    ):
        config.validate()
        if topology.num_nodes == 0:
            raise ConfigurationError("topology has no nodes")
        if not topology.is_connected():
            raise ConfigurationError(
                "topology must be connected (weak consistency can only "
                "converge within a component)"
            )
        self.topology = topology
        self.demand = demand
        self.config = config
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.network = Network(
            self.sim,
            topology,
            latency=latency if latency is not None else FixedLatency(config.link_delay),
            loss=loss,
        )
        #: The runtime port adapter every protocol component talks to.
        self.runtime = SimRuntime(self.sim, self.network)
        self.servers: Dict[int, ReplicaServer] = {}
        self.nodes: Dict[int, ReplicationNode] = {}
        self.tables: Dict[int, DemandTable] = {}
        #: Nodes decommissioned by :meth:`retire_replica`. They stay in
        #: the topology (ids are never reused) but no longer count
        #: toward convergence and generate no traffic.
        self.retired: Set[int] = set()
        self._apply_times: Dict[UpdateId, Dict[int, float]] = {}
        self._watch: Dict[UpdateId, Tuple[Set[int], float]] = {}
        #: Set by fault-aware assemblers (build_system, run_trial) to the
        #: installed :class:`~repro.faults.process.FaultProcess`.
        self.fault_process = None
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        advertised = self.config.demand_knowledge == KNOWLEDGE_ADVERTISED
        if advertised:
            # Warm start: §4 assumes nodes already know neighbour demand.
            self.tables = bootstrap_tables(self.network, self.demand, at_time=0.0)
        for node in self.topology.nodes:
            self._build_node(node)

    def _build_node(self, node: int) -> ReplicationNode:
        """Create the full stack for one node and register it."""
        replication_node = build_node_stack(
            self.runtime,
            self.topology,
            self.demand,
            self.config,
            node,
            tables=(
                self.tables
                if self.config.demand_knowledge == KNOWLEDGE_ADVERTISED
                else None
            ),
            on_new_updates=lambda updates, source, sender, _node=node: (
                self._record_applied(_node, updates, source)
            ),
        )
        self.servers[node] = replication_node.server
        self.nodes[node] = replication_node
        return replication_node

    def start(self) -> None:
        """Start every node's periodic activity."""
        self._started = True
        for node in self.nodes.values():
            node.start()

    # -- membership (replica creation, §7's Bayou policy family) -----------

    def add_replica(
        self,
        new_node: int,
        attach_to: Iterable[int],
        donor_policy: Optional["DonorSelectionPolicy"] = None,
        position: Optional[Tuple[float, float]] = None,
    ) -> int:
        """Create a new replica at runtime and bootstrap it from a donor.

        The new node is linked to ``attach_to``, a donor among them is
        chosen by ``donor_policy`` (default:
        :class:`repro.replica.creation.MostCompleteLog`), and the new
        node immediately runs a real anti-entropy session against the
        donor — the bootstrap flows through the ordinary protocol with
        full message/byte accounting.

        Returns the chosen donor's id.

        Raises:
            ConfigurationError: Under ``"acked"`` log truncation —
                ack-vector populations are fixed at construction time;
                changing membership safely needs Golding's group
                membership protocol, which is out of scope (DESIGN.md).
        """
        from ..replica.creation import DonorInfo, MostCompleteLog
        from ..topology.analysis import bfs_distances

        if self.config.log_truncation == "acked":
            raise ConfigurationError(
                "add_replica is not supported with acked truncation "
                "(fixed ack-vector population)"
            )
        attach = [int(n) for n in attach_to]
        if not attach:
            raise ConfigurationError("attach_to must name at least one node")
        for peer in attach:
            if peer not in self.servers:
                raise ConfigurationError(f"attach point {peer} does not exist")
            if peer in self.retired:
                raise ConfigurationError(f"attach point {peer} is retired")
        if new_node in self.servers:
            raise ConfigurationError(f"node {new_node} already exists")
        self.topology.add_node(new_node, position)
        for peer in attach:
            self.topology.add_edge(new_node, peer)
        replication_node = self._build_node(new_node)
        if getattr(self, "_started", False):
            replication_node.start()

        candidates: Dict[int, DonorInfo] = {}
        distances = bfs_distances(self.topology, new_node)
        for peer in attach:
            server = self.servers[peer]
            last_applied = max(
                (t for times in self._apply_times.values()
                 for n, t in times.items() if n == peer),
                default=0.0,
            )
            candidates[peer] = DonorInfo(
                node=peer,
                total_writes=server.summary().total_writes(),
                log_length=len(server.log),
                hops=distances.get(peer, 1),
                staleness=self.runtime.now - last_applied,
                demand=self.demand.demand(peer, self.runtime.now),
            )
        policy = donor_policy if donor_policy is not None else MostCompleteLog()
        donor = policy.choose(candidates)
        replication_node.anti_entropy.initiate_with(donor)
        self.runtime.trace.record(
            self.runtime.now, "replica.created", node=new_node, donor=donor
        )
        return donor

    @property
    def active_nodes(self) -> Tuple[int, ...]:
        """Topology nodes minus retired replicas (insertion order)."""
        if not self.retired:
            return tuple(self.topology.nodes)
        return tuple(n for n in self.topology.nodes if n not in self.retired)

    def retire_replica(self, node: int, grace: Optional[float] = None) -> None:
        """Decommission a replica created with :meth:`add_replica`.

        The node's periodic activity stops, its network handler is
        detached (in-flight messages to it are dropped), and after a
        ``grace`` period — long enough for peers' in-flight sessions
        with it to time out — its links leave the topology so partner
        selection stops targeting it. The node id stays reserved; ids
        are never reused, which keeps event ordering deterministic.

        Raises:
            ConfigurationError: If the node is unknown, already
                retired, the last active replica, or if removing it
                would disconnect the remaining active replicas.
        """
        node = int(node)
        if node not in self.servers:
            raise ConfigurationError(f"unknown node {node}")
        if node in self.retired:
            raise ConfigurationError(f"node {node} already retired")
        remaining = [n for n in self.active_nodes if n != node]
        if not remaining:
            raise ConfigurationError("cannot retire the last active replica")
        if not self._connected_without(node, remaining):
            raise ConfigurationError(
                f"retiring node {node} would disconnect the active replicas"
            )
        self.retired.add(node)
        self.nodes[node].stop()
        self.network.set_node_down(node)
        self.network.detach(node)
        # The retired node no longer gates convergence watches.
        for uid in list(self._watch):
            remaining_watch, _ = self._watch[uid]
            remaining_watch.discard(node)
            if not remaining_watch:
                self._watch.pop(uid, None)
                self.runtime.stop()
        if grace is None:
            grace = self.config.session_timeout + 1.0
        self.runtime.schedule(grace, self._unlink_retired, node)
        self.runtime.trace.record(self.runtime.now, "replica.retired", node=node)

    def _connected_without(self, node: int, remaining: List[int]) -> bool:
        """Are the active nodes still one component if ``node`` leaves?"""
        active = set(remaining)
        seen = {remaining[0]}
        frontier = [remaining[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in self.topology.neighbors(current):
                if neighbor in active and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(active)

    def _unlink_retired(self, node: int) -> None:
        """Remove a retired node's links once its sessions have drained."""
        for neighbor in list(self.topology.neighbors(node)):
            self.topology.remove_edge(node, neighbor)

    # -- write injection and convergence tracking ----------------------------

    def _record_applied(self, node: int, updates: List[Update], source: str) -> None:
        now = self.runtime.now
        for update in updates:
            times = self._apply_times.setdefault(update.uid, {})
            if node not in times:
                times[node] = now
            watch = self._watch.get(update.uid)
            if watch is not None:
                remaining, _ = watch
                remaining.discard(node)
                if not remaining:
                    self._watch.pop(update.uid, None)
                    self.runtime.stop()
        self.runtime.publish(
            TOPIC_UPDATE_APPLIED,
            node=node,
            updates=updates,
            source=source,
            time=now,
        )

    def inject_write(
        self, node: int, key: str = "content", value: object = "v1"
    ) -> Update:
        """Perform a client write at ``node`` right now."""
        if node not in self.servers:
            raise SimulationError(f"unknown node {node}")
        return self.servers[node].local_write(key, value)

    def apply_times(self, uid: UpdateId) -> Dict[int, float]:
        """First-application time per node for a tracked update."""
        return dict(self._apply_times.get(uid, {}))

    def nodes_with(self, uid: UpdateId) -> Set[int]:
        """Nodes that have absorbed ``uid`` so far."""
        return set(self._apply_times.get(uid, {}))

    def all_have(self, uid: UpdateId) -> bool:
        times = self._apply_times.get(uid, {})
        if not self.retired:
            return len(times) == self.topology.num_nodes
        return all(n in times for n in self.active_nodes)

    # -- running ----------------------------------------------------------------

    def run_until(self, time: float) -> None:
        """Advance the simulation to ``time``."""
        self.runtime.run(until=time)

    def run_until_replicated(
        self, uid: UpdateId, max_time: float = 100.0
    ) -> Optional[float]:
        """Run until ``uid`` reached every node; return that time.

        Returns None if the horizon ``max_time`` expires first (the
        update may still be missing somewhere, e.g. under heavy loss).
        """
        missing = set(self.active_nodes) - self.nodes_with(uid)
        if not missing:
            times = self._apply_times.get(uid, {})
            return max(times.values()) if times else None
        self._watch[uid] = (missing, max_time)
        self.runtime.run(until=max_time)
        self._watch.pop(uid, None)
        if self.all_have(uid):
            return max(self._apply_times[uid].values())
        return None

    # -- reporting helpers ----------------------------------------------------------

    def demand_snapshot(self, time: Optional[float] = None) -> Dict[int, float]:
        """True demand of every node at ``time`` (default: now)."""
        at = self.runtime.now if time is None else time
        return self.demand.snapshot(self.topology.nodes, at)

    def traffic(self) -> Dict[str, object]:
        """Measured traffic counters (messages/bytes, per kind)."""
        return self.network.counters.snapshot()

    def session_stats_total(self) -> Dict[str, int]:
        """Aggregate anti-entropy counters over all nodes."""
        total: Dict[str, int] = {}
        for node in self.nodes.values():
            stats = node.anti_entropy.stats
            for field_name in (
                "initiated",
                "completed_initiator",
                "completed_responder",
                "refused_received",
                "refused_sent",
                "timeouts",
                "updates_sent",
                "updates_received",
            ):
                total[field_name] = total.get(field_name, 0) + getattr(
                    stats, field_name
                )
        return total
