"""The anti-entropy session agent (paper §2.1 steps 1-12).

Each node runs one :class:`AntiEntropyAgent`. At random intervals (mean
= one session time, the paper's unit) the agent picks a partner through
its :class:`~repro.core.policies.PartnerSelectionPolicy` and runs the
two-way summary-vector exchange as real simulator messages:

=====  =====================================================  =========
Steps  Paper text                                             Message
=====  =====================================================  =========
1-2    select neighbour, request session                      SessionRequest
3-4    partner sends its summary vector                       SummaryMessage (is_reply=False)
5-6    initiator sends its summary vector                     SummaryMessage (is_reply=True)
7-8    initiator sends messages partner lacks                 UpdateBatch
9-11   partner determines and sends missing messages          UpdateBatch
12     both ends integrate                                    —
=====  =====================================================  =========

Both directions always send a (possibly empty) closing batch so both
ends can account the session complete. Sessions time out (covering
message loss and crashed partners) and may be refused with BUSY when
``config.refuse_when_busy`` is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ReplicationError
from ..replica.log import KeepAll
from ..replica.messages import (
    SessionAbort,
    SessionBusy,
    SessionRequest,
    SummaryMessage,
    UpdateBatch,
)
from ..replica.server import ReplicaServer
from ..runtime.base import Runtime
from .config import INTERVAL_EXPONENTIAL, ProtocolConfig
from .policies import PartnerSelectionPolicy

ROLE_INITIATOR = "initiator"
ROLE_RESPONDER = "responder"


@dataclass
class SessionState:
    """Book-keeping for one in-flight session at one endpoint."""

    sid: int
    peer: int
    role: str
    started_at: float
    sent_batch: bool = False
    received_batch: bool = False
    timeout_handle: Optional[object] = None

    @property
    def complete(self) -> bool:
        return self.sent_batch and self.received_batch


@dataclass
class SessionStats:
    """Per-node session counters surfaced in experiment reports."""

    initiated: int = 0
    completed_initiator: int = 0
    completed_responder: int = 0
    refused_received: int = 0
    refused_sent: int = 0
    timeouts: int = 0
    skipped_busy: int = 0
    skipped_no_partner: int = 0
    updates_sent: int = 0
    updates_received: int = 0

    @property
    def completed(self) -> int:
        return self.completed_initiator + self.completed_responder


class AntiEntropyAgent:
    """Runs the weak-consistency part of the protocol at one node."""

    def __init__(
        self,
        runtime: Runtime,
        server: ReplicaServer,
        config: ProtocolConfig,
        policy: PartnerSelectionPolicy,
        ack_manager=None,
    ):
        self.runtime = runtime
        self.transport = runtime.transport
        self.server = server
        self.config = config
        self.policy = policy
        self.ack_manager = ack_manager
        self.node = server.node
        self.stats = SessionStats()
        self._sessions: Dict[int, SessionState] = {}
        self._initiating_sid: Optional[int] = None
        self._session_counter = 0
        self._interval_rng = runtime.rng.stream("session-interval", self.node)
        self._started = False
        self._stopped = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Schedule the first session initiation (random phase)."""
        if self._started:
            raise ReplicationError(f"agent for node {self.node} already started")
        self._started = True
        self.runtime.schedule_fast(self._draw_interval(), self._initiate)

    def stop(self) -> None:
        """Stop initiating sessions (replica retirement).

        The periodic timer chain dies at its next firing; in-flight
        sessions drain through their ordinary timeouts.
        """
        self._stopped = True

    def _draw_interval(self) -> float:
        mean = self.config.session_interval_mean
        if self.config.session_interval_distribution == INTERVAL_EXPONENTIAL:
            return self._interval_rng.expovariate(1.0 / mean)
        return self._interval_rng.uniform(0.5 * mean, 1.5 * mean)

    def _next_sid(self) -> int:
        self._session_counter += 1
        return self.node * 1_000_000 + self._session_counter

    # -- initiation --------------------------------------------------------

    def _initiate(self) -> None:
        if self._stopped:
            return
        # Keep the initiation rate steady no matter what happens below.
        # Never cancelled, so the handle-free fast path applies.
        self.runtime.schedule_fast(self._draw_interval(), self._initiate)
        if self._initiating_sid is not None:
            self.stats.skipped_busy += 1
            return
        neighbors = self.transport.physical_neighbors(self.node)
        partner = self.policy.select(neighbors)
        if partner is None:
            self.stats.skipped_no_partner += 1
            return
        self._begin_session(partner)

    def initiate_with(self, partner: int) -> bool:
        """Start a session with a specific partner right now.

        Used by replica bootstrap (a new node syncs with its chosen
        donor immediately) — the exchange runs through the ordinary
        message protocol. Returns False if the node is already
        initiating a session.
        """
        if self._initiating_sid is not None:
            self.stats.skipped_busy += 1
            return False
        if partner not in self.transport.neighbors(self.node):
            raise ReplicationError(
                f"node {self.node} cannot sync with non-neighbour {partner}"
            )
        self._begin_session(partner)
        return True

    def _begin_session(self, partner: int) -> None:
        sid = self._next_sid()
        state = SessionState(
            sid=sid, peer=partner, role=ROLE_INITIATOR, started_at=self.runtime.now
        )
        state.timeout_handle = self.runtime.schedule(
            self.config.session_timeout, self._timeout, sid
        )
        self._sessions[sid] = state
        self._initiating_sid = sid
        self.stats.initiated += 1
        trace = self.runtime.trace
        if trace.wants("session.start"):
            trace.record(
                self.runtime.now, "session.start", node=self.node, peer=partner, sid=sid
            )
        self.transport.send(self.node, partner, SessionRequest(sid, self.node))

    # -- message handling ------------------------------------------------------

    def on_message(self, src: int, message: object) -> None:
        """Dispatch one session-layer message from ``src``.

        :class:`~repro.core.protocol.ReplicationNode` routes straight to
        the ``_handle_*`` leaf methods through its type-keyed dispatch
        table; this method remains for direct callers and exotic
        message subclasses.
        """
        if isinstance(message, SessionRequest):
            self._handle_request(src, message)
        elif isinstance(message, SessionBusy):
            self._handle_busy(src, message)
        elif isinstance(message, SummaryMessage):
            self._handle_summary(src, message)
        elif isinstance(message, UpdateBatch):
            self._handle_batch(src, message)
        elif isinstance(message, SessionAbort):
            self._handle_abort(src, message)
        else:
            raise ReplicationError(f"unexpected session message {message!r}")

    def _handle_request(self, src: int, message: SessionRequest) -> None:
        if self.config.refuse_when_busy and self._sessions:
            self.stats.refused_sent += 1
            self.transport.send(self.node, src, SessionBusy(message.session_id, self.node))
            return
        state = SessionState(
            sid=message.session_id,
            peer=src,
            role=ROLE_RESPONDER,
            started_at=self.runtime.now,
        )
        state.timeout_handle = self.runtime.schedule(
            self.config.session_timeout, self._timeout, state.sid
        )
        self._sessions[state.sid] = state
        # Step 4: "B sends to E its summary vector."
        self.transport.send(
            self.node,
            src,
            SummaryMessage(
                state.sid,
                self.node,
                self.server.summary(),
                is_reply=False,
                ack_table=self._wire_acks(),
            ),
        )

    def _handle_busy(self, src: int, message: SessionBusy) -> None:
        state = self._sessions.get(message.session_id)
        if state is None or state.role != ROLE_INITIATOR:
            return
        self.stats.refused_received += 1
        self._close(state, completed=False)

    def _handle_abort(self, src: int, message: SessionAbort) -> None:
        self._abort(message.session_id, reason="peer-abort")

    def _handle_summary(self, src: int, message: SummaryMessage) -> None:
        state = self._sessions.get(message.session_id)
        if state is None or state.peer != src:
            return  # stale message from an aborted session
        if self.ack_manager is not None:
            self.ack_manager.observe_peer(src, message.summary, message.ack_table)
        if not self.server.log.can_serve(message.summary):
            # Aggressive truncation removed history this peer needs;
            # without a full-state transfer the session cannot proceed.
            self.transport.send(
                self.node, src, SessionAbort(state.sid, self.node, "log-truncated")
            )
            self._abort(state.sid, reason="log-truncated")
            return
        missing = self.server.missing_for(message.summary)
        if state.role == ROLE_INITIATOR and not message.is_reply:
            # Steps 5-8: send our summary, then everything the partner
            # has not seen, closing our direction.
            self.transport.send(
                self.node,
                src,
                SummaryMessage(
                    state.sid,
                    self.node,
                    self.server.summary(),
                    is_reply=True,
                    ack_table=self._wire_acks(),
                ),
            )
            self._send_batch(state, missing)
        elif state.role == ROLE_RESPONDER and message.is_reply:
            # Steps 9-11: the responder sends what the initiator lacks.
            self._send_batch(state, missing)
        else:
            return
        self._maybe_finish(state)

    def _wire_acks(self):
        if self.ack_manager is None:
            return None
        return self.ack_manager.wire_table()

    def _send_batch(self, state: SessionState, missing) -> None:
        self.stats.updates_sent += len(missing)
        self.transport.send(
            self.node,
            state.peer,
            UpdateBatch(state.sid, self.node, tuple(missing), closing=True),
        )
        state.sent_batch = True

    def _handle_batch(self, src: int, message: UpdateBatch) -> None:
        state = self._sessions.get(message.session_id)
        if state is None or state.peer != src:
            return
        new_updates = self.server.integrate(message.updates, "session", sender=src)
        self.stats.updates_received += len(new_updates)
        if message.closing:
            state.received_batch = True
        self._maybe_finish(state)

    # -- completion / teardown ---------------------------------------------------

    def _maybe_finish(self, state: SessionState) -> None:
        if not state.complete:
            return
        if state.role == ROLE_INITIATOR:
            self.stats.completed_initiator += 1
        else:
            self.stats.completed_responder += 1
        trace = self.runtime.trace
        if trace.wants("session.end"):
            trace.record(
                self.runtime.now,
                "session.end",
                node=self.node,
                peer=state.peer,
                sid=state.sid,
                role=state.role,
            )
        self._close(state, completed=True)
        if self.ack_manager is not None:
            self.ack_manager.after_session()
        elif not isinstance(self.server.log.policy, KeepAll):
            self.server.log.purge()

    def _close(self, state: SessionState, completed: bool) -> None:
        if state.timeout_handle is not None:
            self.runtime.cancel(state.timeout_handle)
            state.timeout_handle = None
        self._sessions.pop(state.sid, None)
        if self._initiating_sid == state.sid:
            self._initiating_sid = None

    def _timeout(self, sid: int) -> None:
        self._abort(sid, reason="timeout")

    def _abort(self, sid: int, reason: str) -> None:
        state = self._sessions.get(sid)
        if state is None:
            return
        self.stats.timeouts += 1
        trace = self.runtime.trace
        if trace.wants("session.abort"):
            trace.record(
                self.runtime.now,
                "session.abort",
                node=self.node,
                peer=state.peer,
                sid=sid,
                reason=reason,
            )
        self._close(state, completed=False)

    # -- introspection ----------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)
