"""Ack-vector maintenance: safe write-log truncation in the protocol.

Golding's rule: a write may leave the log once *every* replica has
acknowledged it. :class:`AckManager` implements the machinery at one
node:

* it keeps an :class:`repro.replica.acks.AckTable` (everyone's last
  known summary vector), seeded with the node's own summary;
* the anti-entropy agent piggybacks a snapshot of the table on its
  summary messages and feeds received summaries/tables back in, so
  acknowledgement knowledge spreads epidemically with the data;
* after each completed session the manager recomputes the ack vector
  (elementwise minimum over a complete table) and purges the log.

With a lagging or crashed replica the table's minimum stalls, purging
stops, and the log grows — the safety/storage trade-off the paper's
related-work section attributes to Bayou's truncation policies.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..replica.acks import AckTable
from ..replica.log import AckedTruncation
from ..replica.server import ReplicaServer
from ..replica.versions import SummaryVector
from ..runtime.base import Runtime


class AckManager:
    """Tracks acknowledgements and purges one node's write log."""

    def __init__(self, runtime: Runtime, server: ReplicaServer, population: Iterable[int]):
        self.runtime = runtime
        self.server = server
        self.policy = AckedTruncation()
        server.log.policy = self.policy
        self.table = AckTable(server.node, population)
        self._refresh_own()
        self.total_purged = 0

    def _refresh_own(self) -> None:
        self.table.observe(self.server.node, self.server.summary(), self.runtime.now)

    # -- wire integration ---------------------------------------------------

    def wire_table(self) -> AckTable:
        """Snapshot to piggyback on an outgoing summary message."""
        self._refresh_own()
        return self.table.copy()

    def observe_peer(
        self,
        peer: int,
        summary: SummaryVector,
        table: Optional[AckTable],
    ) -> None:
        """Fold a received summary (and optional ack table) in."""
        self.table.observe(peer, summary, self.runtime.now)
        if table is not None:
            self.table.merge(table)

    # -- purging ---------------------------------------------------------------

    def after_session(self) -> int:
        """Recompute the ack vector and purge; returns entries removed."""
        self._refresh_own()
        ack = self.table.ack_vector()
        self.policy.ack_vector = ack
        removed = self.server.log.purge()
        if removed:
            self.total_purged += removed
            trace = self.runtime.trace
            if trace.wants("log.purge"):
                trace.record(
                    self.runtime.now,
                    "log.purge",
                    node=self.server.node,
                    removed=removed,
                    acked=ack.total_writes(),
                )
        return removed
