"""The fast-update push agent (paper §2.1 steps 13-18).

This is the paper's second optimisation: the instant a replica absorbs
*new* updates — from a local client write, an anti-entropy session, or a
previous fast update — it offers them to its highest-demand
neighbour(s) without waiting for the next session and without
exchanging summary vectors:

* step 13-14: send :class:`FastUpdateOffer` (ids + timestamps only);
* step 15-16: the target answers which of those it still needs
  (YES = non-empty list, NO = empty);
* step 17-18: send the bodies for the YES entries, or nothing.

Under the default ``downhill`` rule a node only offers to neighbours
whose believed demand is *strictly higher* than its own, so updates
cascade into demand valleys and stop at local demand minima — the
"flooding the valleys" picture of §2. When all demands are equal no
offer is ever made and the system degrades to plain weak consistency,
exactly the worst case §8 describes. The ``always`` rule (ablation)
offers to the top-``fanout`` neighbours unconditionally.

Island bridging (§6) plugs in through ``extra_targets``: overlay peers
(other island leaders) always receive offers regardless of demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..demand.views import DemandView
from ..errors import ReplicationError
from ..replica.log import Update, UpdateId
from ..replica.messages import FastUpdateOffer, FastUpdatePayload, FastUpdateReply
from ..replica.server import ReplicaServer
from ..runtime.base import Runtime
from .config import PUSH_ALWAYS, PUSH_DOWNHILL, ProtocolConfig


@dataclass
class FastUpdateStats:
    """Per-node counters for the push path."""

    offers_sent: int = 0
    offers_received: int = 0
    replies_yes: int = 0
    replies_no: int = 0
    payloads_sent: int = 0
    updates_pushed: int = 0
    updates_received: int = 0
    max_cascade_hops: int = 0


class FastUpdateAgent:
    """Immediate demand-directed propagation at one node.

    Args:
        runtime: Owning runtime (clock + transport).
        server: The local replica (the agent registers itself as a
            new-updates listener).
        config: Protocol switches (rule, fanout).
        view: Believed demand of other nodes.
        own_demand: Zero-arg callable returning this node's current true
            demand (a server always knows its own request rate).
        extra_targets: Overlay peers that always receive offers
            (island-leader bridges).
    """

    def __init__(
        self,
        runtime: Runtime,
        server: ReplicaServer,
        config: ProtocolConfig,
        view: DemandView,
        own_demand: Callable[[], float],
        extra_targets: Iterable[int] = (),
    ):
        self.runtime = runtime
        self.transport = runtime.transport
        self.server = server
        self.config = config
        self.view = view
        self.own_demand = own_demand
        self.node = server.node
        self.extra_targets: Set[int] = {int(t) for t in extra_targets}
        self.stats = FastUpdateStats()
        self._offered: Dict[int, Set[UpdateId]] = {}
        #: push hops each update had taken when it reached this node
        #: (0 for client writes and session arrivals).
        self._push_depth: Dict[UpdateId, int] = {}
        server.on_new_updates(self.on_new_updates)
        # Evict push bookkeeping in lock-step with log truncation: a
        # purged uid can never be offered again (WriteLog.has() keeps
        # answering True below the purged floor, so integrate() never
        # reports it as new), so dropping its state is trace-identical
        # and bounds _offered/_push_depth by live log size.
        server.log.on_purge(self._on_log_purge)

    # -- push side ---------------------------------------------------------

    def on_new_updates(
        self, new_updates: List[Update], source: str, sender: Optional[int]
    ) -> None:
        """Step 13: immediately offer fresh updates to chosen targets."""
        if not new_updates:
            return
        if source != "fast":
            # A fresh cascade starts here; fast arrivals already had
            # their depth recorded by _handle_payload.
            for update in new_updates:
                self._push_depth.setdefault(update.uid, 0)
        for target in self._choose_targets(sender):
            self._offer(target, new_updates)

    def _choose_targets(self, sender: Optional[int]) -> List[int]:
        neighbors = [
            n for n in self.transport.physical_neighbors(self.node) if n != sender
        ]
        ranked = self.view.rank(neighbors)
        if self.config.push_rule == PUSH_DOWNHILL:
            mine = self.own_demand()
            ranked = [n for n in ranked if self.view.demand_of(n) > mine]
        elif self.config.push_rule != PUSH_ALWAYS:
            raise ReplicationError(f"unknown push rule {self.config.push_rule!r}")
        targets = ranked[: self.config.fast_fanout]
        for extra in sorted(self.extra_targets):
            if extra != sender and extra not in targets:
                targets.append(extra)
        return targets

    def _offer(self, target: int, updates: Sequence[Update]) -> None:
        already = self._offered.setdefault(target, set())
        fresh = [u for u in updates if u.uid not in already]
        if not fresh:
            return
        already.update(u.uid for u in fresh)
        entries: Tuple[Tuple[UpdateId, object], ...] = tuple(
            (u.uid, u.timestamp) for u in fresh
        )
        depth = max(self._push_depth.get(u.uid, 0) for u in fresh)
        self.stats.offers_sent += 1
        trace = self.runtime.trace
        if trace.wants("fast.offer"):
            trace.record(
                self.runtime.now, "fast.offer", node=self.node, target=target, count=len(fresh)
            )
        self.transport.send(
            self.node, target, FastUpdateOffer(self.node, entries, depth=depth)
        )

    def _on_log_purge(self, purged_uids: List[UpdateId]) -> None:
        """Drop per-uid push state for writes truncated from the log."""
        push_depth = self._push_depth
        for uid in purged_uids:
            push_depth.pop(uid, None)
        if self._offered:
            gone = set(purged_uids)
            for offered in self._offered.values():
                offered.difference_update(gone)

    # -- receive side ---------------------------------------------------------

    def on_message(self, src: int, message: object) -> None:
        """Dispatch one fast-update message from ``src``."""
        if isinstance(message, FastUpdateOffer):
            self._handle_offer(src, message)
        elif isinstance(message, FastUpdateReply):
            self._handle_reply(src, message)
        elif isinstance(message, FastUpdatePayload):
            self._handle_payload(src, message)
        else:
            raise ReplicationError(f"unexpected fast-update message {message!r}")

    def _handle_offer(self, src: int, message: FastUpdateOffer) -> None:
        # Steps 14-15: answer YES with the ids we lack, else NO.
        self.stats.offers_received += 1
        needed = tuple(
            uid for uid in message.ids() if not self.server.has_update(uid)
        )
        self.transport.send(self.node, src, FastUpdateReply(self.node, needed))

    def _handle_reply(self, src: int, message: FastUpdateReply) -> None:
        # Steps 16-18: send the bodies for YES, nothing for NO.
        if message.is_no:
            self.stats.replies_no += 1
            return
        self.stats.replies_yes += 1
        bodies = []
        for uid in message.needed:
            # The update may have been purged meanwhile; skip silently —
            # anti-entropy will repair.
            if self.server.log.has(uid):
                try:
                    bodies.append(self.server.log.get(uid))
                except ReplicationError:
                    continue
        if not bodies:
            return
        self.stats.payloads_sent += 1
        self.stats.updates_pushed += len(bodies)
        depth = max(self._push_depth.get(u.uid, 0) for u in bodies)
        self.transport.send(
            self.node, src, FastUpdatePayload(self.node, tuple(bodies), depth=depth)
        )

    def _handle_payload(self, src: int, message: FastUpdatePayload) -> None:
        hops = message.depth + 1
        # Record cascade depth before integrating so the re-push
        # triggered inside integrate() sees the right value.
        for update in message.updates:
            if update.uid not in self._push_depth:
                self._push_depth[update.uid] = hops
        new_updates = self.server.integrate(message.updates, "fast", sender=src)
        self.stats.updates_received += len(new_updates)
        if new_updates:
            self.stats.max_cascade_hops = max(self.stats.max_cascade_hops, hops)
            trace = self.runtime.trace
            if trace.wants("fast.deliver"):
                trace.record(
                    self.runtime.now,
                    "fast.deliver",
                    node=self.node,
                    src=src,
                    hops=hops,
                    count=len(new_updates),
                )
        # integrate() fires on_new_updates, which cascades the push
        # further downhill (the §2 valley flood) — no extra work here.
