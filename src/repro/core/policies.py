"""Anti-entropy partner-selection policies.

The baseline (Golding) picks a random neighbour. The paper's first
optimisation replaces that with *ordered* selection: "the neighbour with
most demand must be chosen first" (§2), cycling through all neighbours
before starting over (the B-D, B-E, B-A, B-C order of Fig. 3), and — in
the dynamic §4 variant — re-ranking the *remaining* neighbours against
current beliefs at every step (the B-D, B-C', B-A' sequence of Fig. 4).

A policy instance belongs to one node and may keep state (the position
in the current cycle). Policies read believed demand through a
:class:`repro.demand.views.DemandView`, so the same policy code serves
the oracle, snapshot and advertised knowledge models.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from ..demand.views import DemandView
from ..errors import ConfigurationError
from .config import (
    POLICY_DEMAND,
    POLICY_RANDOM,
    POLICY_ROUND_ROBIN,
    POLICY_WEIGHTED,
    ProtocolConfig,
)


class PartnerSelectionPolicy:
    """Chooses which neighbour to start the next session with."""

    def select(self, neighbors: Sequence[int]) -> Optional[int]:
        """Return the chosen partner, or None when there is none."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget cycle state (topology changed, experiment restarted)."""


class RandomPolicy(PartnerSelectionPolicy):
    """Golding's baseline: uniform random neighbour.

    "Golding demonstrated that the neighbouring server's random choice
    has the best performance ... in a peer-to-peer network" (§1) — best
    among demand-oblivious policies, which is precisely what the paper
    improves on.
    """

    def __init__(self, rng: random.Random):
        self._rng = rng

    def select(self, neighbors: Sequence[int]) -> Optional[int]:
        if not neighbors:
            return None
        return self._rng.choice(list(neighbors))


class DemandOrderedPolicy(PartnerSelectionPolicy):
    """The paper's ordered selection (optimisations in §2 and §4).

    Keeps the set of neighbours already visited in the current cycle;
    each call picks the highest-believed-demand neighbour *not yet
    visited*, re-ranking against the view's current beliefs. When every
    neighbour has been visited the cycle restarts. Because ranking
    happens at selection time, the same policy implements both the
    static §2 behaviour (beliefs never change) and the dynamic §4
    behaviour (beliefs shift between selections).
    """

    def __init__(self, view: DemandView):
        self._view = view
        self._visited: Set[int] = set()

    def select(self, neighbors: Sequence[int]) -> Optional[int]:
        if not neighbors:
            return None
        remaining = [n for n in neighbors if n not in self._visited]
        if not remaining:
            self._visited.clear()
            remaining = list(neighbors)
        choice = self._view.rank(remaining)[0]
        self._visited.add(choice)
        return choice

    def reset(self) -> None:
        self._visited.clear()


class RoundRobinPolicy(PartnerSelectionPolicy):
    """Deterministic cycle in ascending id order (control policy)."""

    def __init__(self):
        self._cursor = 0

    def select(self, neighbors: Sequence[int]) -> Optional[int]:
        if not neighbors:
            return None
        ordered = sorted(neighbors)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice

    def reset(self) -> None:
        self._cursor = 0


class WeightedRandomPolicy(PartnerSelectionPolicy):
    """Random partner with probability proportional to believed demand.

    A softer demand bias than strict ordering — used by the ablation
    bench to show that *ordering* (not mere bias) gives the paper's
    first optimisation its effect. Zero-demand neighbours keep a small
    epsilon weight so they are still eventually contacted.
    """

    def __init__(self, view: DemandView, rng: random.Random, epsilon: float = 1e-3):
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self._view = view
        self._rng = rng
        self._epsilon = epsilon

    def select(self, neighbors: Sequence[int]) -> Optional[int]:
        if not neighbors:
            return None
        neighbors = list(neighbors)
        weights = [self._view.demand_of(n) + self._epsilon for n in neighbors]
        total = sum(weights)
        r = self._rng.random() * total
        acc = 0.0
        for node, weight in zip(neighbors, weights):
            acc += weight
            if r <= acc:
                return node
        return neighbors[-1]


def make_policy(
    config: ProtocolConfig, view: DemandView, rng: random.Random
) -> PartnerSelectionPolicy:
    """Instantiate the policy named by ``config.partner_policy``."""
    if config.partner_policy == POLICY_RANDOM:
        return RandomPolicy(rng)
    if config.partner_policy == POLICY_DEMAND:
        return DemandOrderedPolicy(view)
    if config.partner_policy == POLICY_ROUND_ROBIN:
        return RoundRobinPolicy()
    if config.partner_policy == POLICY_WEIGHTED:
        return WeightedRandomPolicy(view, rng)
    raise ConfigurationError(f"unknown policy {config.partner_policy!r}")
