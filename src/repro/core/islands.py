"""High-demand islands: detection, leader election, interconnection (§6).

The paper's §6 observes that fast consistency can create *islands*:
clusters of highly consistent high-demand replicas surrounded by
low-demand regions that slow inter-island propagation. It sketches the
remedy implemented here as the reproduction's extension feature:

1. **Detection** — nodes whose demand is at or above a percentile
   threshold, grouped into connected components of the induced subgraph
   (:func:`detect_islands`).
2. **Leader election** — per island, the highest-demand member (ties
   broken by lowest id), mirroring "a leader election algorithm for
   each island" (:func:`elect_leaders`).
3. **Interconnection** — leaders joined by overlay links whose latency
   reflects the underlying multi-hop path; leaders always fast-push new
   updates to each other, so updates hop valley-to-valley without
   waiting for low-demand ridges (:func:`bridge_system`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..demand.base import demand_percentile
from ..errors import ConfigurationError, ExperimentError
from ..topology.analysis import bfs_distances
from ..topology.graph import Topology
from .system import ReplicationSystem


@dataclass(frozen=True)
class Island:
    """One detected high-demand region."""

    index: int
    members: frozenset
    leader: int
    total_demand: float

    def __contains__(self, node: int) -> bool:
        return node in self.members


def detect_islands(
    topology: Topology,
    demand: Mapping[int, float],
    percentile: float = 75.0,
    min_size: int = 1,
) -> List[Set[int]]:
    """Connected components of the >= percentile-demand subgraph.

    Args:
        percentile: Nodes with demand at or above this percentile of the
            snapshot qualify as high-demand.
        min_size: Drop islands smaller than this many nodes.
    """
    if not demand:
        raise ExperimentError("empty demand snapshot")
    threshold = demand_percentile(dict(demand), percentile)
    hot = {node for node in topology.nodes if demand.get(node, 0.0) >= threshold}
    if not hot:
        return []
    sub = topology.subgraph(hot)
    return [c for c in sub.connected_components() if len(c) >= min_size]


def elect_leaders(
    islands: Sequence[Set[int]], demand: Mapping[int, float]
) -> List[Island]:
    """Deterministic leader election: max demand, ties to lowest id."""
    result = []
    for index, members in enumerate(islands):
        if not members:
            raise ExperimentError(f"island {index} is empty")
        leader = min(members, key=lambda n: (-demand.get(n, 0.0), n))
        result.append(
            Island(
                index=index,
                members=frozenset(members),
                leader=leader,
                total_demand=sum(demand.get(n, 0.0) for n in members),
            )
        )
    return result


def bridge_latency(
    topology: Topology, a: int, b: int, per_hop_delay: float
) -> float:
    """Latency of an overlay link: hop distance times per-hop delay."""
    distances = bfs_distances(topology, a)
    hops = distances.get(b)
    if hops is None:
        raise ExperimentError(f"no path between island leaders {a} and {b}")
    return hops * per_hop_delay


def plan_bridges(
    topology: Topology,
    islands: Sequence[Island],
    per_hop_delay: float,
) -> List[Tuple[int, int, float]]:
    """Overlay links forming a complete graph over island leaders.

    Island counts are small (a handful of valleys), so the complete
    interconnect is cheap and gives single-overlay-hop reach between any
    two islands, which is what §6 asks for ("all updates will reach very
    fast to any region with high demand").
    """
    bridges: List[Tuple[int, int, float]] = []
    leaders = [island.leader for island in islands]
    for i, a in enumerate(leaders):
        for b in leaders[i + 1 :]:
            if a == b:
                continue
            bridges.append((a, b, bridge_latency(topology, a, b, per_hop_delay)))
    return bridges


def bridge_system(
    system: ReplicationSystem,
    percentile: float = 75.0,
    min_size: int = 1,
    at_time: float = 0.0,
) -> List[Island]:
    """Detect islands in a built system and install leader bridges.

    Must be called after construction (and before or after ``start()``);
    requires the system's config to enable fast updates, because bridges
    ride the fast-update push path.

    Returns the detected islands (possibly a single one, in which case
    no bridges are installed but the island list is still returned).
    """
    if not system.config.fast_update:
        raise ConfigurationError("island bridging requires fast_update=True")
    snapshot = system.demand.snapshot(system.topology.nodes, at_time)
    raw = detect_islands(
        system.topology, snapshot, percentile=percentile, min_size=min_size
    )
    islands = elect_leaders(raw, snapshot)
    if len(islands) < 2:
        return islands
    per_hop = system.config.link_delay
    for a, b, delay in plan_bridges(system.topology, islands, per_hop):
        system.network.add_overlay_link(a, b, delay)
        system.nodes[a].add_bridge_targets([b])
        system.nodes[b].add_bridge_targets([a])
    return islands
