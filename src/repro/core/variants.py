"""Named protocol variants.

These constructors are the vocabulary of the evaluation; each returns a
validated :class:`~repro.core.config.ProtocolConfig`:

===============================  ==========================================
Constructor                      Paper reference
===============================  ==========================================
:func:`weak_consistency`         Golding's baseline [7]: random partner,
                                 no push — the "Weak consistency" curve.
:func:`high_demand_consistency`  Optimisation 1 only: demand-ordered
                                 partner selection (§2).
:func:`fast_consistency`         The full algorithm: ordered selection +
                                 immediate fast-update push (§2.1) — the
                                 "Fast Consistency" curve.
:func:`dynamic_fast_consistency` §4: fast consistency with neighbour
                                 tables maintained by periodic
                                 advertisements.
:func:`static_table_consistency` §3's straw man: fast consistency whose
                                 demand beliefs are frozen at t=0 and
                                 never refreshed — fails under change.
===============================  ==========================================
"""

from __future__ import annotations

from .config import (
    KNOWLEDGE_ADVERTISED,
    KNOWLEDGE_ORACLE,
    KNOWLEDGE_SNAPSHOT,
    POLICY_DEMAND,
    POLICY_RANDOM,
    ProtocolConfig,
)


def weak_consistency(**overrides) -> ProtocolConfig:
    """Golding's timestamped anti-entropy with random partner choice."""
    return ProtocolConfig(
        partner_policy=POLICY_RANDOM,
        fast_update=False,
        demand_knowledge=KNOWLEDGE_ORACLE,
    ).with_overrides(**overrides)


def high_demand_consistency(**overrides) -> ProtocolConfig:
    """Only the first optimisation: demand-ordered partner selection."""
    return ProtocolConfig(
        partner_policy=POLICY_DEMAND,
        fast_update=False,
        demand_knowledge=KNOWLEDGE_ORACLE,
    ).with_overrides(**overrides)


def fast_consistency(**overrides) -> ProtocolConfig:
    """The paper's algorithm: ordered selection + immediate push."""
    return ProtocolConfig(
        partner_policy=POLICY_DEMAND,
        fast_update=True,
        demand_knowledge=KNOWLEDGE_ORACLE,
    ).with_overrides(**overrides)


def push_only_consistency(**overrides) -> ProtocolConfig:
    """Only the second optimisation: random partners, push enabled.

    Not a paper variant — used by the ablation benchmark to separate
    the contribution of each optimisation.
    """
    return ProtocolConfig(
        partner_policy=POLICY_RANDOM,
        fast_update=True,
        demand_knowledge=KNOWLEDGE_ORACLE,
    ).with_overrides(**overrides)


def dynamic_fast_consistency(**overrides) -> ProtocolConfig:
    """§4's dynamic algorithm: beliefs from periodic advertisements."""
    return ProtocolConfig(
        partner_policy=POLICY_DEMAND,
        fast_update=True,
        demand_knowledge=KNOWLEDGE_ADVERTISED,
    ).with_overrides(**overrides)


def static_table_consistency(**overrides) -> ProtocolConfig:
    """§3's failing static algorithm: beliefs frozen at time zero."""
    return ProtocolConfig(
        partner_policy=POLICY_DEMAND,
        fast_update=True,
        demand_knowledge=KNOWLEDGE_SNAPSHOT,
    ).with_overrides(**overrides)


#: The three curves of Figs. 5-6, in plotting order.
FIGURE_VARIANTS = (
    ("weak", weak_consistency),
    ("high-demand", high_demand_consistency),
    ("fast", fast_consistency),
)
