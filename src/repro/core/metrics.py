"""Evaluation metrics.

Three families, matching the paper's measurements:

* **Convergence** — sessions (time units) until an update reaches a
  replica set: :class:`ConvergenceTracker` and the pure helpers
  :func:`reach_time` / :func:`coverage_fraction`. This is the metric of
  Figs. 5-6 ("the metric principle to be employed is how many sessions
  are necessary for a change brought about in a replica to be propagated
  to all the others").
* **Request satisfaction** — cumulative client requests served with
  updated content per elapsed session (Fig. 3):
  :func:`satisfied_requests_series`.
* **Traffic** — messages/bytes split into session vs fast-update
  categories (§8's "few additional bytes" claim): :class:`TrafficMeter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import ExperimentError
from ..replica.log import Update, UpdateId
from ..replica.messages import traffic_split
from ..sim.engine import Simulator
from ..sim.network import Network
from .system import TOPIC_UPDATE_APPLIED

#: The only trace categories any metric helper reads (everything else
#: the metrics consume arrives via the ``update.applied`` topic bus or
#: the network's traffic counters). Experiment assemblers use this to
#: ``enable_only`` exactly what the collectors need — see
#: :func:`repro.experiments.scenarios.build_system` — so sweeps do not
#: pay to store trace records nobody reads.
METRIC_TRACE_CATEGORIES: Tuple[str, ...] = ("fast.deliver",)


class ConvergenceTracker:
    """Records when each node first absorbs each update.

    Subscribe it to a simulator (it listens on the system's
    ``update.applied`` topic); afterwards query per-update times. The
    :class:`~repro.core.system.ReplicationSystem` also records times
    itself — this tracker exists for co-simulations with several
    systems or custom agents sharing one simulator, and to annotate the
    *source* (session vs fast) that delivered each update first.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._times: Dict[UpdateId, Dict[int, float]] = {}
        self._sources: Dict[UpdateId, Dict[int, str]] = {}
        sim.subscribe(TOPIC_UPDATE_APPLIED, self._on_applied)

    def _on_applied(
        self, node: int, updates: List[Update], source: str, time: float
    ) -> None:
        for update in updates:
            times = self._times.setdefault(update.uid, {})
            if node not in times:
                times[node] = time
                self._sources.setdefault(update.uid, {})[node] = source

    def times(self, uid: UpdateId) -> Dict[int, float]:
        """node -> first-application time (absent nodes never got it)."""
        return dict(self._times.get(uid, {}))

    def source_of(self, uid: UpdateId, node: int) -> Optional[str]:
        """How ``node`` first received ``uid``: client/session/fast."""
        return self._sources.get(uid, {}).get(node)

    def delivery_breakdown(self, uid: UpdateId) -> Dict[str, int]:
        """How many nodes first got the update via each channel."""
        counts: Dict[str, int] = {}
        for source in self._sources.get(uid, {}).values():
            counts[source] = counts.get(source, 0) + 1
        return counts


def reach_time(
    times: Mapping[int, float],
    nodes: Iterable[int],
    t0: float = 0.0,
) -> Optional[float]:
    """Sessions until every node in ``nodes`` had the update.

    Returns None when some node never received it (within the run).
    """
    worst = 0.0
    for node in nodes:
        at = times.get(int(node))
        if at is None:
            return None
        worst = max(worst, at - t0)
    return worst


def mean_reach_time(
    times: Mapping[int, float], nodes: Iterable[int], t0: float = 0.0
) -> Optional[float]:
    """Mean per-node sessions-to-consistency over ``nodes``."""
    deltas = []
    for node in nodes:
        at = times.get(int(node))
        if at is None:
            return None
        deltas.append(at - t0)
    if not deltas:
        raise ExperimentError("empty node set")
    return sum(deltas) / len(deltas)


def coverage_fraction(
    times: Mapping[int, float], nodes: Sequence[int], at: float, t0: float = 0.0
) -> float:
    """Fraction of ``nodes`` consistent within ``at`` sessions."""
    if not nodes:
        raise ExperimentError("empty node set")
    covered = sum(
        1
        for node in nodes
        if times.get(int(node)) is not None and times[int(node)] - t0 <= at
    )
    return covered / len(nodes)


def post_heal_convergence_time(
    times: Mapping[int, float],
    nodes: Iterable[int],
    heal_time: float,
) -> Optional[float]:
    """Sessions after a partition heals until every node has the update.

    Nodes that converged before (or at) ``heal_time`` contribute zero —
    the metric isolates the *recovery* cost the fault added, so an
    un-partitioned run scores 0.0. Returns None when some node never
    received the update within the run.
    """
    worst = 0.0
    for node in nodes:
        at = times.get(int(node))
        if at is None:
            return None
        worst = max(worst, at - heal_time)
    return max(0.0, worst)


def staleness_under_partition(
    times: Mapping[int, float],
    nodes: Sequence[int],
    start: float,
    heal: float,
) -> float:
    """Mean per-node stale time within the partition window ``[start, heal]``.

    A node is stale from ``start`` (or from the write, if later — times
    before ``start`` contribute nothing) until it first applies the
    update; a node that only converges after the heal — or never — is
    stale for the whole window. The result is in session-time units,
    bounded by ``heal - start``; lower is better, and the gap between
    variants quantifies how much demand-ordering buys while the network
    is split.
    """
    if not nodes:
        raise ExperimentError("empty node set")
    if heal <= start:
        raise ExperimentError(f"empty partition window [{start}, {heal}]")
    total = 0.0
    for node in nodes:
        at = times.get(int(node))
        stale_until = heal if at is None else min(max(at, start), heal)
        total += stale_until - start
    return total / len(nodes)


def satisfied_requests_series(
    times: Mapping[int, float],
    demand: "Mapping[int, float] | DemandModel",
    horizon: int,
    t0: float = 0.0,
    nodes: Optional[Sequence[int]] = None,
) -> List[float]:
    """Fig. 3's series: requests served with consistent content per step.

    Element ``k`` (k = 1..horizon) is the total demand (requests per
    session time) of the replicas that were already consistent at
    session ``k`` — i.e. the number of requests satisfied with updated
    content during that unit interval.

    ``demand`` is either a static ``node -> rate`` mapping or a
    :class:`~repro.demand.base.DemandModel`, re-evaluated at the end of
    each step (``t0 + k``) so flash crowds and demand shocks are
    measured against the rates in force *during* the run rather than a
    frozen pre-shock snapshot. The model form requires ``nodes`` (a
    model has no node set of its own); with a mapping and no ``nodes``
    the historical code path runs unchanged.
    """
    if horizon < 1:
        raise ExperimentError(f"horizon must be >= 1, got {horizon}")
    if isinstance(demand, Mapping):
        if nodes is None:
            series = []
            for step in range(1, horizon + 1):
                total = 0.0
                for node, rate in demand.items():
                    at = times.get(int(node))
                    if at is not None and at - t0 <= step:
                        total += rate
                series.append(total)
            return series
        rate_at = lambda node, time: demand.get(node, 0.0)  # noqa: E731
    else:
        if nodes is None:
            raise ExperimentError(
                "satisfied_requests_series needs an explicit node set "
                "when demand is a model"
            )
        rate_at = demand.demand
    node_ids = [int(n) for n in nodes]
    series = []
    for step in range(1, horizon + 1):
        total = 0.0
        for node in node_ids:
            at = times.get(node)
            if at is not None and at - t0 <= step:
                total += rate_at(node, t0 + step)
        series.append(total)
    return series


def cascade_hops(tracer) -> List[int]:
    """Push-cascade depths observed in a trace.

    One entry per fast-update delivery: how many push hops the updates
    had travelled when they arrived (1 = delivered by the write's own
    origin). Requires tracing to be enabled during the run; the §2
    "valley flooding" claim predicts depths well beyond 1 on demand
    slopes.
    """
    return [int(rec.get("hops", 0)) for rec in tracer.select("fast.deliver")]


def cascade_histogram(tracer) -> Dict[int, int]:
    """Histogram of :func:`cascade_hops` (depth -> deliveries)."""
    histogram: Dict[int, int] = {}
    for hops in cascade_hops(tracer):
        histogram[hops] = histogram.get(hops, 0) + 1
    return histogram


@dataclass(frozen=True)
class TrafficReport:
    """Measured traffic of one run, split by protocol part."""

    messages_total: int
    bytes_total: int
    messages_session: int
    messages_fast: int
    messages_other: int
    bytes_session: int
    bytes_fast: int
    bytes_other: int

    @property
    def fast_byte_overhead(self) -> float:
        """Fast-update bytes as a fraction of total bytes."""
        if self.bytes_total == 0:
            return 0.0
        return self.bytes_fast / self.bytes_total


class TrafficMeter:
    """Reads a network's counters into a :class:`TrafficReport`."""

    def __init__(self, network: Network):
        self.network = network

    def report(self) -> TrafficReport:
        counters = self.network.counters
        msg_groups = traffic_split(counters.by_kind)
        byte_groups = traffic_split(counters.bytes_by_kind)
        return TrafficReport(
            messages_total=counters.messages_sent,
            bytes_total=counters.bytes_sent,
            messages_session=msg_groups["session"],
            messages_fast=msg_groups["fast"],
            messages_other=msg_groups["other"],
            bytes_session=byte_groups["session"],
            bytes_fast=byte_groups["fast"],
            bytes_other=byte_groups["other"],
        )
