"""Synchronous (strong-consistency) replication baseline.

The paper's introduction motivates weak consistency by the cost of
strong consistency: "costly, non-scalable on networks, not very
reliable, generate considerable latency and a great deal of traffic"
(§1). This module implements a minimal synchronous primary-copy scheme
so the `strongcost` benchmark can *measure* those claims instead of
quoting them:

* a client write at the origin floods a *prepare* wave down a BFS
  spanning tree, acks aggregate back up, and the write **commits only
  when every replica acked** — then a commit wave applies the value;
* write latency is therefore ~2 tree depths of link delay before the
  origin can even answer its client, versus zero for weak consistency;
* every write costs exactly ``3 * (N - 1)`` messages, versus the
  constant per-session cost of anti-entropy;
* any lost message stalls the whole write (a timeout marks it failed),
  which is the non-reliability claim.

The spanning tree is computed by the coordinator from global membership
(standard for 2PC-style systems); only data-plane messages are counted
as traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError, SimulationError
from ..replica.log import Update
from ..replica.server import ReplicaServer
from ..replica.timestamps import Timestamp
from ..runtime.simulation import SimRuntime
from ..sim.engine import Simulator
from ..sim.network import FixedLatency, LatencyModel, Network
from ..topology.analysis import bfs_distances
from ..topology.graph import Topology

HEADER_BYTES = 20


@dataclass(frozen=True)
class StrongPrepare:
    """Prepare wave carrying the update body down the tree."""

    write_id: int
    update: Update

    kind = "strong-prepare"

    def size_bytes(self) -> int:
        return HEADER_BYTES + self.update.size_bytes()


@dataclass(frozen=True)
class StrongAck:
    """Aggregated acknowledgement travelling up the tree."""

    write_id: int
    sender: int

    kind = "strong-ack"

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class StrongCommit:
    """Commit wave making the value visible everywhere."""

    write_id: int

    kind = "strong-commit"

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass
class _WriteState:
    """Coordinator-side state for one in-flight write."""

    write_id: int
    origin: int
    update: Update
    children: Dict[int, List[int]]
    parents: Dict[int, int]
    started_at: float
    pending: Dict[int, int] = field(default_factory=dict)
    committed_at: Optional[float] = None
    failed: bool = False


class StrongConsistencySystem:
    """A synchronous replication deployment over a topology.

    Use :meth:`write` to start a write; run the simulator; inspect
    :attr:`latencies`, :attr:`failed_writes` and the network counters.
    """

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        link_delay: float = 0.02,
        write_timeout: float = 10.0,
        loss: float = 0.0,
        sim: Optional[Simulator] = None,
    ):
        if not topology.is_connected():
            raise ConfigurationError("strong consistency needs a connected topology")
        if write_timeout <= 0:
            raise ConfigurationError("write_timeout must be positive")
        self.topology = topology
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.network = Network(
            self.sim,
            topology,
            latency=latency if latency is not None else FixedLatency(link_delay),
            loss=loss,
        )
        #: Runtime port adapter (clock + transport) used for all
        #: scheduling and sends, mirroring the weak-consistency stack.
        self.runtime = SimRuntime(self.sim, self.network)
        self.servers: Dict[int, ReplicaServer] = {}
        self.write_timeout = write_timeout
        self._writes: Dict[int, _WriteState] = {}
        self._next_write_id = 1
        self._next_seq: Dict[int, int] = {}
        self.latencies: List[float] = []
        self.failed_writes = 0
        for node in topology.nodes:
            self.servers[node] = ReplicaServer(node)
            self.runtime.transport.attach(node, self._make_handler(node))

    # -- write path -------------------------------------------------------

    def write(self, origin: int, key: str = "content", value: object = "v1") -> int:
        """Start a synchronous write at ``origin``; returns the write id."""
        if origin not in self.servers:
            raise SimulationError(f"unknown node {origin}")
        tree = self._spanning_tree(origin)
        children, parents = tree
        seq = self._next_seq.get(origin, 0) + 1
        self._next_seq[origin] = seq
        update = Update(
            origin=origin,
            seq=seq,
            timestamp=Timestamp(counter=seq, node=origin),
            key=key,
            value=value,
        )
        state = _WriteState(
            write_id=self._next_write_id,
            origin=origin,
            update=update,
            children=children,
            parents=parents,
            started_at=self.runtime.now,
        )
        self._next_write_id += 1
        self._writes[state.write_id] = state
        state.pending = {node: len(kids) for node, kids in children.items()}
        self.runtime.schedule(self.write_timeout, self._timeout, state.write_id)
        kids = children.get(origin, [])
        if not kids:
            self._commit(state)
            return state.write_id
        message = StrongPrepare(state.write_id, update)
        for child in kids:
            self.runtime.transport.send(origin, child, message)
        return state.write_id

    def _spanning_tree(
        self, root: int
    ) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
        """BFS children/parents maps rooted at ``root``."""
        distances = bfs_distances(self.topology, root)
        parents: Dict[int, int] = {}
        children: Dict[int, List[int]] = {node: [] for node in self.topology.nodes}
        for node in sorted(distances, key=lambda n: (distances[n], n)):
            if node == root:
                continue
            # Parent: any neighbour one hop closer (lowest id for determinism).
            candidates = [
                nbr
                for nbr in self.topology.neighbors(node)
                if distances.get(nbr, 1 << 30) == distances[node] - 1
            ]
            parent = min(candidates)
            parents[node] = parent
            children[parent].append(node)
        return children, parents

    # -- message handling --------------------------------------------------

    def _make_handler(self, node: int):
        def handler(src: int, message: object) -> None:
            if isinstance(message, StrongPrepare):
                self._on_prepare(node, message)
            elif isinstance(message, StrongAck):
                self._on_ack(node, message)
            elif isinstance(message, StrongCommit):
                self._on_commit(node, message)
            else:
                raise SimulationError(f"unexpected strong message {message!r}")

        return handler

    def _on_prepare(self, node: int, message: StrongPrepare) -> None:
        state = self._writes.get(message.write_id)
        if state is None or state.failed:
            return
        kids = state.children.get(node, [])
        if not kids:
            self.runtime.transport.send(node, state.parents[node], StrongAck(state.write_id, node))
            return
        for child in kids:
            self.runtime.transport.send(node, child, message)

    def _on_ack(self, node: int, message: StrongAck) -> None:
        state = self._writes.get(message.write_id)
        if state is None or state.failed:
            return
        state.pending[node] -= 1
        if state.pending[node] > 0:
            return
        if node == state.origin:
            self._commit(state)
        else:
            self.runtime.transport.send(node, state.parents[node], StrongAck(state.write_id, node))

    def _commit(self, state: _WriteState) -> None:
        state.committed_at = self.runtime.now
        self.latencies.append(state.committed_at - state.started_at)
        self.servers[state.origin].integrate([state.update], "session")
        for child in state.children.get(state.origin, []):
            self.runtime.transport.send(state.origin, child, StrongCommit(state.write_id))

    def _on_commit(self, node: int, message: StrongCommit) -> None:
        state = self._writes.get(message.write_id)
        if state is None or state.failed:
            return
        self.servers[node].integrate([state.update], "session")
        for child in state.children.get(node, []):
            self.runtime.transport.send(node, child, message)

    def _timeout(self, write_id: int) -> None:
        state = self._writes.get(write_id)
        if state is None or state.committed_at is not None:
            return
        state.failed = True
        self.failed_writes += 1

    # -- queries ------------------------------------------------------------

    def committed(self, write_id: int) -> bool:
        state = self._writes.get(write_id)
        return state is not None and state.committed_at is not None

    def expected_messages_per_write(self) -> int:
        """The analytic 3(N-1) cost: prepare + ack + commit per edge."""
        return 3 * (self.topology.num_nodes - 1)
