"""The paper's contribution: demand-driven anti-entropy replication.

Public surface:

* :class:`ReplicationSystem` — build and run a whole replicated system.
* :mod:`repro.core.variants` — the named protocol configurations
  (weak / high-demand / fast / dynamic / static-table).
* :mod:`repro.core.metrics` — convergence, request-satisfaction and
  traffic measurements.
* :mod:`repro.core.islands` — the §6 extension (leader-bridged islands).
* :mod:`repro.core.strong` — the synchronous cost comparator.
"""

from .acking import AckManager
from .antientropy import AntiEntropyAgent, SessionState, SessionStats
from .config import (
    INTERVAL_EXPONENTIAL,
    INTERVAL_UNIFORM,
    KNOWLEDGE_ADVERTISED,
    KNOWLEDGE_ORACLE,
    KNOWLEDGE_SNAPSHOT,
    POLICY_DEMAND,
    POLICY_RANDOM,
    POLICY_ROUND_ROBIN,
    POLICY_WEIGHTED,
    PUSH_ALWAYS,
    PUSH_DOWNHILL,
    ProtocolConfig,
)
from .fastupdate import FastUpdateAgent, FastUpdateStats
from .islands import (
    Island,
    bridge_latency,
    bridge_system,
    detect_islands,
    elect_leaders,
    plan_bridges,
)
from .metrics import (
    ConvergenceTracker,
    cascade_histogram,
    cascade_hops,
    TrafficMeter,
    TrafficReport,
    coverage_fraction,
    mean_reach_time,
    reach_time,
    satisfied_requests_series,
)
from .policies import (
    DemandOrderedPolicy,
    PartnerSelectionPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedRandomPolicy,
    make_policy,
)
from .protocol import ReplicationNode
from .strong import StrongConsistencySystem
from .system import TOPIC_UPDATE_APPLIED, ReplicationSystem, build_node_stack
from .variants import (
    FIGURE_VARIANTS,
    dynamic_fast_consistency,
    fast_consistency,
    high_demand_consistency,
    push_only_consistency,
    static_table_consistency,
    weak_consistency,
)

__all__ = [
    "ProtocolConfig",
    "ReplicationSystem",
    "ReplicationNode",
    "build_node_stack",
    "TOPIC_UPDATE_APPLIED",
    # config constants
    "POLICY_RANDOM",
    "POLICY_DEMAND",
    "POLICY_ROUND_ROBIN",
    "POLICY_WEIGHTED",
    "KNOWLEDGE_ORACLE",
    "KNOWLEDGE_SNAPSHOT",
    "KNOWLEDGE_ADVERTISED",
    "PUSH_DOWNHILL",
    "PUSH_ALWAYS",
    "INTERVAL_EXPONENTIAL",
    "INTERVAL_UNIFORM",
    # variants
    "weak_consistency",
    "high_demand_consistency",
    "fast_consistency",
    "push_only_consistency",
    "dynamic_fast_consistency",
    "static_table_consistency",
    "FIGURE_VARIANTS",
    # agents
    "AckManager",
    "AntiEntropyAgent",
    "SessionState",
    "SessionStats",
    "FastUpdateAgent",
    "FastUpdateStats",
    # policies
    "PartnerSelectionPolicy",
    "RandomPolicy",
    "DemandOrderedPolicy",
    "RoundRobinPolicy",
    "WeightedRandomPolicy",
    "make_policy",
    # metrics
    "ConvergenceTracker",
    "cascade_hops",
    "cascade_histogram",
    "reach_time",
    "mean_reach_time",
    "coverage_fraction",
    "satisfied_requests_series",
    "TrafficMeter",
    "TrafficReport",
    # islands
    "Island",
    "detect_islands",
    "elect_leaders",
    "plan_bridges",
    "bridge_latency",
    "bridge_system",
    # strong baseline
    "StrongConsistencySystem",
]
