"""Protocol configuration.

One :class:`ProtocolConfig` describes a complete protocol variant; the
named constructors in :mod:`repro.core.variants` produce the four
configurations the paper discusses (weak, demand-ordered, fast, dynamic
fast). Keeping every switch in one frozen dataclass makes ablations
explicit: each benchmark states exactly which knobs it turns.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..errors import ConfigurationError

#: Partner-selection policies (see :mod:`repro.core.policies`).
POLICY_RANDOM = "random"
POLICY_DEMAND = "demand"
POLICY_ROUND_ROBIN = "round-robin"
POLICY_WEIGHTED = "weighted-random"
_POLICIES = (POLICY_RANDOM, POLICY_DEMAND, POLICY_ROUND_ROBIN, POLICY_WEIGHTED)

#: How nodes know neighbour demand (see :mod:`repro.demand.views`).
KNOWLEDGE_ORACLE = "oracle"
KNOWLEDGE_SNAPSHOT = "snapshot"
KNOWLEDGE_ADVERTISED = "advertised"
_KNOWLEDGE = (KNOWLEDGE_ORACLE, KNOWLEDGE_SNAPSHOT, KNOWLEDGE_ADVERTISED)

#: Fast-update push rules.
PUSH_DOWNHILL = "downhill"  # only to neighbours with strictly higher demand
PUSH_ALWAYS = "always"  # to the top-demand neighbours unconditionally
_PUSH_RULES = (PUSH_DOWNHILL, PUSH_ALWAYS)

#: Inter-session gap distributions.
INTERVAL_EXPONENTIAL = "exponential"
INTERVAL_UNIFORM = "uniform"  # uniform in [0.5, 1.5] * mean
_INTERVALS = (INTERVAL_EXPONENTIAL, INTERVAL_UNIFORM)

#: Write-log truncation modes (the Bayou policy family of §7).
TRUNCATION_KEEP_ALL = "keep-all"
TRUNCATION_ACKED = "acked"  # Golding ack vectors, gossiped in sessions
TRUNCATION_MAX_ENTRIES = "max-entries"  # aggressive; may refuse peers
_TRUNCATIONS = (TRUNCATION_KEEP_ALL, TRUNCATION_ACKED, TRUNCATION_MAX_ENTRIES)


@dataclass(frozen=True)
class ProtocolConfig:
    """Every knob of the replication protocol stack.

    Attributes:
        partner_policy: How a node picks its anti-entropy partner.
            ``"random"`` is Golding's baseline; ``"demand"`` is the
            paper's ordered selection (optimisation 1).
        fast_update: Enable the immediate push of steps 13-18
            (optimisation 2).
        fast_fanout: How many top-demand neighbours receive each offer.
        push_rule: ``"downhill"`` pushes only toward strictly higher
            demand (the valley-flooding cascade); ``"always"`` pushes to
            the top-``fanout`` neighbours regardless (ablation).
        demand_knowledge: Oracle, frozen snapshot (§3 static straw man)
            or advertisement-maintained tables (§4 dynamic algorithm).
        advert_period: Advertisement round period when advertised.
        session_interval_mean: Mean gap between a node's session
            initiations; this is the paper's time unit ("average session
            times").
        session_interval_distribution: Gap distribution.
        session_timeout: Abort an unfinished session after this long
            (loss tolerance).
        refuse_when_busy: When True a node already in a session answers
            new requests with BUSY (Golding allows refusal).
        link_delay: Default one-way message latency, in session units.
        update_payload_bytes: Payload size stamped on client writes.
        log_truncation: Write-log truncation mode: ``"keep-all"``
            (default, the paper's setting), ``"acked"`` (Golding ack
            vectors gossiped with sessions — safe) or ``"max-entries"``
            (aggressive bound; sessions with peers that need purged
            history are refused with an abort).
        max_log_entries: Log bound for the ``"max-entries"`` mode.
    """

    partner_policy: str = POLICY_RANDOM
    fast_update: bool = False
    fast_fanout: int = 1
    push_rule: str = PUSH_DOWNHILL
    demand_knowledge: str = KNOWLEDGE_ORACLE
    advert_period: float = 1.0
    session_interval_mean: float = 1.0
    session_interval_distribution: str = INTERVAL_EXPONENTIAL
    session_timeout: float = 0.5
    refuse_when_busy: bool = False
    link_delay: float = 0.02
    update_payload_bytes: int = 256
    log_truncation: str = TRUNCATION_KEEP_ALL
    max_log_entries: int = 1000

    def validate(self) -> "ProtocolConfig":
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.partner_policy not in _POLICIES:
            raise ConfigurationError(
                f"unknown partner_policy {self.partner_policy!r}; "
                f"expected one of {_POLICIES}"
            )
        if self.demand_knowledge not in _KNOWLEDGE:
            raise ConfigurationError(
                f"unknown demand_knowledge {self.demand_knowledge!r}; "
                f"expected one of {_KNOWLEDGE}"
            )
        if self.push_rule not in _PUSH_RULES:
            raise ConfigurationError(
                f"unknown push_rule {self.push_rule!r}; expected one of {_PUSH_RULES}"
            )
        if self.session_interval_distribution not in _INTERVALS:
            raise ConfigurationError(
                f"unknown interval distribution "
                f"{self.session_interval_distribution!r}"
            )
        if self.fast_fanout < 1:
            raise ConfigurationError(f"fast_fanout must be >= 1, got {self.fast_fanout}")
        if self.session_interval_mean <= 0:
            raise ConfigurationError("session_interval_mean must be positive")
        if self.session_timeout <= 0:
            raise ConfigurationError("session_timeout must be positive")
        if self.advert_period <= 0:
            raise ConfigurationError("advert_period must be positive")
        if self.link_delay < 0:
            raise ConfigurationError("link_delay must be >= 0")
        if self.link_delay >= self.session_interval_mean:
            raise ConfigurationError(
                "link_delay must be well below the session interval; "
                f"got {self.link_delay} vs {self.session_interval_mean}"
            )
        if self.update_payload_bytes < 0:
            raise ConfigurationError("update_payload_bytes must be >= 0")
        if self.log_truncation not in _TRUNCATIONS:
            raise ConfigurationError(
                f"unknown log_truncation {self.log_truncation!r}; "
                f"expected one of {_TRUNCATIONS}"
            )
        if self.max_log_entries < 1:
            raise ConfigurationError("max_log_entries must be >= 1")
        return self

    def with_overrides(self, **changes) -> "ProtocolConfig":
        """A copy with ``changes`` applied (validated)."""
        return replace(self, **changes).validate()

    def describe(self) -> str:
        """Short human-readable variant label for reports."""
        parts = [self.partner_policy]
        if self.fast_update:
            parts.append(f"fast({self.push_rule},k={self.fast_fanout})")
        parts.append(self.demand_knowledge)
        return "+".join(parts)
