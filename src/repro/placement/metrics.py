"""Placement-aware evaluation metrics.

:func:`repro.core.metrics.satisfied_requests_series` counts a site's
whole demand as satisfied the moment the site is consistent — replicas
have unbounded capacity there, so adding copies can never help and an
autoscaler can never win. This module adds the capacity-aware variant:
each consistent replica serves at most ``capacity`` requests per step,
so a site's satisfied demand is ``min(demand, capacity * serving)``
where *serving* counts the site itself plus every live,
already-consistent extra copy the controller has spawned for it. Under
a flash crowd the static system saturates at ``capacity`` per site
while the autoscaled one grows ``serving`` — the satisfaction delta is
the controller's measured benefit, and the placement traffic helper
prices what it cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..sim.network import Network
from ..telemetry.moments import RunningMoments
from ..telemetry.sketch import DEFAULT_K, QuantileSketch
from .messages import DemandReport, PlacementAck, PlacementCommand

#: Event tuples as recorded by the controller: (time, kind, site, replica).
Event = Tuple[float, str, int, int]


def _replica_windows(
    events: Sequence[Event],
) -> Dict[int, List[Tuple[float, float, int]]]:
    """Per site: ``(start, end, replica)`` lifetimes of its extra copies.

    A copy not (yet) retired is open-ended (``end = inf``).
    """
    windows: Dict[int, List[Tuple[float, float, int]]] = {}
    open_spawns: Dict[int, Tuple[float, int]] = {}
    for time, kind, site, replica in events:
        if kind == "spawn":
            open_spawns[replica] = (float(time), int(site))
        elif kind == "retire":
            start, spawn_site = open_spawns.pop(replica)
            windows.setdefault(spawn_site, []).append(
                (start, float(time), int(replica))
            )
        else:
            raise ExperimentError(f"unknown placement event kind {kind!r}")
    for replica, (start, site) in open_spawns.items():
        windows.setdefault(site, []).append((start, math.inf, replica))
    return windows


def capacity_satisfied_series(
    times: Mapping[int, float],
    demand: "Mapping[int, float] | DemandModel",
    horizon: int,
    sites: Sequence[int],
    capacity: float,
    events: Sequence[Event] = (),
    t0: float = 0.0,
) -> List[float]:
    """Fig. 3's series under a finite per-replica serving capacity.

    Element ``k`` (k = 1..horizon) sums, over ``sites``,
    ``min(demand(site, t0 + k), capacity * serving)`` where *serving*
    counts the site itself (if consistent by step ``k``, same rule as
    :func:`~repro.core.metrics.satisfied_requests_series`) plus every
    controller-spawned copy that is alive at ``t0 + k`` and itself
    consistent by then. With ``events=()`` this is the static-placement
    baseline.
    """
    if horizon < 1:
        raise ExperimentError(f"horizon must be >= 1, got {horizon}")
    if capacity <= 0:
        raise ExperimentError(f"capacity must be > 0, got {capacity}")
    if not sites:
        raise ExperimentError("empty site set")
    if isinstance(demand, Mapping):
        rate_at = lambda node, time: demand.get(node, 0.0)  # noqa: E731
    else:
        rate_at = demand.demand
    windows = _replica_windows(events)
    site_ids = [int(s) for s in sites]
    series: List[float] = []
    for step in range(1, horizon + 1):
        at_time = t0 + step
        total = 0.0
        for site in site_ids:
            applied = times.get(site)
            serving = 1 if applied is not None and applied - t0 <= step else 0
            for start, end, replica in windows.get(site, ()):
                if not start <= at_time < end:
                    continue
                copy_applied = times.get(replica)
                if copy_applied is not None and copy_applied - t0 <= step:
                    serving += 1
            if serving:
                total += min(rate_at(site, at_time), capacity * serving)
        series.append(total)
    return series


def replica_count_series(
    events: Sequence[Event], horizon: int, t0: float = 0.0
) -> List[int]:
    """Extra copies alive at each step — the replica-count trajectory.

    Element ``k`` (k = 1..horizon) counts the controller-spawned copies
    whose lifetime covers ``t0 + k``; a scale-up then scale-down run
    shows as a rise and fall.
    """
    if horizon < 1:
        raise ExperimentError(f"horizon must be >= 1, got {horizon}")
    windows = _replica_windows(events)
    series: List[int] = []
    for step in range(1, horizon + 1):
        at_time = t0 + step
        count = sum(
            1
            for site_windows in windows.values()
            for start, end, _ in site_windows
            if start <= at_time < end
        )
        series.append(count)
    return series


@dataclass(frozen=True)
class SeriesSummary:
    """Streaming summary of one metric series: moments + tail quantiles.

    Built by :func:`summarize_series` from a
    :class:`~repro.telemetry.sketch.QuantileSketch` and
    :class:`~repro.telemetry.moments.RunningMoments`, so p95/p99 gates
    (the chaos bench, placement satisfaction checks) read certified
    streaming quantiles instead of each call site sorting its own
    ad-hoc list.  ``error_fraction`` is the sketch's self-certified
    rank-error bound; with fewer than ``k`` observations the quantiles
    are exact and it is 0.
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    quantiles: Dict[float, float]
    error_fraction: float

    def quantile(self, p: float) -> float:
        try:
            return self.quantiles[p]
        except KeyError:
            raise ExperimentError(
                f"quantile {p} not summarised; have {sorted(self.quantiles)}"
            ) from None


def summarize_series(
    values: Sequence[float],
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
    k: int = DEFAULT_K,
) -> SeriesSummary:
    """Fold ``values`` through the telemetry primitives and summarise.

    One pass, O(k log(n/k)) memory; the returned quantiles carry the
    sketch's certified rank-error bound (0 below ``k`` values).
    """
    if not values:
        raise ExperimentError("cannot summarise an empty series")
    moments = RunningMoments()
    sketch = QuantileSketch(k=k)
    for value in values:
        value = float(value)
        moments.add(value)
        sketch.add(value)
    return SeriesSummary(
        count=moments.count,
        mean=moments.mean,
        minimum=moments.minimum,
        maximum=moments.maximum,
        quantiles={float(p): sketch.quantile(float(p)) for p in quantiles},
        error_fraction=sketch.error_fraction(),
    )


@dataclass(frozen=True)
class PlacementTraffic:
    """Control-loop traffic: what closing the loop cost on the wire."""

    report_messages: int
    command_messages: int
    report_bytes: int
    command_bytes: int
    ack_messages: int = 0
    ack_bytes: int = 0

    @property
    def messages(self) -> int:
        return self.report_messages + self.command_messages + self.ack_messages

    @property
    def bytes(self) -> int:
        return self.report_bytes + self.command_bytes + self.ack_bytes

    def overhead_fraction(self, total_bytes: int) -> float:
        """Placement bytes as a fraction of all bytes sent."""
        if total_bytes <= 0:
            return 0.0
        return self.bytes / total_bytes


def placement_traffic(network: Network) -> PlacementTraffic:
    """Read the placement kinds out of a network's traffic counters."""
    counters = network.counters
    return PlacementTraffic(
        report_messages=counters.by_kind.get(DemandReport.kind, 0),
        command_messages=counters.by_kind.get(PlacementCommand.kind, 0),
        report_bytes=counters.bytes_by_kind.get(DemandReport.kind, 0),
        command_bytes=counters.bytes_by_kind.get(PlacementCommand.kind, 0),
        ack_messages=counters.by_kind.get(PlacementAck.kind, 0),
        ack_bytes=counters.bytes_by_kind.get(PlacementAck.kind, 0),
    )
