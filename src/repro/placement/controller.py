"""The demand-driven replica autoscaler (closing the paper's loop).

The paper's premise is that demand should drive replication; this
controller closes the loop at system level. One node (the *home*, by
convention the write origin) runs a Dealer-style cycle:

1. **update popularity** — every site periodically reports its own
   demand to the home over real (metered) network messages; the
   controller smooths the reports with an EWMA;
2. **compute copy list** — a pluggable
   :class:`~repro.placement.policies.PlacementPolicy` maps popularity
   to a target number of extra copies per site;
3. **commit copies** — the home sends :class:`PlacementCommand`
   messages to sites whose target changed; on arrival the site spawns
   replicas through :meth:`ReplicationSystem.add_replica` (a real
   anti-entropy bootstrap against a donor chosen by the configured
   :class:`~repro.replica.creation.DonorSelectionPolicy`) or retires
   its most recent copies through
   :meth:`ReplicationSystem.retire_replica`.

Nothing here is free: reports and commands ride the network (overlay
links where home and site are not physically adjacent, with a delay
proportional to their hop distance), and every bootstrap pays full
anti-entropy message/byte cost. All iteration is in sorted order and
all ids derive from the base topology, so serial and process-pool runs
are bit-identical.

The control plane survives its own failures:

* every report and command carries a per-site sequence number — the
  controller drops stale reports (a reordered network must not roll
  popularity backwards) and sites apply each command seq at most once,
  re-acking duplicates without re-executing;
* unacknowledged commands are retried with exponential backoff (a
  lossy network eats the command or the ack; either way the retry is
  idempotent);
* the controller checkpoints its EWMA popularity and sequence state at
  the end of every cycle.  When its home node is crashed by a fault
  the volatile state is lost; on recovery the next cycle restores the
  checkpoint instead of re-learning demand from scratch — which is
  what keeps a controller crash mid-flash-crowd cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..replica.creation import (
    DonorSelectionPolicy,
    FreshestDonor,
    MostCompleteLog,
    NearestDonor,
    WeightedDonorScore,
)
from ..core.system import ReplicationSystem
from ..demand.views import DemandTable
from ..topology.analysis import bfs_distances
from .messages import DemandReport, PlacementAck, PlacementCommand
from .policies import PlacementSetup, build_policy

#: A controller event: ``(time, kind, site, replica)`` with kind in
#: {"spawn", "retire"} — the raw material of the replica-count
#: trajectory and the capacity-aware satisfaction metric.
PlacementEvent = Tuple[float, str, int, int]

_DONORS = {
    "most-complete": MostCompleteLog,
    "nearest": NearestDonor,
    "freshest": FreshestDonor,
    "weighted": WeightedDonorScore,
}

#: How many of a site's physical neighbours join a spawn's attach set
#: (donor-selection candidates beyond the site itself).
ATTACH_NEIGHBORS = 2

#: First command-retry timeout, as a fraction of the cycle period;
#: doubles per attempt (exponential backoff).
COMMAND_RETRY_TIMEOUT_FACTOR = 0.5
#: Retries per command before giving up (the next cycle recomputes the
#: target anyway, so giving up is safe).
COMMAND_MAX_RETRIES = 4


class PlacementController:
    """Runs the placement loop on one :class:`ReplicationSystem`.

    Args:
        system: The system to autoscale (not yet started).
        setup: Placement knobs; ``setup.policy`` must name a control
            policy (``"static"`` setups never build a controller).
        home: Node hosting the controller (conventionally the write
            origin).
        sites: Sites observed and scaled (default: the base topology's
            nodes at construction time).
    """

    def __init__(
        self,
        system: ReplicationSystem,
        setup: PlacementSetup,
        home: int,
        sites: Optional[Sequence[int]] = None,
    ):
        setup.validate()
        self.system = system
        self.setup = setup
        self.home = int(home)
        source = system.topology.nodes if sites is None else sites
        self.sites: Tuple[int, ...] = tuple(sorted(int(s) for s in source))
        if self.home not in system.servers:
            raise ConfigurationError(f"home node {self.home} does not exist")
        for site in self.sites:
            if site not in system.servers:
                raise ConfigurationError(f"site {site} does not exist")
        self.policy = build_policy(setup)
        self.donor_policy: DonorSelectionPolicy = _DONORS[setup.donor]()
        #: Observed (reported) demand per site.
        self.table = DemandTable()
        #: EWMA-smoothed popularity per site.
        self.popularity: Dict[int, float] = {}
        #: Extra copies currently running per site (spawn order).
        self.copies: Dict[int, List[int]] = {s: [] for s in self.sites}
        #: Spawn/retire history, for metrics.
        self.events: List[PlacementEvent] = []
        self.cycles_run = 0
        self.reports_received = 0
        self.reports_stale = 0
        self.commands_sent = 0
        self.commands_retried = 0
        self.acks_received = 0
        self.crashes = 0
        self.restores = 0
        self.spawned_total = 0
        self.retired_total = 0
        self.peak_copies = 0
        self._next_id = max(system.topology.nodes) + 1
        self._started = False
        # -- sequencing state (see module docstring) ----------------------
        #: Per-site seq of the site's next demand report (site-side).
        self._report_seq: Dict[int, int] = {}
        #: Newest report seq folded per site (controller-side).
        self._last_report_seq: Dict[int, int] = {}
        #: Seq of the last command issued per site (controller-side).
        self._cmd_seq: Dict[int, int] = {}
        #: Seq of the last command *applied* per site (site-side).
        self._site_applied_seq: Dict[int, int] = {}
        #: site -> unacknowledged command seq (retry loop watches this).
        self._outstanding: Dict[int, int] = {}
        # -- crash / checkpoint state -------------------------------------
        self._crashed = False
        #: Durable snapshot written at the end of each cycle; what a
        #: recovering controller resumes from.
        self._checkpoint: Optional[Dict[str, Dict[int, object]]] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Wire handlers, overlay links, reporters, and the first cycle."""
        if self._started:
            raise ConfigurationError("placement controller already started")
        self._started = True
        runtime = self.system.runtime
        network = self.system.network
        topology = self.system.topology
        hops = bfs_distances(topology, self.home)
        link_delay = self.system.config.link_delay
        self.system.nodes[self.home]._dispatch[DemandReport] = self._handle_report
        self.system.nodes[self.home]._dispatch[PlacementAck] = self._handle_ack
        for site in self.sites:
            self.system.nodes[site]._dispatch[PlacementCommand] = self._handle_command
            if site == self.home:
                continue
            if not topology.has_edge(site, self.home):
                # Multi-hop control tunnel: delay grows with distance,
                # so far-away sites observe and react later.
                network.add_overlay_link(
                    self.home, site, link_delay * max(1, hops.get(site, 1))
                )
            rng = runtime.rng.stream("placement-report", site)
            first = rng.uniform(0, self.setup.report_period)
            runtime.schedule_fast(first, self._report_round, site)
        runtime.schedule_fast(self.setup.cycle_period, self._cycle)

    # -- observation (Dealer step 1: update popularity) --------------------

    def _report_round(self, site: int) -> None:
        runtime = self.system.runtime
        runtime.schedule_fast(self.setup.report_period, self._report_round, site)
        value = self.system.demand.demand(site, runtime.now)
        seq = self._report_seq.get(site, 0) + 1
        self._report_seq[site] = seq
        self.system.network.send(site, self.home, DemandReport(site, value, seq))

    def _handle_report(self, src: int, message: DemandReport) -> None:
        if message.seq <= self._last_report_seq.get(message.sender, 0):
            # A reordered (or duplicated) late report: the belief we
            # hold is newer, keep it.
            self.reports_stale += 1
            return
        self._last_report_seq[message.sender] = message.seq
        self.reports_received += 1
        self.table.update(message.sender, message.value, self.system.runtime.now)

    # -- the cycle ---------------------------------------------------------

    def _cycle(self) -> None:
        runtime = self.system.runtime
        runtime.schedule_fast(self.setup.cycle_period, self._cycle)
        if not self.system.network.node_is_up(self.home):
            # The controller's host is crashed by a fault: it can run
            # nothing this cycle, and the crash loses every volatile
            # structure — only the checkpoint survives.
            if not self._crashed:
                self._crashed = True
                self.crashes += 1
                self.popularity = {}
                self.table = DemandTable()
                self._outstanding = {}
                self._last_report_seq = {}
                self._cmd_seq = {}
            return
        if self._crashed:
            self._crashed = False
            self.restores += 1
            self._restore_checkpoint()
        now = runtime.now
        alpha = self.setup.ewma_alpha
        for site in self.sites:
            if site == self.home:
                # The home observes its own demand directly.
                raw = self.system.demand.demand(site, now)
            elif self.table.staleness(site, now) is None:
                continue  # nothing reported yet; keep the prior belief
            else:
                raw = self.table.believed(site)
            previous = self.popularity.get(site, raw)
            self.popularity[site] = alpha * raw + (1.0 - alpha) * previous
        committed = {site: len(self.copies[site]) for site in self.sites}
        targets = self.policy.targets(self.popularity, committed)
        for site in self.sites:
            target = max(0, min(self.setup.max_copies, targets.get(site, 0)))
            if target == committed[site]:
                continue
            if site == self.home:
                self._execute(site, target)
            else:
                self._send_command(site, target)
        self.cycles_run += 1
        self._write_checkpoint()

    def _write_checkpoint(self) -> None:
        """Durable end-of-cycle snapshot (EWMA beliefs + seq state)."""
        self._checkpoint = {
            "popularity": dict(self.popularity),
            "last_report_seq": dict(self._last_report_seq),
            "cmd_seq": dict(self._cmd_seq),
        }

    def _restore_checkpoint(self) -> None:
        """Resume from the last end-of-cycle snapshot after a crash."""
        checkpoint = self._checkpoint
        if checkpoint is None:
            return  # crashed before the first cycle: relearn from zero
        self.popularity = dict(checkpoint["popularity"])
        self._last_report_seq = dict(checkpoint["last_report_seq"])
        self._cmd_seq = dict(checkpoint["cmd_seq"])
        for site, applied in self._site_applied_seq.items():
            # Commands issued after the checkpoint may already have
            # been applied; a real deployment re-syncs seqs with a
            # status round on recovery, modelled here by advancing past
            # whatever the sites confirmed.
            if applied > self._cmd_seq.get(site, 0):
                self._cmd_seq[site] = applied

    # -- commitment (Dealer step 3: commit copies) -------------------------

    def _send_command(self, site: int, target: int) -> None:
        seq = self._cmd_seq.get(site, 0) + 1
        self._cmd_seq[site] = seq
        self._outstanding[site] = seq
        self.commands_sent += 1
        self.system.network.send(
            self.home, site, PlacementCommand(site, target, seq)
        )
        timeout = self.setup.cycle_period * COMMAND_RETRY_TIMEOUT_FACTOR
        self.system.runtime.schedule_fast(
            timeout, self._check_ack, site, seq, target, 1, timeout
        )

    def _check_ack(
        self, site: int, seq: int, target: int, attempt: int, timeout: float
    ) -> None:
        if self._outstanding.get(site) != seq:
            return  # acked, superseded, or lost to a controller crash
        if not self.system.network.node_is_up(self.home):
            return  # a crashed controller retries nothing
        if attempt > COMMAND_MAX_RETRIES:
            return  # give up: the next cycle recomputes the target
        self.commands_retried += 1
        self.system.network.send(
            self.home, site, PlacementCommand(site, target, seq)
        )
        backoff = timeout * 2.0
        self.system.runtime.schedule_fast(
            backoff, self._check_ack, site, seq, target, attempt + 1, backoff
        )

    def _handle_ack(self, src: int, message: PlacementAck) -> None:
        self.acks_received += 1
        if self._outstanding.get(message.site) == message.seq:
            del self._outstanding[message.site]

    def _handle_command(self, src: int, message: PlacementCommand) -> None:
        site = message.site
        if message.seq > self._site_applied_seq.get(site, 0):
            self._site_applied_seq[site] = message.seq
            self._execute(site, message.target)
        # Ack unconditionally — a duplicate means the first ack (or the
        # command's retry race) was lost, and the controller is waiting.
        self.system.network.send(
            site, self.home, PlacementAck(site, message.seq)
        )

    def _execute(self, site: int, target: int) -> None:
        system = self.system
        now = system.runtime.now
        target = max(0, min(self.setup.max_copies, int(target)))
        copies = self.copies[site]
        while len(copies) < target:
            new_id = self._next_id
            self._next_id += 1
            attach = [site] + sorted(
                n
                for n in system.topology.neighbors(site)
                if n not in system.retired
            )[:ATTACH_NEIGHBORS]
            system.add_replica(new_id, attach_to=attach, donor_policy=self.donor_policy)
            copies.append(new_id)
            self.events.append((now, "spawn", site, new_id))
            self.spawned_total += 1
        while len(copies) > target:
            victim = copies.pop()
            system.retire_replica(victim)
            self.events.append((now, "retire", site, victim))
            self.retired_total += 1
        self.peak_copies = max(self.peak_copies, self.total_copies())

    # -- introspection -----------------------------------------------------

    def total_copies(self) -> int:
        """Extra copies currently running across all sites."""
        return sum(len(v) for v in self.copies.values())

    def copy_count(self, site: int) -> int:
        return len(self.copies[site])
