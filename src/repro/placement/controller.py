"""The demand-driven replica autoscaler (closing the paper's loop).

The paper's premise is that demand should drive replication; this
controller closes the loop at system level. One node (the *home*, by
convention the write origin) runs a Dealer-style cycle:

1. **update popularity** — every site periodically reports its own
   demand to the home over real (metered) network messages; the
   controller smooths the reports with an EWMA;
2. **compute copy list** — a pluggable
   :class:`~repro.placement.policies.PlacementPolicy` maps popularity
   to a target number of extra copies per site;
3. **commit copies** — the home sends :class:`PlacementCommand`
   messages to sites whose target changed; on arrival the site spawns
   replicas through :meth:`ReplicationSystem.add_replica` (a real
   anti-entropy bootstrap against a donor chosen by the configured
   :class:`~repro.replica.creation.DonorSelectionPolicy`) or retires
   its most recent copies through
   :meth:`ReplicationSystem.retire_replica`.

Nothing here is free: reports and commands ride the network (overlay
links where home and site are not physically adjacent, with a delay
proportional to their hop distance), and every bootstrap pays full
anti-entropy message/byte cost. All iteration is in sorted order and
all ids derive from the base topology, so serial and process-pool runs
are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..replica.creation import (
    DonorSelectionPolicy,
    FreshestDonor,
    MostCompleteLog,
    NearestDonor,
    WeightedDonorScore,
)
from ..core.system import ReplicationSystem
from ..demand.views import DemandTable
from ..topology.analysis import bfs_distances
from .messages import DemandReport, PlacementCommand
from .policies import PlacementSetup, build_policy

#: A controller event: ``(time, kind, site, replica)`` with kind in
#: {"spawn", "retire"} — the raw material of the replica-count
#: trajectory and the capacity-aware satisfaction metric.
PlacementEvent = Tuple[float, str, int, int]

_DONORS = {
    "most-complete": MostCompleteLog,
    "nearest": NearestDonor,
    "freshest": FreshestDonor,
    "weighted": WeightedDonorScore,
}

#: How many of a site's physical neighbours join a spawn's attach set
#: (donor-selection candidates beyond the site itself).
ATTACH_NEIGHBORS = 2


class PlacementController:
    """Runs the placement loop on one :class:`ReplicationSystem`.

    Args:
        system: The system to autoscale (not yet started).
        setup: Placement knobs; ``setup.policy`` must name a control
            policy (``"static"`` setups never build a controller).
        home: Node hosting the controller (conventionally the write
            origin).
        sites: Sites observed and scaled (default: the base topology's
            nodes at construction time).
    """

    def __init__(
        self,
        system: ReplicationSystem,
        setup: PlacementSetup,
        home: int,
        sites: Optional[Sequence[int]] = None,
    ):
        setup.validate()
        self.system = system
        self.setup = setup
        self.home = int(home)
        source = system.topology.nodes if sites is None else sites
        self.sites: Tuple[int, ...] = tuple(sorted(int(s) for s in source))
        if self.home not in system.servers:
            raise ConfigurationError(f"home node {self.home} does not exist")
        for site in self.sites:
            if site not in system.servers:
                raise ConfigurationError(f"site {site} does not exist")
        self.policy = build_policy(setup)
        self.donor_policy: DonorSelectionPolicy = _DONORS[setup.donor]()
        #: Observed (reported) demand per site.
        self.table = DemandTable()
        #: EWMA-smoothed popularity per site.
        self.popularity: Dict[int, float] = {}
        #: Extra copies currently running per site (spawn order).
        self.copies: Dict[int, List[int]] = {s: [] for s in self.sites}
        #: Spawn/retire history, for metrics.
        self.events: List[PlacementEvent] = []
        self.cycles_run = 0
        self.reports_received = 0
        self.commands_sent = 0
        self.spawned_total = 0
        self.retired_total = 0
        self.peak_copies = 0
        self._next_id = max(system.topology.nodes) + 1
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Wire handlers, overlay links, reporters, and the first cycle."""
        if self._started:
            raise ConfigurationError("placement controller already started")
        self._started = True
        runtime = self.system.runtime
        network = self.system.network
        topology = self.system.topology
        hops = bfs_distances(topology, self.home)
        link_delay = self.system.config.link_delay
        self.system.nodes[self.home]._dispatch[DemandReport] = self._handle_report
        for site in self.sites:
            self.system.nodes[site]._dispatch[PlacementCommand] = self._handle_command
            if site == self.home:
                continue
            if not topology.has_edge(site, self.home):
                # Multi-hop control tunnel: delay grows with distance,
                # so far-away sites observe and react later.
                network.add_overlay_link(
                    self.home, site, link_delay * max(1, hops.get(site, 1))
                )
            rng = runtime.rng.stream("placement-report", site)
            first = rng.uniform(0, self.setup.report_period)
            runtime.schedule_fast(first, self._report_round, site)
        runtime.schedule_fast(self.setup.cycle_period, self._cycle)

    # -- observation (Dealer step 1: update popularity) --------------------

    def _report_round(self, site: int) -> None:
        runtime = self.system.runtime
        runtime.schedule_fast(self.setup.report_period, self._report_round, site)
        value = self.system.demand.demand(site, runtime.now)
        self.system.network.send(site, self.home, DemandReport(site, value))

    def _handle_report(self, src: int, message: DemandReport) -> None:
        self.reports_received += 1
        self.table.update(message.sender, message.value, self.system.runtime.now)

    # -- the cycle ---------------------------------------------------------

    def _cycle(self) -> None:
        runtime = self.system.runtime
        runtime.schedule_fast(self.setup.cycle_period, self._cycle)
        now = runtime.now
        alpha = self.setup.ewma_alpha
        for site in self.sites:
            if site == self.home:
                # The home observes its own demand directly.
                raw = self.system.demand.demand(site, now)
            elif self.table.staleness(site, now) is None:
                continue  # nothing reported yet; keep the prior belief
            else:
                raw = self.table.believed(site)
            previous = self.popularity.get(site, raw)
            self.popularity[site] = alpha * raw + (1.0 - alpha) * previous
        committed = {site: len(self.copies[site]) for site in self.sites}
        targets = self.policy.targets(self.popularity, committed)
        for site in self.sites:
            target = max(0, min(self.setup.max_copies, targets.get(site, 0)))
            if target == committed[site]:
                continue
            if site == self.home:
                self._execute(site, target)
            else:
                self.commands_sent += 1
                self.system.network.send(
                    self.home, site, PlacementCommand(site, target)
                )
        self.cycles_run += 1

    # -- commitment (Dealer step 3: commit copies) -------------------------

    def _handle_command(self, src: int, message: PlacementCommand) -> None:
        self._execute(message.site, message.target)

    def _execute(self, site: int, target: int) -> None:
        system = self.system
        now = system.runtime.now
        target = max(0, min(self.setup.max_copies, int(target)))
        copies = self.copies[site]
        while len(copies) < target:
            new_id = self._next_id
            self._next_id += 1
            attach = [site] + sorted(
                n
                for n in system.topology.neighbors(site)
                if n not in system.retired
            )[:ATTACH_NEIGHBORS]
            system.add_replica(new_id, attach_to=attach, donor_policy=self.donor_policy)
            copies.append(new_id)
            self.events.append((now, "spawn", site, new_id))
            self.spawned_total += 1
        while len(copies) > target:
            victim = copies.pop()
            system.retire_replica(victim)
            self.events.append((now, "retire", site, victim))
            self.retired_total += 1
        self.peak_copies = max(self.peak_copies, self.total_copies())

    # -- introspection -----------------------------------------------------

    def total_copies(self) -> int:
        """Extra copies currently running across all sites."""
        return sum(len(v) for v in self.copies.values())

    def copy_count(self, site: int) -> int:
        return len(self.copies[site])
