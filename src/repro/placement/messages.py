"""Wire messages of the placement control loop.

Placement is never free: demand observations flow from every site to
the controller's home node and copy-list commits flow back as real
network messages, metered by kind so experiments can read the control
loop's traffic overhead directly from
``Network.counters.bytes_by_kind`` (``"placement-report"`` /
``"placement-cmd"``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes of framing per control message (addresses, type tag).
CONTROL_HEADER_BYTES = 20
#: One float64 (report value) / one int64 (command target).
CONTROL_VALUE_BYTES = 8


@dataclass(frozen=True)
class DemandReport:
    """Site -> controller: ``sender`` currently serves ``value`` req/unit."""

    sender: int
    value: float

    kind = "placement-report"

    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + CONTROL_VALUE_BYTES


@dataclass(frozen=True)
class PlacementCommand:
    """Controller -> site: run ``target`` extra copies for ``site``."""

    site: int
    target: int

    kind = "placement-cmd"

    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + CONTROL_VALUE_BYTES
