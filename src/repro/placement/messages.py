"""Wire messages of the placement control loop.

Placement is never free: demand observations flow from every site to
the controller's home node and copy-list commits flow back as real
network messages, metered by kind so experiments can read the control
loop's traffic overhead directly from
``Network.counters.bytes_by_kind`` (``"placement-report"`` /
``"placement-cmd"`` / ``"placement-ack"``).

Every message carries a per-site sequence number (packed into the
framing header, so it costs no extra metered bytes): receivers drop
stale reports, apply commands idempotently, and re-ack duplicates —
which is what lets the controller retry unacknowledged commands over a
lossy, reordering network without double-spawning replicas.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes of framing per control message (addresses, type tag, seq).
CONTROL_HEADER_BYTES = 20
#: One float64 (report value) / one int64 (command target).
CONTROL_VALUE_BYTES = 8


@dataclass(frozen=True)
class DemandReport:
    """Site -> controller: ``sender`` currently serves ``value`` req/unit.

    ``seq`` increases per sender; the controller keeps only the newest
    observation (a reordered late report must not overwrite it).
    """

    sender: int
    value: float
    seq: int = 0

    kind = "placement-report"

    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + CONTROL_VALUE_BYTES


@dataclass(frozen=True)
class PlacementCommand:
    """Controller -> site: run ``target`` extra copies for ``site``.

    ``seq`` increases per site; a site applies each seq at most once
    (retries and duplicated frames re-ack without re-executing).
    """

    site: int
    target: int
    seq: int = 0

    kind = "placement-cmd"

    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + CONTROL_VALUE_BYTES


@dataclass(frozen=True)
class PlacementAck:
    """Site -> controller: command ``seq`` for ``site`` took effect."""

    site: int
    seq: int = 0

    kind = "placement-ack"

    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + CONTROL_VALUE_BYTES
