"""Demand-driven replica placement: the paper's loop, closed.

The source paper argues replicas should live where demand is; the rest
of this repo uses demand to *order* propagation. This package makes
demand drive *placement* too: a :class:`PlacementController` observes
per-site demand through real metered reports, runs a pluggable
:class:`PlacementPolicy` each cycle, and commits the copy list by
spawning replicas through the donor-selection machinery (full
anti-entropy bootstrap cost) and retiring cold ones.

Layout:

* :mod:`~repro.placement.messages` — metered control-plane messages;
* :mod:`~repro.placement.policies` — :class:`PlacementSetup` and the
  threshold / top-share / efficiency policies;
* :mod:`~repro.placement.controller` — the Dealer-style cycle;
* :mod:`~repro.placement.metrics` — capacity-aware satisfaction,
  replica-count trajectory, control-traffic accounting.
"""

from .controller import PlacementController, PlacementEvent
from .messages import DemandReport, PlacementAck, PlacementCommand
from .metrics import (
    PlacementTraffic,
    SeriesSummary,
    capacity_satisfied_series,
    placement_traffic,
    replica_count_series,
    summarize_series,
)
from .policies import (
    DONOR_POLICIES,
    POLICIES,
    EfficiencyFactorPolicy,
    PlacementPolicy,
    PlacementSetup,
    ThresholdPolicy,
    TopShareDemandPolicy,
    build_policy,
)

__all__ = [
    "DONOR_POLICIES",
    "POLICIES",
    "DemandReport",
    "EfficiencyFactorPolicy",
    "PlacementAck",
    "PlacementCommand",
    "PlacementController",
    "PlacementEvent",
    "PlacementPolicy",
    "PlacementSetup",
    "PlacementTraffic",
    "SeriesSummary",
    "summarize_series",
    "ThresholdPolicy",
    "TopShareDemandPolicy",
    "build_policy",
    "capacity_satisfied_series",
    "placement_traffic",
    "replica_count_series",
]
