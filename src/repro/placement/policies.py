"""Placement policies: observed demand -> target copy list.

The controller runs a Dealer-style cycle (update popularity -> compute
copy list -> commit copies); the *compute* step is pluggable through
:class:`PlacementPolicy`. Every policy maps the smoothed per-site demand
to a target number of **extra** copies per site (the site itself always
serves one replica's worth of capacity), capped at
``setup.max_copies``:

* :class:`ThresholdPolicy` — copies proportional to demand over
  capacity, with a hysteresis band so borderline sites do not flap.
* :class:`TopShareDemandPolicy` — only the smallest set of sites
  covering ``setup.top_share`` of total demand gets extra copies (the
  paper's "greatest demand" focus applied to placement).
* :class:`EfficiencyFactorPolicy` — Delavar-style: a new copy is only
  worth creating when it would absorb at least ``min_efficiency`` of
  one replica's capacity, scale-up is rate-limited to ``spawn_budget``
  copies per cycle (amortising bootstrap cost over cycles), and the
  marginal copy is retired once its utilisation falls below
  ``retire_utilisation``.

All policies are pure functions of their inputs and iterate sites in
sorted order, so serial and process-pool runs commit identical copy
lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping

from ..errors import ConfigurationError

#: Donor-policy registry keys accepted by :attr:`PlacementSetup.donor`.
DONOR_POLICIES = ("most-complete", "nearest", "freshest", "weighted")


@dataclass(frozen=True)
class PlacementSetup:
    """Declarative, picklable configuration of the placement loop.

    Attributes:
        policy: :data:`POLICIES` key (``"static"`` = capacity model
            only, no controller).
        capacity: Requests per time unit one replica serves; demand
            beyond ``capacity * copies`` at a site goes unsatisfied.
        report_period: Time between a site's demand reports to the
            controller.
        cycle_period: Time between controller cycles.
        ewma_alpha: Popularity smoothing (1.0 = trust the last report).
        max_copies: Cap on extra copies per site.
        hysteresis: Threshold policy scale-down band (fraction of
            capacity) preventing spawn/retire flapping.
        top_share: Demand share covered by the top-share policy.
        min_efficiency: Efficiency policy: minimum fraction of one
            replica's capacity a new copy must absorb.
        retire_utilisation: Efficiency policy: retire the marginal copy
            when its utilisation falls below this.
        spawn_budget: Efficiency policy: spawns committed per cycle.
        donor: Donor-selection policy for bootstrap
            (:data:`DONOR_POLICIES`).
    """

    policy: str = "threshold"
    capacity: float = 25.0
    report_period: float = 1.0
    cycle_period: float = 4.0
    ewma_alpha: float = 0.6
    max_copies: int = 4
    hysteresis: float = 0.25
    top_share: float = 0.9
    min_efficiency: float = 0.5
    retire_utilisation: float = 0.3
    spawn_budget: int = 2
    donor: str = "most-complete"

    def validate(self) -> "PlacementSetup":
        if self.policy != "static" and self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown placement policy {self.policy!r}; "
                f"known: {sorted(POLICIES)} or 'static'"
            )
        if self.capacity <= 0:
            raise ConfigurationError(f"capacity must be > 0, got {self.capacity}")
        if self.report_period <= 0 or self.cycle_period <= 0:
            raise ConfigurationError("report/cycle periods must be > 0")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.max_copies < 1:
            raise ConfigurationError(f"max_copies must be >= 1, got {self.max_copies}")
        if self.hysteresis < 0:
            raise ConfigurationError(f"hysteresis must be >= 0, got {self.hysteresis}")
        if not 0.0 < self.top_share <= 1.0:
            raise ConfigurationError(
                f"top_share must be in (0, 1], got {self.top_share}"
            )
        if self.min_efficiency < 0 or self.retire_utilisation < 0:
            raise ConfigurationError("efficiency knobs must be >= 0")
        if self.spawn_budget < 1:
            raise ConfigurationError(
                f"spawn_budget must be >= 1, got {self.spawn_budget}"
            )
        if self.donor not in DONOR_POLICIES:
            raise ConfigurationError(
                f"unknown donor policy {self.donor!r}; known: {DONOR_POLICIES}"
            )
        return self


class PlacementPolicy:
    """Maps observed demand to a target extra-copy count per site."""

    def __init__(self, setup: PlacementSetup):
        self.setup = setup

    def targets(
        self, observed: Mapping[int, float], committed: Mapping[int, int]
    ) -> Dict[int, int]:
        """Target extra copies per site (sites = ``observed`` keys).

        Args:
            observed: Smoothed demand per site.
            committed: Extra copies currently committed per site.
        """
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def _needed(self, demand: float) -> int:
        """Extra copies needed so ``capacity * (1 + extras) >= demand``."""
        capacity = self.setup.capacity
        needed = int(math.ceil(demand / capacity)) - 1
        return max(0, min(self.setup.max_copies, needed))


class ThresholdPolicy(PlacementPolicy):
    """Demand-over-capacity with a hysteresis band against flapping."""

    def targets(
        self, observed: Mapping[int, float], committed: Mapping[int, int]
    ) -> Dict[int, int]:
        hysteresis = self.setup.hysteresis
        out: Dict[int, int] = {}
        for site in sorted(observed):
            demand = observed[site]
            current = committed.get(site, 0)
            scale_up = self._needed(demand)
            # Scale down only when even demand inflated by the
            # hysteresis band no longer justifies the current copies.
            scale_down = self._needed(demand * (1.0 + hysteresis))
            if scale_up > current:
                out[site] = scale_up
            elif scale_down < current:
                out[site] = scale_down
            else:
                out[site] = current
        return out


class TopShareDemandPolicy(PlacementPolicy):
    """Extra copies only for the sites covering ``top_share`` of demand."""

    def targets(
        self, observed: Mapping[int, float], committed: Mapping[int, int]
    ) -> Dict[int, int]:
        total = sum(observed.values())
        out: Dict[int, int] = {site: 0 for site in observed}
        if total <= 0:
            return out
        # Highest demand first; ties broken by id for determinism.
        ranked = sorted(observed, key=lambda s: (-observed[s], s))
        covered = 0.0
        for site in ranked:
            out[site] = self._needed(observed[site])
            covered += observed[site]
            if covered >= self.setup.top_share * total:
                break
        return out


class EfficiencyFactorPolicy(PlacementPolicy):
    """Delavar-style efficiency factor with creation-cost amortisation.

    A candidate copy's efficiency is the fraction of one replica's
    capacity it would absorb (``unserved / capacity``). Copies are
    created highest-efficiency first, at most ``spawn_budget`` per
    cycle; the marginal copy at a site is retired when its utilisation
    (``demand / (capacity * copies)``) drops below
    ``retire_utilisation``.
    """

    def targets(
        self, observed: Mapping[int, float], committed: Mapping[int, int]
    ) -> Dict[int, int]:
        setup = self.setup
        out: Dict[int, int] = {}
        candidates = []
        for site in sorted(observed):
            demand = observed[site]
            current = committed.get(site, 0)
            out[site] = current
            if current > 0:
                utilisation = demand / (setup.capacity * (1 + current))
                if utilisation < setup.retire_utilisation:
                    out[site] = current - 1
                    continue
            unserved = demand - setup.capacity * (1 + current)
            if unserved > 0 and current < setup.max_copies:
                efficiency = min(1.0, unserved / setup.capacity)
                if efficiency >= setup.min_efficiency:
                    candidates.append((-efficiency, site))
        budget = setup.spawn_budget
        for _, site in sorted(candidates):
            if budget == 0:
                break
            out[site] += 1
            budget -= 1
        return out


#: name -> policy class, keyed by :attr:`PlacementSetup.policy`.
POLICIES: Dict[str, Callable[[PlacementSetup], PlacementPolicy]] = {
    "threshold": ThresholdPolicy,
    "top-share": TopShareDemandPolicy,
    "efficiency": EfficiencyFactorPolicy,
}


def build_policy(setup: PlacementSetup) -> PlacementPolicy:
    """Instantiate the policy named by ``setup.policy`` (not static)."""
    setup.validate()
    if setup.policy == "static":
        raise ConfigurationError("static placement has no control policy")
    return POLICIES[setup.policy](setup)
