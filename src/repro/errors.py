"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, or cancelling a foreign event handle.
    """


class TopologyError(ReproError):
    """A topology is malformed or a generator received bad parameters."""


class DemandError(ReproError):
    """A demand model was queried or configured incorrectly."""


class ReplicationError(ReproError):
    """The replication substrate detected a protocol violation.

    Raised, for instance, when an update batch arrives out of per-origin
    order, or when a write log is asked for an unknown update.
    """


class ConfigurationError(ReproError):
    """A protocol or experiment configuration is inconsistent."""


class ExperimentError(ReproError):
    """An experiment specification cannot be built or executed."""


class FaultError(ReproError):
    """A fault schedule is malformed or cannot be applied.

    Raised, for instance, for an unknown fault action, a partition with
    an empty group, or a generator asked to fault a topology with too
    few nodes.
    """


class TransportError(ReproError):
    """A live transport frame or peer connection is invalid.

    Raised, for instance, for an oversized or truncated length-prefixed
    frame, or a send addressed to a node with no known address.
    """


class ExperimentSizeWarning(UserWarning):
    """An experiment runs with a different size than requested.

    Emitted, for instance, when a grid/torus topology rounds a
    non-square node count to the nearest square; the effective count is
    recorded in ``TrialResult.n_nodes``.
    """
