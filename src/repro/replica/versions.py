"""Summary vectors (version vectors).

A summary vector maps each *origin* replica to the highest contiguous
per-origin sequence number this replica has received from it. Two
replicas exchange summary vectors at the start of an anti-entropy
session (steps 4-6 of the paper's algorithm); each side then sends
exactly the writes whose sequence numbers exceed the partner's summary
(steps 7-11).

Contiguity matters: the vector only advances over gap-free prefixes, so
``covers(origin, seq)`` is meaningful even when fast updates (steps
13-18) have delivered newer writes out of order — those live "ahead of"
the summary inside the write log until anti-entropy fills the gap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from ..errors import ReplicationError

#: Serialized size: origin id (8 bytes) + sequence number (8 bytes).
ENTRY_BYTES = 16


class SummaryVector:
    """Mapping origin -> highest contiguous sequence received.

    Copies are copy-on-write: :meth:`copy` shares the entry dict and
    marks both vectors shared; the first mutation on either side
    detaches onto a private dict. Session starts copy the server summary
    for every outgoing :class:`~repro.replica.messages.SummaryMessage`,
    and most of those copies are never mutated.
    """

    __slots__ = ("_entries", "_shared")

    def __init__(self, entries: Mapping[int, int] | None = None):
        self._entries: Dict[int, int] = {}
        self._shared = False
        if entries:
            for origin, seq in entries.items():
                origin, seq = int(origin), int(seq)
                if seq < 0:
                    raise ReplicationError(f"negative sequence {seq} for {origin}")
                if seq > 0:
                    self._entries[origin] = seq

    # -- reads ------------------------------------------------------------

    def get(self, origin: int) -> int:
        """Highest contiguous sequence seen from ``origin`` (0 if none)."""
        return self._entries.get(int(origin), 0)

    def covers(self, origin: int, seq: int) -> bool:
        """Whether the write ``(origin, seq)`` is within the known prefix."""
        if seq <= 0:
            raise ReplicationError(f"sequence numbers start at 1, got {seq}")
        return seq <= self.get(origin)

    def origins(self) -> Tuple[int, ...]:
        return tuple(self._entries)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self._entries.items()))

    def as_dict(self) -> Dict[int, int]:
        return dict(self._entries)

    def total_writes(self) -> int:
        """Total number of writes covered by the prefixes."""
        return sum(self._entries.values())

    def size_bytes(self) -> int:
        """Wire size when embedded in a summary message."""
        return ENTRY_BYTES * len(self._entries)

    # -- mutation -----------------------------------------------------------

    def advance(self, origin: int, seq: int) -> None:
        """Record receipt of ``(origin, seq)``; must extend the prefix by 1.

        Raises:
            ReplicationError: If ``seq`` is not exactly ``get(origin)+1``
                — the caller (the write log) is responsible for ordering.
        """
        origin = int(origin)
        expected = self.get(origin) + 1
        if seq != expected:
            raise ReplicationError(
                f"cannot advance origin {origin} to {seq}; expected {expected}"
            )
        if self._shared:
            self._detach()
        self._entries[origin] = seq

    def merge(self, other: "SummaryVector") -> None:
        """Elementwise maximum (used for ack vectors, not data receipt)."""
        if self._shared:
            self._detach()
        entries = self._entries
        for origin, seq in other._entries.items():
            if seq > entries.get(origin, 0):
                entries[origin] = seq

    def copy(self) -> "SummaryVector":
        view = SummaryVector.__new__(SummaryVector)
        view._entries = self._entries
        view._shared = True
        self._shared = True
        return view

    def _detach(self) -> None:
        self._entries = dict(self._entries)
        self._shared = False

    def __getstate__(self):
        # Pickled vectors (cross-process messages) carry their own dict.
        return dict(self._entries)

    def __setstate__(self, state) -> None:
        self._entries = state
        self._shared = False

    # -- comparison -----------------------------------------------------------

    def dominates(self, other: "SummaryVector") -> bool:
        """True when this vector is >= the other on every origin."""
        return all(self.get(origin) >= seq for origin, seq in other._entries.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SummaryVector):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._entries.items())))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{o}:{s}" for o, s in sorted(self._entries.items()))
        return f"SummaryVector({{{inner}}})"


def elementwise_min(vectors: Iterable[SummaryVector]) -> SummaryVector:
    """The ack vector: what *every* replica in ``vectors`` has received.

    Writes covered by this vector are safe to purge from write logs
    (Golding's log-truncation rule; see
    :class:`repro.replica.log.AckedTruncation`).
    """
    vectors = list(vectors)
    if not vectors:
        return SummaryVector()
    origins = set()
    for vec in vectors:
        origins.update(vec.origins())
    return SummaryVector(
        {origin: min(vec.get(origin) for vec in vectors) for origin in origins}
    )
