"""Client workload generation driven by demand.

Demand in the paper *is* the client request rate, so workload arrivals
are Poisson processes whose instantaneous rate is the node's demand.
The generator powers the example applications and the request-
satisfaction experiments: every request is tagged with whether the
replica already held the reference update (fresh) or not (stale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..demand.base import DemandModel
from ..errors import ReplicationError
from ..runtime.base import Clock
from .log import UpdateId
from .server import ReplicaServer

#: Cap on the thinning loop so a zero-demand node costs nothing.
_MAX_RATE_EPSILON = 1e-9


@dataclass
class WorkloadStats:
    """Counters kept per node by :class:`ClientWorkload`."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    fresh_reads: int = 0
    stale_reads: int = 0


class ClientWorkload:
    """Poisson client requests at one replica, rate = demand(node, t).

    Time-varying demand is handled by *thinning*: arrivals are generated
    at ``max_rate`` and kept with probability ``rate(t)/max_rate``, the
    standard exact method for inhomogeneous Poisson processes.

    Args:
        runtime: Owning clock (a :class:`~repro.runtime.base.Runtime`
            or a bare :class:`~repro.sim.engine.Simulator`).
        server: The replica receiving the requests.
        model: Demand model (requests per session-time unit).
        max_rate: Upper bound on the node's demand over the run.
        write_fraction: Probability a request is a write.
        reference_update: When set, reads are classified fresh/stale by
            whether the server already integrated this update.
        key: Key used for reads and writes.
    """

    def __init__(
        self,
        runtime: Clock,
        server: ReplicaServer,
        model: DemandModel,
        max_rate: float,
        write_fraction: float = 0.0,
        reference_update: Optional[UpdateId] = None,
        key: str = "content",
    ):
        if max_rate < 0:
            raise ReplicationError(f"max_rate must be >= 0, got {max_rate}")
        if not 0 <= write_fraction <= 1:
            raise ReplicationError(f"write_fraction {write_fraction} outside [0, 1]")
        self.runtime = runtime
        self.server = server
        self.model = model
        self.max_rate = float(max_rate)
        self.write_fraction = float(write_fraction)
        self.reference_update = reference_update
        self.key = key
        self.stats = WorkloadStats()
        self._rng = runtime.rng.stream("workload", server.node)
        self._running = False
        self._pending: Optional[object] = None

    def start(self) -> None:
        """Begin generating requests (idempotent start is an error)."""
        if self._running:
            raise ReplicationError("workload already started")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating and cancel the pending arrival event.

        Cancelling (rather than letting the arrival fire into a
        no-op) matters on long-lived runtimes: a stopped workload must
        not leave a dead event behind per stop/start cycle.
        """
        self._running = False
        if self._pending is not None:
            self.runtime.cancel(self._pending)
            self._pending = None

    def _schedule_next(self) -> None:
        if self.max_rate <= _MAX_RATE_EPSILON:
            return
        gap = self._rng.expovariate(self.max_rate)
        self._pending = self.runtime.schedule(gap, self._arrival)

    def _arrival(self) -> None:
        self._pending = None
        if not self._running:
            return
        rate = self.model.demand(self.server.node, self.runtime.now)
        keep_probability = min(1.0, rate / self.max_rate) if self.max_rate else 0.0
        if self._rng.random() < keep_probability:
            self._serve_request()
        self._schedule_next()

    def _serve_request(self) -> None:
        self.stats.requests += 1
        if self._rng.random() < self.write_fraction:
            self.stats.writes += 1
            self.server.local_write(self.key, f"w@{self.runtime.now:.4f}")
            return
        self.stats.reads += 1
        self.server.read(self.key)
        if self.reference_update is not None:
            if self.server.has_update(self.reference_update):
                self.stats.fresh_reads += 1
            else:
                self.stats.stale_reads += 1


def start_workloads(
    runtime: Clock,
    servers: Dict[int, ReplicaServer],
    model: DemandModel,
    max_rate: float,
    write_fraction: float = 0.0,
    reference_update: Optional[UpdateId] = None,
) -> Dict[int, ClientWorkload]:
    """Start one workload per server; returns them keyed by node."""
    workloads: Dict[int, ClientWorkload] = {}
    for node, server in servers.items():
        workload = ClientWorkload(
            runtime,
            server,
            model,
            max_rate=max_rate,
            write_fraction=write_fraction,
            reference_update=reference_update,
        )
        workload.start()
        workloads[node] = workload
    return workloads
