"""Replication substrate: timestamps, summaries, logs, stores, servers.

This package is the Golding-TSAE stand-in (DESIGN.md §2): the data
structures and server machinery that both the weak-consistency baseline
and the paper's fast-consistency algorithm run on.
"""

from .acks import AckEntry, AckTable
from .creation import (
    DonorInfo,
    DonorSelectionPolicy,
    FreshestDonor,
    MostCompleteLog,
    NearestDonor,
    WeightedDonorScore,
)
from .log import (
    UPDATE_HEADER_BYTES,
    AckedTruncation,
    KeepAll,
    MaxEntries,
    TruncationPolicy,
    Update,
    UpdateId,
    WriteLog,
)
from .messages import (
    FAST_KINDS,
    HEADER_BYTES,
    OFFER_ENTRY_BYTES,
    REPLY_ENTRY_BYTES,
    SESSION_KINDS,
    FastUpdateOffer,
    FastUpdatePayload,
    FastUpdateReply,
    SessionAbort,
    SessionBusy,
    SessionRequest,
    SummaryMessage,
    UpdateBatch,
    traffic_split,
)
from .server import ReplicaServer
from .store import ContentStore, StoreEntry
from .timestamps import ZERO, LamportClock, Timestamp
from .versions import ENTRY_BYTES, SummaryVector, elementwise_min
from .workload import ClientWorkload, WorkloadStats, start_workloads

__all__ = [
    "AckTable",
    "AckEntry",
    "DonorInfo",
    "DonorSelectionPolicy",
    "MostCompleteLog",
    "NearestDonor",
    "FreshestDonor",
    "WeightedDonorScore",
    "Timestamp",
    "LamportClock",
    "ZERO",
    "SummaryVector",
    "elementwise_min",
    "ENTRY_BYTES",
    "Update",
    "UpdateId",
    "WriteLog",
    "TruncationPolicy",
    "KeepAll",
    "MaxEntries",
    "AckedTruncation",
    "UPDATE_HEADER_BYTES",
    "ContentStore",
    "StoreEntry",
    "ReplicaServer",
    "ClientWorkload",
    "WorkloadStats",
    "start_workloads",
    # messages
    "SessionRequest",
    "SessionBusy",
    "SummaryMessage",
    "UpdateBatch",
    "SessionAbort",
    "FastUpdateOffer",
    "FastUpdateReply",
    "FastUpdatePayload",
    "HEADER_BYTES",
    "OFFER_ENTRY_BYTES",
    "REPLY_ENTRY_BYTES",
    "SESSION_KINDS",
    "FAST_KINDS",
    "traffic_split",
]
