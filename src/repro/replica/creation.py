"""Donor selection for creating new replicas.

The paper's related-work section (§7) quotes Bayou's fourth policy
family: "When various servers are available for creating a new replica,
quantities to be considered must be identified ... how out of time they
are, band width of connections, and how complete their write-logs are."

This module implements that family: a new replica picks the *donor*
server it bootstraps from according to a pluggable policy over
:class:`DonorInfo` candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import ReplicationError


@dataclass(frozen=True)
class DonorInfo:
    """What a joining replica knows about one candidate donor.

    Attributes:
        node: Candidate id.
        total_writes: Writes covered by the candidate's summary vector
            ("how complete their write-logs are").
        log_length: Entries currently retained in the log (a truncated
            donor may require more catch-up later).
        hops: Network distance from the joining replica ("band width of
            connections" proxy).
        staleness: Time since the candidate last absorbed an update
            ("how out of time they are").
        demand: The candidate's current demand (a busy donor serves
            many clients; bootstrapping from it adds load where it
            hurts most).
    """

    node: int
    total_writes: int
    log_length: int
    hops: int
    staleness: float
    demand: float


class DonorSelectionPolicy:
    """Chooses the donor a new replica bootstraps from."""

    def choose(self, candidates: Mapping[int, DonorInfo]) -> int:
        raise NotImplementedError

    @staticmethod
    def _require(candidates: Mapping[int, DonorInfo]) -> None:
        if not candidates:
            raise ReplicationError("no donor candidates")


class MostCompleteLog(DonorSelectionPolicy):
    """Bayou's completeness criterion: the donor that has seen the most
    writes (ties: fewest hops, then lowest id)."""

    def choose(self, candidates: Mapping[int, DonorInfo]) -> int:
        self._require(candidates)
        return min(
            candidates.values(),
            key=lambda c: (-c.total_writes, c.hops, c.node),
        ).node


class NearestDonor(DonorSelectionPolicy):
    """The bandwidth/latency criterion: fewest hops (ties: most
    complete log, then lowest id)."""

    def choose(self, candidates: Mapping[int, DonorInfo]) -> int:
        self._require(candidates)
        return min(
            candidates.values(),
            key=lambda c: (c.hops, -c.total_writes, c.node),
        ).node


class FreshestDonor(DonorSelectionPolicy):
    """The staleness criterion: the donor that absorbed an update most
    recently (ties: most complete)."""

    def choose(self, candidates: Mapping[int, DonorInfo]) -> int:
        self._require(candidates)
        return min(
            candidates.values(),
            key=lambda c: (c.staleness, -c.total_writes, c.node),
        ).node


class WeightedDonorScore(DonorSelectionPolicy):
    """A tunable blend of all the Bayou criteria.

    Each component is normalised against the candidate pool's maximum
    and combined with the given weights; the lowest score wins.
    """

    def __init__(
        self,
        completeness_weight: float = 1.0,
        hops_weight: float = 1.0,
        staleness_weight: float = 0.5,
        demand_weight: float = 0.25,
    ):
        for name, value in (
            ("completeness_weight", completeness_weight),
            ("hops_weight", hops_weight),
            ("staleness_weight", staleness_weight),
            ("demand_weight", demand_weight),
        ):
            if value < 0:
                raise ReplicationError(f"{name} must be >= 0, got {value}")
        self.completeness_weight = completeness_weight
        self.hops_weight = hops_weight
        self.staleness_weight = staleness_weight
        self.demand_weight = demand_weight

    def choose(self, candidates: Mapping[int, DonorInfo]) -> int:
        self._require(candidates)
        pool = list(candidates.values())
        max_writes = max(c.total_writes for c in pool) or 1
        max_hops = max(c.hops for c in pool) or 1
        max_staleness = max(c.staleness for c in pool) or 1.0
        max_demand = max(c.demand for c in pool) or 1.0

        def score(c: DonorInfo) -> float:
            missing = 1.0 - c.total_writes / max_writes
            return (
                self.completeness_weight * missing
                + self.hops_weight * c.hops / max_hops
                + self.staleness_weight * c.staleness / max_staleness
                + self.demand_weight * c.demand / max_demand
            )

        return min(pool, key=lambda c: (score(c), c.node)).node
