"""Last-writer-wins content store.

The paper's model is a fully replicated service: every write must reach
every replica, and replicas are *consistent* when they hold the same
content. The store applies writes from the log with last-writer-wins
conflict resolution over Lamport timestamps — concurrent writes to the
same key converge to the same winner at every replica regardless of
delivery order, which is what makes the anti-entropy substrate
convergent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from .log import Update
from .timestamps import Timestamp


@dataclass(frozen=True)
class StoreEntry:
    """Current value of one key plus the write that produced it."""

    value: object
    timestamp: Timestamp
    origin: int
    seq: int


class ContentStore:
    """Key-value state derived from applied updates (LWW)."""

    def __init__(self):
        self._data: Dict[str, StoreEntry] = {}
        self.applied_count = 0
        self.superseded_count = 0

    def apply(self, update: Update) -> bool:
        """Apply one update; returns True if it won (became visible)."""
        current = self._data.get(update.key)
        self.applied_count += 1
        if current is not None and current.timestamp >= update.timestamp:
            self.superseded_count += 1
            return False
        self._data[update.key] = StoreEntry(
            value=update.value,
            timestamp=update.timestamp,
            origin=update.origin,
            seq=update.seq,
        )
        return True

    def apply_all(self, updates: Iterable[Update]) -> int:
        """Apply many updates; returns how many became visible."""
        return sum(1 for u in updates if self.apply(u))

    def read(self, key: str) -> Optional[StoreEntry]:
        """Current entry for ``key`` (None when never written)."""
        return self._data.get(key)

    def value(self, key: str, default: object = None) -> object:
        entry = self._data.get(key)
        return default if entry is None else entry.value

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def content_signature(self) -> Tuple[Tuple[str, Timestamp], ...]:
        """Order-independent digest of visible state.

        Two replicas are mutually consistent exactly when their
        signatures are equal — used by integration tests to verify the
        paper's convergence property.
        """
        return tuple(
            sorted((key, entry.timestamp) for key, entry in self._data.items())
        )
