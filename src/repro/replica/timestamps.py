"""Logical timestamps for the replication substrate.

Golding's timestamped anti-entropy (the paper's weak-consistency
baseline, [7]) orders every write with a timestamp; replicas compare
"summary timestamps" to decide which messages the partner has not seen
(§2.1 steps 7 and 10). We use Lamport pairs ``(counter, node)`` — a
total order that respects causality of observed events and never needs
synchronised wall clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReplicationError


@dataclass(frozen=True, order=True)
class Timestamp:
    """A Lamport timestamp: ``(counter, node)``, totally ordered.

    The node id breaks counter ties, so two distinct events never have
    equal timestamps unless they are the same (origin, counter) pair.
    """

    counter: int
    node: int

    def __post_init__(self) -> None:
        if self.counter < 0:
            raise ReplicationError(f"negative timestamp counter {self.counter}")
        if self.node < 0:
            raise ReplicationError(f"negative node id {self.node}")

    def next_for(self, node: int) -> "Timestamp":
        """The timestamp a write at ``node`` gets after observing this."""
        return Timestamp(counter=self.counter + 1, node=node)


#: The timestamp smaller than every real one.
ZERO = Timestamp(counter=0, node=0)


class LamportClock:
    """Per-node Lamport clock.

    ``tick()`` stamps a local event; ``witness(ts)`` merges a remote
    timestamp so later local events order after everything the node has
    seen.
    """

    def __init__(self, node: int):
        if node < 0:
            raise ReplicationError(f"negative node id {node}")
        self.node = int(node)
        self._counter = 0

    @property
    def counter(self) -> int:
        return self._counter

    def tick(self) -> Timestamp:
        """Advance the clock and return a fresh timestamp."""
        self._counter += 1
        return Timestamp(counter=self._counter, node=self.node)

    def witness(self, ts: Timestamp) -> None:
        """Absorb a remote timestamp (clock jumps forward if needed)."""
        if ts.counter > self._counter:
            self._counter = ts.counter

    def peek(self) -> Timestamp:
        """Current time without advancing (not unique across calls)."""
        return Timestamp(counter=self._counter, node=self.node)
