"""Acknowledgement tables for safe write-log truncation.

Golding's TSAE purges a write from the log once *every* replica is known
to have received it. Each node therefore gossips a table mapping every
replica to (its last known summary vector, the logical time it was
observed); the elementwise minimum over a *complete* table is the ack
vector — writes it covers are globally stable and can be purged.

The table rides along with anti-entropy sessions (piggybacked on the
summary exchange) so acknowledgement knowledge spreads epidemically,
exactly like the data itself. Safety properties:

* A node missing from the table contributes an implicit zero vector, so
  :meth:`AckTable.ack_vector` returns nothing purgeable until the node
  has heard (transitively) from everyone.
* Summary vectors only grow, so merging tables by pointwise domination
  never regresses knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ReplicationError
from .versions import ENTRY_BYTES, SummaryVector, elementwise_min


@dataclass(frozen=True)
class AckEntry:
    """What one replica was last known to have received."""

    summary: SummaryVector
    observed_at: float


class AckTable:
    """Per-node knowledge of every replica's summary vector.

    Args:
        owner: The node this table belongs to.
        population: All replica ids that must acknowledge before
            anything may be purged.
    """

    def __init__(self, owner: int, population: Iterable[int]):
        self.owner = int(owner)
        self.population = frozenset(int(n) for n in population)
        if self.owner not in self.population:
            raise ReplicationError(
                f"owner {owner} not part of the replica population"
            )
        self._entries: Dict[int, AckEntry] = {}

    # -- updates ----------------------------------------------------------

    def observe(self, node: int, summary: SummaryVector, at: float) -> None:
        """Record that ``node`` held ``summary`` at time ``at``.

        Older or dominated observations never replace newer knowledge:
        summaries only grow, so the pointwise-larger vector wins.
        """
        node = int(node)
        if node not in self.population:
            raise ReplicationError(f"node {node} outside the replica population")
        current = self._entries.get(node)
        if current is None:
            self._entries[node] = AckEntry(summary.copy(), at)
            return
        if summary.dominates(current.summary):
            self._entries[node] = AckEntry(summary.copy(), max(at, current.observed_at))
        elif current.summary.dominates(summary):
            return
        else:
            # Incomparable (can happen transiently with out-of-order
            # gossip): keep the pointwise maximum, which both dominate.
            merged = current.summary.copy()
            merged.merge(summary)
            self._entries[node] = AckEntry(merged, max(at, current.observed_at))

    def merge(self, other: "AckTable") -> None:
        """Absorb a peer's table (pointwise-dominating entries win)."""
        for node, entry in other._entries.items():
            self.observe(node, entry.summary, entry.observed_at)

    # -- queries ------------------------------------------------------------

    def entry(self, node: int) -> Optional[AckEntry]:
        return self._entries.get(int(node))

    def is_complete(self) -> bool:
        """Whether every replica in the population has been observed."""
        return set(self._entries) == set(self.population)

    def ack_vector(self) -> SummaryVector:
        """Writes acknowledged by everyone (empty until complete)."""
        if not self.is_complete():
            return SummaryVector()
        return elementwise_min(e.summary for e in self._entries.values())

    def known_count(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        """Wire size when piggybacked: node id + time + vector each."""
        return sum(
            16 + entry.summary.size_bytes() for entry in self._entries.values()
        )

    def snapshot(self) -> Dict[int, Tuple[Dict[int, int], float]]:
        """Plain-data view (tests, persistence)."""
        return {
            node: (entry.summary.as_dict(), entry.observed_at)
            for node, entry in self._entries.items()
        }

    def copy(self) -> "AckTable":
        """Independent copy (what goes on the wire — the sender's table
        keeps evolving while the message is in flight)."""
        dup = AckTable(self.owner, self.population)
        for node, entry in self._entries.items():
            dup._entries[node] = AckEntry(entry.summary.copy(), entry.observed_at)
        return dup
