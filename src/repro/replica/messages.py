"""Wire messages of the replication protocols, with byte accounting.

Message sizes matter: the paper's conclusion claims the algorithm
"requires few additional bytes in the exchange of messages between
replicas", and the overhead benchmark verifies that claim against
measured traffic. Sizes follow a simple fixed-framing model:
``HEADER_BYTES`` of addressing/type per message plus the payload items
(summary-vector entries, update headers + payloads, offer entries).

The message classes map onto the paper's §2.1 algorithm:

* steps 2-3: :class:`SessionRequest` (and :class:`SessionBusy` when the
  partner refuses),
* steps 4-6: :class:`SummaryMessage`,
* steps 8-12: :class:`UpdateBatch`,
* step 13-14: :class:`FastUpdateOffer` ("information (id and timestamp)
  of new arrived messages"),
* steps 15-16: :class:`FastUpdateReply` (YES with the needed ids / NO),
* step 17: :class:`FastUpdatePayload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .log import Update, UpdateId
from .timestamps import Timestamp
from .versions import SummaryVector

#: Fixed framing per message: source/destination, type tag, session id.
HEADER_BYTES = 20

#: One (origin, seq, timestamp) entry in a fast-update offer.
OFFER_ENTRY_BYTES = 24

#: One (origin, seq) entry in a fast-update reply.
REPLY_ENTRY_BYTES = 16


@dataclass(frozen=True)
class SessionRequest:
    """Step 2: ask a neighbour to start an anti-entropy session."""

    session_id: int
    initiator: int

    kind = "session-request"

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class SessionBusy:
    """Partner refusal (it is already in a session); initiator moves on."""

    session_id: int
    sender: int

    kind = "session-busy"

    def size_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class SummaryMessage:
    """Steps 4-6: a replica's summary vector.

    ``is_reply`` distinguishes the responder's summary (step 4) from the
    initiator's (step 6) so the state machine stays explicit.

    ``ack_table`` optionally piggybacks the sender's acknowledgement
    table (Golding's log-truncation machinery; see
    :mod:`repro.core.acking`) — its bytes are accounted too.
    """

    session_id: int
    sender: int
    summary: SummaryVector
    is_reply: bool
    ack_table: object = None  # Optional[repro.replica.acks.AckTable]

    kind = "summary"

    def size_bytes(self) -> int:
        size = HEADER_BYTES + self.summary.size_bytes()
        if self.ack_table is not None:
            size += self.ack_table.size_bytes()
        return size


@dataclass(frozen=True)
class UpdateBatch:
    """Steps 8 and 11: the writes the partner has not seen.

    ``closing`` marks the last batch of a session so both ends can
    account the session finished.
    """

    session_id: int
    sender: int
    updates: Tuple[Update, ...]
    closing: bool = False

    kind = "update-batch"

    def size_bytes(self) -> int:
        return HEADER_BYTES + sum(u.size_bytes() for u in self.updates)


@dataclass(frozen=True)
class SessionAbort:
    """Sent when a session times out or cannot be served."""

    session_id: int
    sender: int
    reason: str = ""

    kind = "session-abort"

    def size_bytes(self) -> int:
        return HEADER_BYTES + len(self.reason)


@dataclass(frozen=True)
class FastUpdateOffer:
    """Step 13: "id and timestamp of new arrived messages".

    Note that fast-update exchanges carry *no summary vectors* — that is
    the point of the optimisation (§2.1: "Note that in fast update
    sessions the summary vectors are not exchanged").

    ``depth`` counts push hops since the triggering event (0 = offered
    directly by the origin of the write); it costs one byte on the wire
    and lets experiments measure how deep the §2 "valley flooding"
    cascades run.
    """

    sender: int
    entries: Tuple[Tuple[UpdateId, Timestamp], ...]
    depth: int = 0

    kind = "fast-offer"

    def size_bytes(self) -> int:
        return HEADER_BYTES + 1 + OFFER_ENTRY_BYTES * len(self.entries)

    def ids(self) -> Tuple[UpdateId, ...]:
        return tuple(uid for uid, _ in self.entries)


@dataclass(frozen=True)
class FastUpdateReply:
    """Steps 15-16: YES with the ids still needed, or NO (empty).

    The paper's reply is a whole-offer YES/NO; replying per-id is the
    natural generalisation when an offer carries several writes and
    avoids resending known ones. An empty ``needed`` is exactly the
    paper's NO.
    """

    sender: int
    needed: Tuple[UpdateId, ...]

    kind = "fast-reply"

    def size_bytes(self) -> int:
        return HEADER_BYTES + REPLY_ENTRY_BYTES * len(self.needed)

    @property
    def is_no(self) -> bool:
        return not self.needed


@dataclass(frozen=True)
class FastUpdatePayload:
    """Step 17: the update bodies the partner said YES to."""

    sender: int
    updates: Tuple[Update, ...]
    depth: int = 0

    kind = "fast-payload"

    def size_bytes(self) -> int:
        return HEADER_BYTES + 1 + sum(u.size_bytes() for u in self.updates)


#: Message kinds that belong to the weak-consistency part (steps 1-12).
SESSION_KINDS = frozenset(
    {"session-request", "session-busy", "summary", "update-batch", "session-abort"}
)

#: Message kinds added by the fast-update optimisation (steps 13-18).
FAST_KINDS = frozenset({"fast-offer", "fast-reply", "fast-payload"})


def traffic_split(by_kind: Dict[str, int]) -> Dict[str, int]:
    """Partition per-kind counters into session/fast/other groups."""
    groups = {"session": 0, "fast": 0, "other": 0}
    for kind, count in by_kind.items():
        if kind in SESSION_KINDS:
            groups["session"] += count
        elif kind in FAST_KINDS:
            groups["fast"] += count
        else:
            groups["other"] += count
    return groups
