"""Write logs with truncation policies.

Every replica stores the writes it knows in a log ordered per origin.
The log is the source of truth for anti-entropy ("send the messages the
partner has not seen") and absorbs out-of-order arrivals from the fast
update path, holding them *ahead* of the summary prefix until the gap
fills.

The store is indexed the way Bayou-family systems keep their logs:
per-origin contiguous arrays alongside the uid map. ``updates_since``
— the inner loop of every anti-entropy session (paper §2.1 steps 7/10)
— therefore slices per-origin suffixes in O(missing + origins) instead
of scanning and re-sorting the whole log, which is what lets
long-horizon runs keep a constant per-session cost as logs grow.

Truncation policies implement the Bayou-inspired policy family the
paper's related-work section discusses ("how aggressively to truncate
the write-log"): keep everything, bound the entry count, or purge writes
acknowledged by every replica (Golding's ack-vector rule).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ReplicationError
from .timestamps import Timestamp
from .versions import SummaryVector

#: (origin, sequence) — the globally unique id of a write.
UpdateId = Tuple[int, int]

#: Wire overhead of one update beyond its payload: origin + seq +
#: timestamp (16) + key length field.
UPDATE_HEADER_BYTES = 36


@dataclass(frozen=True)
class Update:
    """One replicated write operation.

    Attributes:
        origin: Replica where the client performed the write.
        seq: Per-origin sequence number (1-based, dense).
        timestamp: Lamport timestamp for last-writer-wins ordering.
        key: Data item written.
        value: New value (opaque to the protocol).
        payload_bytes: Simulated payload size for traffic accounting.
    """

    origin: int
    seq: int
    timestamp: Timestamp
    key: str
    value: object = None
    payload_bytes: int = 256

    def __post_init__(self) -> None:
        if self.seq <= 0:
            raise ReplicationError(f"sequence numbers start at 1, got {self.seq}")
        if self.payload_bytes < 0:
            raise ReplicationError(f"negative payload {self.payload_bytes}")

    @property
    def uid(self) -> UpdateId:
        return (self.origin, self.seq)

    def size_bytes(self) -> int:
        return UPDATE_HEADER_BYTES + len(self.key) + self.payload_bytes


# ---------------------------------------------------------------------------
# Truncation policies
# ---------------------------------------------------------------------------


class TruncationPolicy:
    """Decides which log entries may be discarded."""

    def purgeable(self, log: "WriteLog") -> List[UpdateId]:
        """Update ids that can be removed right now."""
        raise NotImplementedError


class KeepAll(TruncationPolicy):
    """Never purge (the default for the paper's experiments)."""

    def purgeable(self, log: "WriteLog") -> List[UpdateId]:
        return []


@dataclass
class MaxEntries(TruncationPolicy):
    """Keep at most ``limit`` entries, purging the oldest timestamps.

    The "aggressive" end of Bayou's spectrum; peers that fall behind a
    purged prefix would need a full state transfer, which
    :meth:`WriteLog.can_serve` exposes to the session layer.
    """

    limit: int = 1000

    def purgeable(self, log: "WriteLog") -> List[UpdateId]:
        if self.limit < 0:
            raise ReplicationError(f"negative limit {self.limit}")
        excess = len(log) - self.limit
        if excess <= 0:
            return []
        # nsmallest is documented equivalent to sorted(...)[:n] (stable),
        # but costs O(n log k) instead of sorting the whole log.
        oldest = heapq.nsmallest(excess, log.all_updates(), key=lambda u: u.timestamp)
        return [u.uid for u in oldest]


@dataclass
class AckedTruncation(TruncationPolicy):
    """Purge writes acknowledged by every replica (ack vector rule).

    ``ack_vector`` must be maintained by the caller — typically the
    elementwise minimum of all known summaries
    (:func:`repro.replica.versions.elementwise_min`).
    """

    ack_vector: SummaryVector = field(default_factory=SummaryVector)

    def purgeable(self, log: "WriteLog") -> List[UpdateId]:
        return log.covered_ids(self.ack_vector)


# ---------------------------------------------------------------------------
# Write log
# ---------------------------------------------------------------------------


class WriteLog:
    """Per-replica store of known writes, ordered per origin.

    The log tracks a contiguous prefix per origin in :attr:`summary`.
    Writes beyond the prefix (delivered early by fast updates) are held
    and automatically folded into the prefix when the gap closes.

    Internally each origin's prefix entries are kept as an array in
    sequence order with a parallel sorted array of sequence numbers, so
    "everything the peer lacks" is a bisect plus a slice per origin.
    """

    def __init__(self, policy: Optional[TruncationPolicy] = None):
        self.policy = policy if policy is not None else KeepAll()
        self.summary = SummaryVector()
        self._entries: Dict[UpdateId, Update] = {}
        #: ids present but beyond the contiguous prefix, per origin
        self._ahead: Dict[int, Dict[int, Update]] = {}
        #: per-origin prefix entries in sequence order (holes only from
        #: mid-prefix purges; the parallel ``_prefix_seqs`` stays sorted)
        self._prefix: Dict[int, List[Update]] = {}
        self._prefix_seqs: Dict[int, List[int]] = {}
        self._purged_floor: Dict[int, int] = {}
        #: memoised sorted origin list; None when an origin appeared or
        #: vanished since the last query (per-session queries iterate
        #: origins, so rebuilding the sort per call would tax the very
        #: hot path the index exists for)
        self._origins_cache: Optional[List[int]] = None
        #: callbacks invoked with the list of purged uids after each
        #: non-empty purge; agents keying side tables by uid (the
        #: fast-update push state) hook this to evict in lock-step.
        self._purge_listeners: List[Callable[[List[UpdateId]], None]] = []
        self.total_added = 0
        self.total_purged = 0

    def on_purge(self, callback: Callable[[List[UpdateId]], None]) -> None:
        """Register a callback fired with the uids each purge removes."""
        self._purge_listeners.append(callback)

    # -- membership -----------------------------------------------------------

    def has(self, uid: UpdateId) -> bool:
        """Whether the write is known (in the prefix, ahead, or purged)."""
        origin, seq = uid
        if seq <= self._purged_floor.get(origin, 0):
            return True
        return uid in self._entries

    def get(self, uid: UpdateId) -> Update:
        """Return a stored update (raises for unknown or purged ids)."""
        try:
            return self._entries[uid]
        except KeyError:
            raise ReplicationError(f"update {uid} not in log") from None

    def __len__(self) -> int:
        return len(self._entries)

    def origins(self) -> List[int]:
        """Origins with stored entries (prefix or ahead), ascending."""
        return list(self._sorted_origins())

    def _sorted_origins(self) -> List[int]:
        """Memoised ascending origin list (callers must not mutate)."""
        cache = self._origins_cache
        if cache is None:
            keys: Set[int] = set(self._prefix)
            keys.update(self._ahead)
            cache = sorted(keys)
            self._origins_cache = cache
        return cache

    # -- adding -----------------------------------------------------------------

    def add(self, update: Update) -> bool:
        """Insert a write; returns True when it is new.

        Out-of-order arrivals are accepted; the summary prefix only
        advances across gap-free runs.
        """
        if self.has(update.uid):
            return False
        self._entries[update.uid] = update
        self.total_added += 1
        origin = update.origin
        if origin not in self._ahead and origin not in self._prefix:
            self._origins_cache = None  # first entry from this origin
        ahead = self._ahead.setdefault(origin, {})
        ahead[update.seq] = update
        # Fold any now-contiguous run into the summary prefix (and the
        # per-origin index arrays).
        next_seq = self.summary.get(origin) + 1
        if next_seq in ahead:
            prefix = self._prefix.setdefault(origin, [])
            seqs = self._prefix_seqs.setdefault(origin, [])
            while next_seq in ahead:
                folded = ahead.pop(next_seq)
                prefix.append(folded)
                seqs.append(next_seq)
                self.summary.advance(origin, next_seq)
                next_seq += 1
        if not ahead:
            del self._ahead[origin]
        return True

    def add_all(self, updates: Iterable[Update]) -> List[Update]:
        """Insert many writes; returns those that were new."""
        return [u for u in updates if self.add(u)]

    # -- anti-entropy support ------------------------------------------------------

    def updates_since(self, peer_summary: SummaryVector) -> List[Update]:
        """Writes the peer is missing, in per-origin sequence order.

        This implements steps 7/10 of the paper's session: "determine if
        it has messages that [the partner] has not yet received, by
        seeing if some of its summary timestamps are greater than the
        corresponding ones its partner['s]".

        Cost is O(missing + origins): per origin one bisect locates the
        suffix the peer lacks, and ahead-of-prefix entries (always newer
        than the whole prefix) are appended after it.
        """
        missing: List[Update] = []
        for origin in self._sorted_origins():
            floor = peer_summary.get(origin)
            seqs = self._prefix_seqs.get(origin)
            if seqs and seqs[-1] > floor:
                start = bisect_right(seqs, floor)
                missing.extend(self._prefix[origin][start:])
            ahead = self._ahead.get(origin)
            if ahead:
                missing.extend(
                    ahead[seq] for seq in sorted(ahead) if seq > floor
                )
        return missing

    def can_serve(self, peer_summary: SummaryVector) -> bool:
        """False when purging removed writes the peer would need."""
        for origin, floor in self._purged_floor.items():
            if peer_summary.get(origin) < floor:
                return False
        return True

    def ahead_ids(self) -> List[UpdateId]:
        """Ids held beyond the contiguous prefix (fast-update arrivals)."""
        out: List[UpdateId] = []
        for origin in sorted(self._ahead):
            out.extend((origin, seq) for seq in sorted(self._ahead[origin]))
        return out

    def all_updates(self) -> List[Update]:
        """Every stored write, per-origin ordered."""
        out: List[Update] = []
        for origin in self._sorted_origins():
            prefix = self._prefix.get(origin)
            if prefix:
                out.extend(prefix)
            ahead = self._ahead.get(origin)
            if ahead:
                out.extend(ahead[seq] for seq in sorted(ahead))
        return out

    def covered_ids(self, vector: SummaryVector) -> List[UpdateId]:
        """Ids of stored writes covered by ``vector``, per-origin ordered.

        The acked-truncation policy asks this every completed session;
        per origin it is a bisect plus a slice of the prefix index (the
        ahead set is only consulted for callers passing vectors beyond
        our own summary).
        """
        out: List[UpdateId] = []
        for origin in self._sorted_origins():
            floor = vector.get(origin)
            if floor <= 0:
                continue
            seqs = self._prefix_seqs.get(origin)
            if seqs:
                end = bisect_right(seqs, floor)
                out.extend((origin, seq) for seq in seqs[:end])
            ahead = self._ahead.get(origin)
            if ahead:
                out.extend(
                    (origin, seq) for seq in sorted(ahead) if seq <= floor
                )
        return out

    # -- truncation ---------------------------------------------------------------

    def purge(self) -> int:
        """Apply the truncation policy; returns how many entries left.

        Only prefix entries may be purged (purging an "ahead" entry
        would corrupt gap bookkeeping); the policy's suggestions are
        filtered accordingly.
        """
        removed = 0
        dropped: Dict[int, Set[int]] = {}
        for uid in self.policy.purgeable(self):
            origin, seq = uid
            if uid not in self._entries:
                continue
            if seq > self.summary.get(origin):
                continue  # never purge ahead-of-prefix entries
            del self._entries[uid]
            dropped.setdefault(origin, set()).add(seq)
            floor = self._purged_floor.get(origin, 0)
            if seq > floor:
                self._purged_floor[origin] = seq
            removed += 1
        # Rebuild each affected origin's prefix arrays once.
        for origin, seqs_gone in dropped.items():
            kept = [u for u in self._prefix[origin] if u.seq not in seqs_gone]
            if kept:
                self._prefix[origin] = kept
                self._prefix_seqs[origin] = [u.seq for u in kept]
            else:
                del self._prefix[origin]
                del self._prefix_seqs[origin]
                if origin not in self._ahead:
                    self._origins_cache = None  # origin fully vanished
        self.total_purged += removed
        if removed and self._purge_listeners:
            purged_uids = [
                (origin, seq)
                for origin in sorted(dropped)
                for seq in sorted(dropped[origin])
            ]
            for callback in self._purge_listeners:
                callback(purged_uids)
        return removed
