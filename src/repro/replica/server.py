"""The replica server: log + store + clock behind a service interface.

"Every node is a server that gives services to local clients. Clients
make requests to a server, and every service request is a 'read'
operation, a 'write' operation, or both." (§2) — this class is that
server. The replication agents (anti-entropy, fast update) call
:meth:`integrate` with remote writes; local clients call
:meth:`local_write` and :meth:`read`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..errors import ReplicationError
from .log import TruncationPolicy, Update, UpdateId, WriteLog
from .store import ContentStore, StoreEntry
from .timestamps import LamportClock
from .versions import SummaryVector

#: Callback fired with the list of *new* updates a server just absorbed:
#: ``listener(new_updates, source, sender)`` where ``source`` is one of
#: "client" / "session" / "fast" and ``sender`` is the peer node the
#: updates arrived from (None for local client writes).
NewUpdatesListener = Callable[[List[Update], str, Optional[int]], None]


class ReplicaServer:
    """A single replica's durable state and service operations.

    Args:
        node: The replica's id (also the origin id of its writes).
        truncation: Optional write-log truncation policy.
        default_payload_bytes: Payload size stamped on local writes
            (traffic accounting).
    """

    def __init__(
        self,
        node: int,
        truncation: Optional[TruncationPolicy] = None,
        default_payload_bytes: int = 256,
    ):
        if node < 0:
            raise ReplicationError(f"negative node id {node}")
        self.node = int(node)
        self.clock = LamportClock(self.node)
        self.log = WriteLog(policy=truncation)
        self.store = ContentStore()
        self.default_payload_bytes = int(default_payload_bytes)
        self._next_seq = 1
        self._listeners: List[NewUpdatesListener] = []
        self.local_writes = 0
        self.reads_served = 0

    # -- listeners --------------------------------------------------------

    def on_new_updates(self, listener: NewUpdatesListener) -> None:
        """Register ``listener(new_updates, source, sender)``.

        ``source`` is ``"client"``, ``"session"`` or ``"fast"`` — the
        fast-update agent uses it to trigger the step-13 push on *any*
        new arrival ("either coming from a client, or from an
        anti-entropy session"). ``sender`` is the peer the updates came
        from, so the push never bounces straight back.
        """
        self._listeners.append(listener)

    def _notify(
        self, new_updates: List[Update], source: str, sender: Optional[int]
    ) -> None:
        if not new_updates:
            return
        for listener in self._listeners:
            listener(new_updates, source, sender)

    # -- client operations ---------------------------------------------------

    def local_write(
        self,
        key: str,
        value: object,
        payload_bytes: Optional[int] = None,
    ) -> Update:
        """Apply a client write at this replica and return the update."""
        ts = self.clock.tick()
        update = Update(
            origin=self.node,
            seq=self._next_seq,
            timestamp=ts,
            key=key,
            value=value,
            payload_bytes=(
                self.default_payload_bytes if payload_bytes is None else payload_bytes
            ),
        )
        self._next_seq += 1
        added = self.log.add(update)
        if not added:
            raise ReplicationError(f"duplicate local sequence {update.uid}")
        self.store.apply(update)
        self.local_writes += 1
        self._notify([update], "client", None)
        return update

    def read(self, key: str) -> Optional[StoreEntry]:
        """Serve a client read from local state (possibly stale)."""
        self.reads_served += 1
        return self.store.read(key)

    # -- replication operations -----------------------------------------------

    def integrate(
        self, updates: Iterable[Update], source: str, sender: Optional[int] = None
    ) -> List[Update]:
        """Absorb remote writes; returns only the genuinely new ones."""
        new_updates = self.log.add_all(updates)
        for update in new_updates:
            self.clock.witness(update.timestamp)
            self.store.apply(update)
        self._notify(new_updates, source, sender)
        return new_updates

    def summary(self) -> SummaryVector:
        """A copy of the current summary vector (safe to ship)."""
        return self.log.summary.copy()

    def has_update(self, uid: UpdateId) -> bool:
        return self.log.has(uid)

    def missing_for(self, peer_summary: SummaryVector) -> List[Update]:
        """Writes a peer with ``peer_summary`` has not seen."""
        return self.log.updates_since(peer_summary)

    def is_consistent_with(self, other: "ReplicaServer") -> bool:
        """Mutual consistency test: same visible content on both sides."""
        return self.store.content_signature() == other.store.content_signature()
