"""Demand substrate: models, spatial fields, dynamics, dissemination.

Demand — client requests per unit time at each replica — is the signal
the paper's algorithm steers by. This package provides static models
(§5's random assignment, Zipf), the hills-and-valleys surfaces of
Fig. 1, the time-varying scenarios of §3-§4, and the advertisement
protocol that lets nodes learn neighbour demand.
"""

from .advertisement import (
    ADVERT_HEADER_BYTES,
    ADVERT_VALUE_BYTES,
    DemandAdvert,
    DemandAdvertiser,
    bootstrap_tables,
)
from .base import (
    DemandModel,
    demand_percentile,
    normalize_snapshot,
    validate_demand_value,
)
from .dynamic import (
    FIG4_REPLICAS,
    FlashCrowdDemand,
    RandomWalkDemand,
    ScheduledDemand,
    paper_fig4_demand,
)
from .field import (
    SurfaceDemand,
    Valley,
    random_valleys,
    two_valley_field,
)
from .static import (
    SECTION2_REPLICAS,
    ConstantDemand,
    ExplicitDemand,
    UniformRandomDemand,
    ZipfDemand,
    paper_section2_demand,
    uniform_snapshot_for,
)
from .views import (
    DemandTable,
    DemandView,
    OracleDemandView,
    SnapshotDemandView,
    TableDemandView,
    TableEntry,
)

__all__ = [
    "DemandModel",
    "validate_demand_value",
    "normalize_snapshot",
    "demand_percentile",
    # static
    "ExplicitDemand",
    "ConstantDemand",
    "UniformRandomDemand",
    "ZipfDemand",
    "paper_section2_demand",
    "SECTION2_REPLICAS",
    "uniform_snapshot_for",
    # field
    "Valley",
    "SurfaceDemand",
    "random_valleys",
    "two_valley_field",
    # dynamic
    "ScheduledDemand",
    "FlashCrowdDemand",
    "RandomWalkDemand",
    "paper_fig4_demand",
    "FIG4_REPLICAS",
    # views
    "DemandView",
    "OracleDemandView",
    "SnapshotDemandView",
    "TableDemandView",
    "DemandTable",
    "TableEntry",
    # advertisement
    "DemandAdvert",
    "DemandAdvertiser",
    "bootstrap_tables",
    "ADVERT_HEADER_BYTES",
    "ADVERT_VALUE_BYTES",
]
