"""Spatial "hills and valleys" demand surfaces (paper Fig. 1).

The paper visualises demand as a landscape over the plane: *valleys* are
regions of high demand that attract updates (the gravity analogy of §1).
:class:`SurfaceDemand` realises that picture: demand at a node is a base
level plus a sum of Gaussian wells centred at valley points, evaluated
at the node's planar position.

These fields drive the §6 *islands* experiments, where several
high-demand valleys are separated by low-demand ridges.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import DemandError
from ..topology.graph import Topology
from .base import DemandModel, validate_demand_value

Point = Tuple[float, float]


@dataclass(frozen=True)
class Valley:
    """A Gaussian well of demand.

    Attributes:
        center: Planar position of the valley floor.
        peak: Demand added at the exact centre (requests/time unit).
        radius: Gaussian sigma; ~61% of ``peak`` remains at one radius.
    """

    center: Point
    peak: float
    radius: float

    def __post_init__(self) -> None:
        if self.peak < 0:
            raise DemandError(f"valley peak must be >= 0, got {self.peak}")
        if self.radius <= 0:
            raise DemandError(f"valley radius must be > 0, got {self.radius}")

    def contribution(self, point: Point) -> float:
        """Demand this valley adds at ``point``."""
        dx = point[0] - self.center[0]
        dy = point[1] - self.center[1]
        return self.peak * math.exp(-(dx * dx + dy * dy) / (2 * self.radius**2))


class SurfaceDemand(DemandModel):
    """Demand = base + sum of valley contributions at the node position.

    Args:
        positions: node -> planar position.
        valleys: The Gaussian wells forming the landscape.
        base: Demand far away from every valley (the "hills").
    """

    def __init__(
        self,
        positions: Dict[int, Point],
        valleys: Sequence[Valley],
        base: float = 1.0,
    ):
        if not positions:
            raise DemandError("SurfaceDemand needs at least one positioned node")
        self.positions = {int(n): (float(p[0]), float(p[1])) for n, p in positions.items()}
        self.valleys = list(valleys)
        self.base = validate_demand_value(base, -1)

    @classmethod
    def from_topology(
        cls, topo: Topology, valleys: Sequence[Valley], base: float = 1.0
    ) -> "SurfaceDemand":
        """Build from a topology whose nodes are all placed on the plane."""
        positions: Dict[int, Point] = {}
        for node in topo.nodes:
            pos = topo.position(node)
            if pos is None:
                raise DemandError(f"node {node} has no position; place it first")
            positions[node] = pos
        return cls(positions, valleys, base)

    def demand(self, node: int, time: float) -> float:
        node = int(node)
        pos = self.positions.get(node)
        if pos is None:
            raise DemandError(f"node {node} is not on the surface")
        return self.base + sum(v.contribution(pos) for v in self.valleys)

    def demand_at(self, point: Point) -> float:
        """Evaluate the continuous surface anywhere (for rendering Fig. 1)."""
        return self.base + sum(v.contribution(point) for v in self.valleys)

    def deepest_valley(self) -> Optional[Valley]:
        """The valley with the highest peak, or None when flat."""
        if not self.valleys:
            return None
        return max(self.valleys, key=lambda v: v.peak)


def random_valleys(
    count: int,
    plane_size: float,
    peak_range: Tuple[float, float] = (50.0, 150.0),
    radius_range: Tuple[float, float] = (0.1, 0.25),
    seed: int = 0,
) -> List[Valley]:
    """Scatter ``count`` valleys uniformly on a ``plane_size`` square.

    ``radius_range`` is expressed as a fraction of ``plane_size`` so the
    same parameters work across topology scales.
    """
    if count < 1:
        raise DemandError(f"count must be >= 1, got {count}")
    if plane_size <= 0:
        raise DemandError("plane_size must be positive")
    rng = random.Random(seed)
    valleys = []
    for _ in range(count):
        valleys.append(
            Valley(
                center=(rng.uniform(0, plane_size), rng.uniform(0, plane_size)),
                peak=rng.uniform(*peak_range),
                radius=plane_size * rng.uniform(*radius_range),
            )
        )
    return valleys


def two_valley_field(
    topo: Topology,
    plane_size: float,
    peak: float = 100.0,
    radius_fraction: float = 0.12,
    base: float = 1.0,
) -> SurfaceDemand:
    """The canonical §6 scenario: two distant valleys on one plane.

    Valleys sit at (1/4, 1/4) and (3/4, 3/4) of the plane so that the
    straight line between them crosses a low-demand ridge.
    """
    quarter = plane_size / 4
    valleys = [
        Valley(center=(quarter, quarter), peak=peak, radius=plane_size * radius_fraction),
        Valley(
            center=(3 * quarter, 3 * quarter),
            peak=peak,
            radius=plane_size * radius_fraction,
        ),
    ]
    return SurfaceDemand.from_topology(topo, valleys, base=base)
