"""Time-invariant demand models.

The paper's §5 simulations assign each replica a random demand; these
models cover that (uniform random), the heavy-tailed reality it stands
in for (Zipf), and the explicit per-node tables used by the worked
examples in §2-§4.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..errors import DemandError
from .base import DemandModel, validate_demand_value


class ExplicitDemand(DemandModel):
    """Demand given as an explicit node -> value table.

    Used by the paper's worked examples (e.g. §2: A=4, B=6, C=3, D=8,
    E=7). Unknown nodes default to ``default`` (0 unless overridden).
    """

    def __init__(self, table: Mapping[int, float], default: float = 0.0):
        self.table = {
            int(node): validate_demand_value(value, int(node))
            for node, value in table.items()
        }
        self.default = validate_demand_value(default, -1)

    def demand(self, node: int, time: float) -> float:
        return self.table.get(int(node), self.default)


class ConstantDemand(DemandModel):
    """Every node has the same demand — the paper's worst case (§8):

    "The worst case would be when all the replicas possess the same
    demand; in such a situation the algorithm behaves like a normal weak
    consistency algorithm."
    """

    def __init__(self, value: float = 1.0):
        self.value = validate_demand_value(value, -1)

    def demand(self, node: int, time: float) -> float:
        return self.value


class UniformRandomDemand(DemandModel):
    """I.i.d. uniform demand in ``[low, high]`` per node (the §5 setup).

    Per-node values are derived deterministically from the seed, so the
    same node always sees the same demand regardless of query order.
    """

    def __init__(self, low: float = 0.0, high: float = 100.0, seed: int = 0):
        if low < 0 or high < low:
            raise DemandError(f"invalid range [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)
        self.seed = int(seed)
        self._cache: Dict[int, float] = {}

    def demand(self, node: int, time: float) -> float:
        node = int(node)
        value = self._cache.get(node)
        if value is None:
            rng = random.Random((self.seed << 20) ^ (node * 2654435761 & 0xFFFFFFFF))
            value = rng.uniform(self.low, self.high)
            self._cache[node] = value
        return value


class ZipfDemand(DemandModel):
    """Zipf-distributed demand over a known node population.

    Node at demand-rank *k* (1-based) gets ``scale / k**exponent``.
    Which node gets which rank is a seeded random permutation, so demand
    hot-spots land at random topology positions (like the paper's random
    assignment) while the value distribution is heavy-tailed.
    """

    def __init__(
        self,
        nodes: Sequence[int],
        exponent: float = 1.0,
        scale: float = 100.0,
        seed: int = 0,
    ):
        if exponent <= 0:
            raise DemandError(f"exponent must be positive, got {exponent}")
        if scale <= 0:
            raise DemandError(f"scale must be positive, got {scale}")
        node_list = [int(n) for n in nodes]
        if not node_list:
            raise DemandError("ZipfDemand needs a non-empty node population")
        rng = random.Random(seed)
        shuffled = node_list[:]
        rng.shuffle(shuffled)
        self.table: Dict[int, float] = {
            node: scale / (rank**exponent)
            for rank, node in enumerate(shuffled, start=1)
        }

    def demand(self, node: int, time: float) -> float:
        node = int(node)
        if node not in self.table:
            raise DemandError(f"node {node} outside the Zipf population")
        return self.table[node]


def paper_section2_demand() -> ExplicitDemand:
    """The §2 example table: replicas A..E mapped to ids 0..4.

    Replica  A B C D E
    Demand   4 6 3 8 7
    """
    return ExplicitDemand({0: 4.0, 1: 6.0, 2: 3.0, 3: 8.0, 4: 7.0})


#: Stable name -> id mapping for the §2 example, used by tests/benches.
SECTION2_REPLICAS: Dict[str, int] = {"A": 0, "B": 1, "C": 2, "D": 3, "E": 4}


def uniform_snapshot_for(
    nodes: Iterable[int],
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> Dict[int, float]:
    """One-shot helper: a concrete random demand table for ``nodes``."""
    model = UniformRandomDemand(low=low, high=high, seed=seed)
    return model.snapshot(nodes)
