"""Demand model interface.

"Demand" in the paper is the number of client service requests a replica
receives per unit of time (§2). Everything the algorithms see of demand
goes through :class:`DemandModel.demand(node, time)`, so static and
time-varying models are interchangeable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import DemandError


class DemandModel:
    """Base class: a (node, time) -> requests-per-time-unit function."""

    def demand(self, node: int, time: float) -> float:
        """Demand of ``node`` at simulated ``time`` (requests per unit)."""
        raise NotImplementedError

    # -- conveniences shared by all models --------------------------------

    def snapshot(self, nodes: Iterable[int], time: float = 0.0) -> Dict[int, float]:
        """Evaluate the model for many nodes at one instant."""
        return {int(n): self.demand(int(n), time) for n in nodes}

    def ranked(self, nodes: Iterable[int], time: float = 0.0) -> List[int]:
        """Nodes sorted by decreasing demand (ties by id for determinism)."""
        snap = self.snapshot(nodes, time)
        return sorted(snap, key=lambda n: (-snap[n], n))

    def top_fraction(
        self, nodes: Sequence[int], fraction: float, time: float = 0.0
    ) -> List[int]:
        """The ``fraction`` (0..1] of nodes with the highest demand.

        Used to define the "high demand" replica subset of Figs. 5-6
        (the *Consistency high demand* curve).
        """
        if not 0 < fraction <= 1:
            raise DemandError(f"fraction must be in (0, 1], got {fraction}")
        ranked = self.ranked(nodes, time)
        count = max(1, round(len(ranked) * fraction))
        return ranked[:count]

    def total(self, nodes: Iterable[int], time: float = 0.0) -> float:
        """Sum of demand over ``nodes`` at ``time``."""
        return sum(self.snapshot(nodes, time).values())


def validate_demand_value(value: float, node: int) -> float:
    """Demands must be finite and non-negative."""
    value = float(value)
    if value < 0 or value != value or value in (float("inf"), float("-inf")):
        raise DemandError(f"invalid demand {value!r} for node {node}")
    return value


def normalize_snapshot(
    snapshot: Dict[int, float], target_total: float
) -> Dict[int, float]:
    """Scale a demand snapshot so its values sum to ``target_total``.

    Keeps relative demand (what the algorithms use) while letting
    request-satisfaction metrics be compared across demand models.
    """
    if target_total <= 0:
        raise DemandError(f"target_total must be positive, got {target_total}")
    current = sum(snapshot.values())
    if current <= 0:
        # All-zero demand: spread the target uniformly.
        if not snapshot:
            return {}
        share = target_total / len(snapshot)
        return {n: share for n in snapshot}
    scale = target_total / current
    return {n: v * scale for n, v in snapshot.items()}


def demand_percentile(
    snapshot: Dict[int, float], percentile: float
) -> float:
    """Value below which ``percentile`` (0..100) of demands fall."""
    if not snapshot:
        raise DemandError("empty snapshot")
    if not 0 <= percentile <= 100:
        raise DemandError(f"percentile must be in [0, 100], got {percentile}")
    values = sorted(snapshot.values())
    if percentile == 100:
        return values[-1]
    index = percentile / 100 * (len(values) - 1)
    low = int(index)
    high = min(low + 1, len(values) - 1)
    weight = index - low
    return values[low] * (1 - weight) + values[high] * weight
