"""Time-varying demand models (paper §3-§4).

Section 3 shows the static algorithm failing when demand shifts while
updates propagate (Fig. 4: A falls 2 -> 0, C rises 0 -> 9 at t=2).
These models produce exactly such shifts:

* :class:`ScheduledDemand` — piecewise-constant per-node schedules; the
  Fig. 4 scenario is :func:`paper_fig4_demand`.
* :class:`FlashCrowdDemand` — a node set's demand is multiplied during
  a time window (the "flash crowd" motif from the introduction).
* :class:`RandomWalkDemand` — demands drift as reflected random walks,
  recomputed at unit steps; models slowly-shifting interest.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import DemandError
from .base import DemandModel, validate_demand_value
from .static import ExplicitDemand

#: A per-node schedule: sorted (time, value) change points.
Schedule = List[Tuple[float, float]]


class ScheduledDemand(DemandModel):
    """Piecewise-constant demand from explicit change points.

    Args:
        initial: node -> demand before any change point.
        changes: node -> iterable of ``(time, new_value)`` pairs; the
            value holds from its time (inclusive) until the next change.
    """

    def __init__(
        self,
        initial: Mapping[int, float],
        changes: Optional[Mapping[int, Iterable[Tuple[float, float]]]] = None,
    ):
        self.initial = {
            int(n): validate_demand_value(v, int(n)) for n, v in initial.items()
        }
        self.schedules: Dict[int, Schedule] = {}
        self._times: Dict[int, List[float]] = {}
        for node, points in (changes or {}).items():
            node = int(node)
            schedule = [(float(t), validate_demand_value(v, node)) for t, v in points]
            # Sort by time only (stable), so entries sharing a change
            # time keep their input order and the last one wins below —
            # sorting the (time, value) pairs would instead resolve
            # duplicates by value, which has no semantic meaning.
            schedule.sort(key=lambda point: point[0])
            deduped: Schedule = []
            for time, value in schedule:
                if time < 0:
                    raise DemandError(f"change time {time} < 0 for node {node}")
                if deduped and deduped[-1][0] == time:
                    deduped[-1] = (time, value)
                else:
                    deduped.append((time, value))
            self.schedules[node] = deduped
            self._times[node] = [t for t, _ in deduped]

    def demand(self, node: int, time: float) -> float:
        node = int(node)
        base = self.initial.get(node, 0.0)
        times = self._times.get(node)
        if not times:
            return base
        index = bisect.bisect_right(times, time) - 1
        if index < 0:
            return base
        return self.schedules[node][index][1]

    def change_times(self) -> List[float]:
        """All distinct times at which any node's demand changes."""
        times = {t for schedule in self.schedules.values() for t, _ in schedule}
        return sorted(times)


class FlashCrowdDemand(DemandModel):
    """Multiply a node set's demand by ``factor`` during a window.

    Outside ``[start, end)`` the inner model is passed through
    unchanged — a sudden regional surge, as when a news story breaks.
    """

    def __init__(
        self,
        inner: DemandModel,
        hot_nodes: Iterable[int],
        start: float,
        end: float,
        factor: float = 10.0,
    ):
        if end <= start:
            raise DemandError(f"window [{start}, {end}) is empty")
        if factor < 0:
            raise DemandError(f"factor must be >= 0, got {factor}")
        self.inner = inner
        self.hot_nodes = {int(n) for n in hot_nodes}
        self.start = float(start)
        self.end = float(end)
        self.factor = float(factor)

    def demand(self, node: int, time: float) -> float:
        value = self.inner.demand(node, time)
        if int(node) in self.hot_nodes and self.start <= time < self.end:
            return value * self.factor
        return value


class RandomWalkDemand(DemandModel):
    """Reflected random-walk drift around an initial demand table.

    Demand for node *n* at integer step *k* is
    ``clip(initial[n] + sum of k i.i.d. uniform(-step, +step))`` with
    reflection at ``[low, high]``. Within a unit interval the demand is
    constant, so the model remains piecewise-constant like the paper's
    session-grained reasoning.
    """

    def __init__(
        self,
        initial: Mapping[int, float],
        step: float = 5.0,
        low: float = 0.0,
        high: float = 100.0,
        seed: int = 0,
    ):
        if step < 0:
            raise DemandError(f"step must be >= 0, got {step}")
        if high <= low:
            raise DemandError(f"invalid bounds [{low}, {high}]")
        self.initial = {
            int(n): validate_demand_value(v, int(n)) for n, v in initial.items()
        }
        self.step = float(step)
        self.low = float(low)
        self.high = float(high)
        self.seed = int(seed)
        self._paths: Dict[int, List[float]] = {}
        self._rngs: Dict[int, random.Random] = {}

    def _reflect(self, value: float) -> float:
        span = self.high - self.low
        # Fold the value into [low, high] by reflecting at the borders.
        offset = (value - self.low) % (2 * span)
        if offset > span:
            offset = 2 * span - offset
        return self.low + offset

    def _path(self, node: int, steps: int) -> List[float]:
        path = self._paths.get(node)
        if path is None:
            path = [self._reflect(self.initial.get(node, self.low))]
            self._paths[node] = path
            # One cached generator per node: each increment is drawn
            # exactly once, so extending a k-step path to k+m steps
            # costs m draws instead of re-deriving all k+m from
            # scratch. Query order cannot matter — increment i is
            # always the i-th draw of this stream.
            self._rngs[node] = random.Random((self.seed << 24) ^ (node * 1000003))
        if len(path) <= steps:
            rng = self._rngs[node]
            for _ in range(steps - len(path) + 1):
                path.append(
                    self._reflect(path[-1] + rng.uniform(-self.step, self.step))
                )
        return path

    def demand(self, node: int, time: float) -> float:
        if time < 0:
            raise DemandError(f"time must be >= 0, got {time}")
        step = int(time)
        return self._path(int(node), step)[step]


def paper_fig4_demand() -> ScheduledDemand:
    """The §3/Fig. 4 scenario (nodes: A=0, B=1, C=2, D=3).

    B's neighbour demands at t=1 are D=13, A=2, C=0; by t=2 A has fallen
    to 0 and C has risen to 9 (A' and C' in the figure).
    """
    return ScheduledDemand(
        initial={0: 2.0, 1: 6.0, 2: 0.0, 3: 13.0},
        changes={0: [(2.0, 0.0)], 2: [(2.0, 9.0)]},
    )


#: Stable name -> id mapping for the Fig. 4 example.
FIG4_REPLICAS: Dict[str, int] = {"A": 0, "B": 1, "C": 2, "D": 3}
