"""Periodic neighbour-demand advertisement (paper §4).

"We assume that every node is periodically informed of the demand of
their neighbours, in a way similar to IP routing algorithms." —
:class:`DemandAdvertiser` is that mechanism: every ``period`` time units
(with optional phase jitter so nodes do not synchronise) a node sends a
small :class:`DemandAdvert` to each physical neighbour; receivers update
their :class:`repro.demand.views.DemandTable`.

The advert is deliberately tiny (one float plus a header) — the paper's
scalability claim rests on demand dissemination being cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import DemandError
from ..runtime.base import Clock, Transport
from .base import DemandModel
from .views import DemandTable

#: Bytes of framing per advert (addresses, type tag), plus one float64.
ADVERT_HEADER_BYTES = 20
ADVERT_VALUE_BYTES = 8


@dataclass(frozen=True)
class DemandAdvert:
    """Wire message: ``sender`` currently serves ``value`` requests/unit."""

    sender: int
    value: float

    kind = "demand-advert"

    def size_bytes(self) -> int:
        return ADVERT_HEADER_BYTES + ADVERT_VALUE_BYTES


class DemandAdvertiser:
    """Per-node periodic advertiser plus receiver.

    Args:
        runtime: Owning clock (a :class:`~repro.runtime.base.Runtime`
            or a bare :class:`~repro.sim.engine.Simulator`).
        transport: Transport used for adverts.
        node: This node's id.
        model: Ground-truth demand (the node knows its own demand by
            counting its clients' requests).
        table: The neighbour table to update on received adverts.
        period: Time between advert rounds (in session-time units).
        jitter: The first round fires at ``uniform(0, jitter)`` so nodes
            desynchronise; later rounds are strictly periodic.

    Call :meth:`start` once; :meth:`on_message` must be wired into the
    node's dispatch (done by
    :class:`repro.core.protocol.ReplicationNode`).
    """

    def __init__(
        self,
        runtime: Clock,
        transport: Transport,
        node: int,
        model: DemandModel,
        table: DemandTable,
        period: float = 1.0,
        jitter: float = 1.0,
    ):
        if period <= 0:
            raise DemandError(f"advert period must be > 0, got {period}")
        if jitter < 0:
            raise DemandError(f"jitter must be >= 0, got {jitter}")
        self.runtime = runtime
        self.transport = transport
        self.node = int(node)
        self.model = model
        self.table = table
        self.period = float(period)
        self.jitter = float(jitter)
        self.rounds_sent = 0
        self.adverts_received = 0
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Schedule the first advertisement round."""
        if self._started:
            raise DemandError(f"advertiser for node {self.node} already started")
        self._started = True
        rng = self.runtime.rng.stream("advert", self.node)
        first = rng.uniform(0, self.jitter) if self.jitter else 0.0
        self.runtime.schedule_fast(first, self._round)

    def stop(self) -> None:
        """Stop advertising (replica retirement); the timer chain dies
        at its next firing."""
        self._stopped = True

    def _round(self) -> None:
        if self._stopped:
            return
        value = self.model.demand(self.node, self.runtime.now)
        advert = DemandAdvert(sender=self.node, value=value)
        for neighbor in self.transport.physical_neighbors(self.node):
            self.transport.send(self.node, neighbor, advert)
        self.rounds_sent += 1
        # Advertisement rounds run for the lifetime of the node and are
        # never cancelled, so the handle-free fast path applies.
        self.runtime.schedule_fast(self.period, self._round)

    def on_message(self, src: int, message: DemandAdvert) -> None:
        """Handle a received advert (updates the neighbour table)."""
        if not isinstance(message, DemandAdvert):
            raise DemandError(f"unexpected message {message!r}")
        self.adverts_received += 1
        self.table.update(message.sender, message.value, self.runtime.now)


def bootstrap_tables(
    network: Transport, model: DemandModel, at_time: float = 0.0
) -> Dict[int, DemandTable]:
    """Pre-populate every node's table with its neighbours' true demand.

    Gives protocols a warm start (the paper assumes nodes already know
    neighbour demand when the algorithm begins); the advertiser then
    keeps the tables fresh as demand drifts.
    """
    tables: Dict[int, DemandTable] = {}
    for node in network.topology.nodes:
        table = DemandTable()
        for neighbor in network.physical_neighbors(node):
            table.update(neighbor, model.demand(neighbor, at_time), at_time)
        tables[node] = table
    return tables
