"""Per-node views of neighbour demand.

The §4 dynamic algorithm keys on *what a node believes* its neighbours'
demands are — beliefs may be perfect (an oracle), frozen (the §3 static
straw man that fails under change), or learned from periodic
advertisements (the realistic mechanism, "similar to IP routing
algorithms"). Partner-selection policies consume this interface only,
so every protocol variant can be paired with every knowledge model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from ..errors import DemandError
from .base import DemandModel

Clock = Callable[[], float]


class DemandView:
    """What one node believes about other nodes' demand."""

    def demand_of(self, node: int) -> float:
        """Believed demand of ``node`` right now."""
        raise NotImplementedError

    def rank(self, nodes: Iterable[int]) -> list:
        """Nodes sorted by decreasing believed demand (ties by id)."""
        nodes = [int(n) for n in nodes]
        return sorted(nodes, key=lambda n: (-self.demand_of(n), n))


class OracleDemandView(DemandView):
    """Perfect, instantaneous knowledge of the true demand model.

    This is the knowledge model implied by the paper's §4 example
    ("if B knows about this, B starts a session with C'").
    """

    def __init__(self, model: DemandModel, clock: Clock):
        self.model = model
        self.clock = clock

    def demand_of(self, node: int) -> float:
        return self.model.demand(node, self.clock())


class SnapshotDemandView(DemandView):
    """Demand frozen at a fixed instant — the §3 static algorithm.

    When true demand shifts after ``at_time``, this view keeps steering
    updates to yesterday's hot spots, which is exactly the failure mode
    Fig. 4 illustrates.
    """

    def __init__(self, model: DemandModel, nodes: Iterable[int], at_time: float = 0.0):
        self._table: Dict[int, float] = model.snapshot(nodes, at_time)
        self.at_time = at_time

    def demand_of(self, node: int) -> float:
        node = int(node)
        if node not in self._table:
            raise DemandError(f"node {node} missing from snapshot view")
        return self._table[node]


@dataclass
class TableEntry:
    """One believed demand value and when it was learned."""

    value: float
    updated_at: float


class DemandTable:
    """The per-node neighbour table of §4 ("identifying name and demand").

    Filled by :class:`repro.demand.advertisement.DemandAdvertiser`;
    also records update times so staleness can be measured.
    """

    def __init__(self, default: float = 0.0):
        self.default = float(default)
        self._entries: Dict[int, TableEntry] = {}

    def update(self, node: int, value: float, now: float) -> None:
        """Record that ``node`` advertised ``value`` at time ``now``."""
        self._entries[int(node)] = TableEntry(value=float(value), updated_at=now)

    def believed(self, node: int) -> float:
        entry = self._entries.get(int(node))
        return entry.value if entry is not None else self.default

    def staleness(self, node: int, now: float) -> Optional[float]:
        """Age of the belief about ``node``, or None if never heard."""
        entry = self._entries.get(int(node))
        return None if entry is None else now - entry.updated_at

    def known_nodes(self) -> tuple:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class TableDemandView(DemandView):
    """Beliefs read from an advertisement-maintained :class:`DemandTable`."""

    def __init__(self, table: DemandTable):
        self.table = table

    def demand_of(self, node: int) -> float:
        return self.table.believed(node)
