"""repro — reproduction of *A Demand based Algorithm for Rapid Updating
of Replicas* (Acosta-Elías & Navarro-Moldes, ICDCSW 2002).

The package implements the paper's **fast consistency** algorithm — a
weak-consistency (anti-entropy) replication protocol that prioritises
replicas by client demand — together with every substrate it needs: a
discrete-event simulator, BRITE-style Internet topologies, demand
models, a TSAE replication core, and the full evaluation harness that
regenerates the paper's figures and tables.

The protocol itself is execution-world agnostic: it talks to a
:class:`~repro.runtime.Runtime` port with two adapters.  Simulated
quickstart (:class:`~repro.runtime.SimRuntime` under the hood,
virtual time, bit-reproducible)::

    from repro import ReplicationSystem, fast_consistency, weak_consistency
    from repro.topology import internet_like
    from repro.demand import UniformRandomDemand

    topo = internet_like(50, seed=7)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=7),
        config=fast_consistency(),
        seed=7,
    )
    system.start()
    update = system.inject_write(node=0)
    t = system.run_until_replicated(update.uid, max_time=50)
    print(f"replicated everywhere after {t:.2f} session times")

Live quickstart (:class:`~repro.runtime.AsyncioRuntime`: the same
protocol code on wall-clock time, serving client traffic)::

    from repro import ReplicaCluster

    with ReplicaCluster(nodes=16, seed=7) as cluster:
        update = cluster.put("content", "v1", node=0)
        cluster.wait_replicated(update.uid, timeout=10.0)
        print(cluster.get("content", node=9), cluster.stats()["traffic"])

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from .core import (
    ProtocolConfig,
    ReplicationSystem,
    StrongConsistencySystem,
    bridge_system,
    detect_islands,
    dynamic_fast_consistency,
    fast_consistency,
    high_demand_consistency,
    push_only_consistency,
    static_table_consistency,
    weak_consistency,
)
from .errors import (
    ConfigurationError,
    DemandError,
    ExperimentError,
    ExperimentSizeWarning,
    FaultError,
    ReplicationError,
    ReproError,
    SimulationError,
    TopologyError,
    TransportError,
)
from .faults import FaultProcess, FaultSchedule
from .runtime import Clock, FaultInjector, Runtime, SimRuntime, Transport

__version__ = "1.1.0"

#: Asyncio-backed names; resolved lazily so ``import repro`` stays free
#: of :mod:`asyncio` (PEP 562 module __getattr__).
_LIVE_EXPORTS = ("ReplicaCluster", "AsyncioRuntime")

__all__ = [
    "__version__",
    "ProtocolConfig",
    "ReplicationSystem",
    "StrongConsistencySystem",
    "weak_consistency",
    "high_demand_consistency",
    "fast_consistency",
    "push_only_consistency",
    "dynamic_fast_consistency",
    "static_table_consistency",
    "detect_islands",
    "bridge_system",
    # runtime port & adapters
    "Clock",
    "Transport",
    "Runtime",
    "FaultInjector",
    "SimRuntime",
    "AsyncioRuntime",
    "ReplicaCluster",
    # faults
    "FaultSchedule",
    "FaultProcess",
    # errors
    "ReproError",
    "FaultError",
    "SimulationError",
    "TopologyError",
    "DemandError",
    "ReplicationError",
    "ConfigurationError",
    "ExperimentError",
    "TransportError",
    "ExperimentSizeWarning",
]


def __getattr__(name: str):
    if name in _LIVE_EXPORTS:
        from . import runtime

        value = getattr(runtime, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LIVE_EXPORTS))
