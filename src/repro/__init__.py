"""repro — reproduction of *A Demand based Algorithm for Rapid Updating
of Replicas* (Acosta-Elías & Navarro-Moldes, ICDCSW 2002).

The package implements the paper's **fast consistency** algorithm — a
weak-consistency (anti-entropy) replication protocol that prioritises
replicas by client demand — together with every substrate it needs: a
discrete-event simulator, BRITE-style Internet topologies, demand
models, a TSAE replication core, and the full evaluation harness that
regenerates the paper's figures and tables.

Quickstart::

    from repro import ReplicationSystem, fast_consistency, weak_consistency
    from repro.topology import internet_like
    from repro.demand import UniformRandomDemand

    topo = internet_like(50, seed=7)
    system = ReplicationSystem(
        topology=topo,
        demand=UniformRandomDemand(seed=7),
        config=fast_consistency(),
        seed=7,
    )
    system.start()
    update = system.inject_write(node=0)
    t = system.run_until_replicated(update.uid, max_time=50)
    print(f"replicated everywhere after {t:.2f} session times")

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from .core import (
    ProtocolConfig,
    ReplicationSystem,
    StrongConsistencySystem,
    bridge_system,
    detect_islands,
    dynamic_fast_consistency,
    fast_consistency,
    high_demand_consistency,
    push_only_consistency,
    static_table_consistency,
    weak_consistency,
)
from .errors import (
    ConfigurationError,
    DemandError,
    ExperimentError,
    ExperimentSizeWarning,
    FaultError,
    ReplicationError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .faults import FaultProcess, FaultSchedule

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ProtocolConfig",
    "ReplicationSystem",
    "StrongConsistencySystem",
    "weak_consistency",
    "high_demand_consistency",
    "fast_consistency",
    "push_only_consistency",
    "dynamic_fast_consistency",
    "static_table_consistency",
    "detect_islands",
    "bridge_system",
    # faults
    "FaultSchedule",
    "FaultProcess",
    # errors
    "ReproError",
    "FaultError",
    "SimulationError",
    "TopologyError",
    "DemandError",
    "ReplicationError",
    "ConfigurationError",
    "ExperimentError",
    "ExperimentSizeWarning",
]
