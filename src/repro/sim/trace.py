"""Structured tracing for simulations.

A :class:`Tracer` collects :class:`TraceRecord` rows (time, category,
free-form fields). Tracing is the debugging backbone of the simulator:
protocol agents record session starts, message deliveries, fast-update
offers, and so on. Categories can be enabled selectively so that large
experiments pay nothing for tracing they do not use.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: Simulated time of the occurrence.
        category: Dotted category name, e.g. ``"session.start"``.
        fields: Category-specific payload (node ids, message kinds...).
    """

    time: float
    category: str
    fields: Dict[str, object] = field(default_factory=dict)

    def get(self, key: str, default: object = None) -> object:
        """Return ``fields[key]`` or ``default``."""
        return self.fields.get(key, default)


class Tracer:
    """Collects trace records, with per-category enablement.

    By default every category is enabled. Call :meth:`enable_only` to
    restrict tracing, or :meth:`disable` to turn it off wholesale.
    Callbacks registered with :meth:`on_record` observe records as they
    are appended (metrics use this to avoid post-hoc scans).
    """

    def __init__(self, enabled: bool = True):
        self.records: List[TraceRecord] = []
        self._enabled = enabled
        self._categories: Optional[Set[str]] = None  # None = all
        self._listeners: List[Callable[[TraceRecord], None]] = []

    # -- configuration ------------------------------------------------

    def disable(self) -> None:
        """Stop recording (listeners still do not fire)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume recording every enabled category."""
        self._enabled = True

    def enable_only(self, categories: Iterable[str]) -> None:
        """Record only the given categories (prefix match on dots).

        ``enable_only(['session'])`` records ``session.start`` and
        ``session.end`` but not ``net.drop``.
        """
        self._enabled = True
        self._categories = set(categories)

    def wants(self, category: str) -> bool:
        """Whether a record in ``category`` would currently be stored."""
        if not self._enabled:
            return False
        if self._categories is None:
            return True
        if category in self._categories:
            return True
        # Prefix match: enabling "session" covers "session.start".
        head = category.split(".", 1)[0]
        return head in self._categories

    def on_record(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every stored record."""
        self._listeners.append(listener)

    # -- recording ----------------------------------------------------

    def record(self, time: float, category: str, **fields: object) -> None:
        """Store one record if the category is enabled."""
        if not self.wants(category):
            return
        rec = TraceRecord(time=time, category=category, fields=fields)
        self.records.append(rec)
        for listener in self._listeners:
            listener(rec)

    # -- querying -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def select(self, category: str) -> List[TraceRecord]:
        """All records whose category equals or is nested under ``category``."""
        prefix = category + "."
        return [
            r
            for r in self.records
            if r.category == category or r.category.startswith(prefix)
        ]

    def clear(self) -> None:
        """Drop all stored records (listeners stay registered)."""
        self.records.clear()

    # -- export -------------------------------------------------------

    def to_csv(self) -> str:
        """Render all records as CSV text (time, category, key=value...)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["time", "category", "fields"])
        for rec in self.records:
            packed = ";".join(f"{k}={v}" for k, v in sorted(rec.fields.items()))
            writer.writerow([f"{rec.time:.6f}", rec.category, packed])
        return buf.getvalue()
