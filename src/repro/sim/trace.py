"""Structured tracing for simulations.

A :class:`Tracer` collects :class:`TraceRecord` rows (time, category,
free-form fields). Tracing is the debugging backbone of the simulator:
protocol agents record session starts, message deliveries, fast-update
offers, and so on. Categories can be enabled selectively so that large
experiments pay nothing for tracing they do not use.

Hot callers (the network delivery loop, the session and fast-update
agents) guard their ``record`` calls with :meth:`Tracer.wants` so that
a disabled or filtered-out category costs neither a kwargs dict nor a
:class:`TraceRecord` allocation — ``wants`` is one attribute check for
a disabled tracer and one memoised dict lookup for a filtered one.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set


class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: Simulated time of the occurrence.
        category: Dotted category name, e.g. ``"session.start"``.
        fields: Category-specific payload (node ids, message kinds...).

    ``__slots__`` matters: large runs allocate one record per traced
    event, and dropping the per-instance dict measurably shrinks both
    memory and allocation time.
    """

    __slots__ = ("time", "category", "fields")

    def __init__(
        self,
        time: float,
        category: str,
        fields: Optional[Dict[str, object]] = None,
    ):
        self.time = time
        self.category = category
        self.fields: Dict[str, object] = {} if fields is None else fields

    def get(self, key: str, default: object = None) -> object:
        """Return ``fields[key]`` or ``default``."""
        return self.fields.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.fields == other.fields
        )

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time!r}, category={self.category!r}, "
            f"fields={self.fields!r})"
        )


class Tracer:
    """Collects trace records, with per-category enablement.

    By default every category is enabled. Call :meth:`enable_only` to
    restrict tracing, or :meth:`disable` to turn it off wholesale.
    Callbacks registered with :meth:`on_record` observe records as they
    are appended (metrics use this to avoid post-hoc scans).
    """

    def __init__(self, enabled: bool = True):
        self.records: List[TraceRecord] = []
        self._enabled = enabled
        self._categories: Optional[Set[str]] = None  # None = all
        self._listeners: List[Callable[[TraceRecord], None]] = []
        #: category -> verdict memo; filled lazily, cleared on reconfig
        self._wants_cache: Dict[str, bool] = {}
        #: category -> positions in ``records`` (select() never scans)
        self._index: Dict[str, List[int]] = {}

    # -- configuration ------------------------------------------------

    def disable(self) -> None:
        """Stop recording (listeners still do not fire)."""
        self._enabled = False

    def enable(self) -> None:
        """Resume recording every enabled category."""
        self._enabled = True

    def enable_only(self, categories: Iterable[str]) -> None:
        """Record only the given categories (prefix match on dots).

        ``enable_only(['session'])`` records ``session.start`` and
        ``session.end`` but not ``net.drop``.
        """
        self._enabled = True
        self._categories = set(categories)
        self._wants_cache.clear()

    def wants(self, category: str) -> bool:
        """Whether a record in ``category`` would currently be stored.

        Hot call sites check this before building their kwargs, so the
        answer must stay cheap: disabled short-circuits on one attribute
        and the filtered verdict is memoised per category.
        """
        if not self._enabled:
            return False
        categories = self._categories
        if categories is None:
            return True
        cached = self._wants_cache.get(category)
        if cached is None:
            # Prefix match: enabling "session" covers "session.start".
            cached = (
                category in categories
                or category.split(".", 1)[0] in categories
            )
            self._wants_cache[category] = cached
        return cached

    def on_record(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every stored record."""
        self._listeners.append(listener)

    # -- recording ----------------------------------------------------

    def record(self, time: float, category: str, **fields: object) -> None:
        """Store one record if the category is enabled."""
        if not self.wants(category):
            return
        rec = TraceRecord(time, category, fields)
        records = self.records
        self._index.setdefault(category, []).append(len(records))
        records.append(rec)
        for listener in self._listeners:
            listener(rec)

    # -- querying -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def select(self, category: str) -> List[TraceRecord]:
        """All records whose category equals or is nested under ``category``.

        Served from the per-category index: only matching categories'
        positions are touched (merged back into insertion order), never
        the full record list.
        """
        prefix = category + "."
        matching = [
            positions
            for cat, positions in self._index.items()
            if cat == category or cat.startswith(prefix)
        ]
        if not matching:
            return []
        if len(matching) == 1:
            positions = matching[0]
        else:
            positions = sorted(pos for group in matching for pos in group)
        records = self.records
        return [records[pos] for pos in positions]

    def clear(self) -> None:
        """Drop all stored records (listeners stay registered)."""
        self.records.clear()
        self._index.clear()

    # -- export -------------------------------------------------------

    def to_csv(self) -> str:
        """Render all records as CSV text: time, category, fields.

        The fields cell is a JSON object (keys sorted, non-JSON values
        stringified), so the row shape stays a fixed three columns for
        header-driven consumers while values containing ``;``, ``=``,
        ``,``, quotes or newlines survive the round trip unambiguously.
        """
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["time", "category", "fields"])
        for rec in self.records:
            packed = json.dumps(rec.fields, sort_keys=True, default=str)
            writer.writerow([f"{rec.time:.6f}", rec.category, packed])
        return buf.getvalue()
