"""Discrete-event simulation substrate.

The :mod:`repro.sim` package is the NS-2 replacement described in
DESIGN.md: a deterministic event-heap engine (:class:`Simulator`),
generator-based processes, named RNG streams, structured tracing and a
topology-aware lossy message network.
"""

from .engine import (
    RUN_EXHAUSTED,
    RUN_MAX_EVENTS,
    RUN_STOPPED,
    RUN_UNTIL,
    Simulator,
)
from .events import Event, EventHandle
from .network import (
    BandwidthLatency,
    DistanceLatency,
    FixedLatency,
    JitteredLatency,
    LatencyModel,
    Network,
    TrafficCounters,
)
from .process import Interrupted, Process, Signal
from .rng import RngRegistry, derive_seed
from .sharded import (
    ShardedSimulator,
    ShardEngine,
    compute_lookahead,
    partition_topology,
)
from .trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "RUN_EXHAUSTED",
    "RUN_MAX_EVENTS",
    "RUN_STOPPED",
    "RUN_UNTIL",
    "Event",
    "EventHandle",
    "Network",
    "LatencyModel",
    "FixedLatency",
    "DistanceLatency",
    "BandwidthLatency",
    "JitteredLatency",
    "TrafficCounters",
    "Process",
    "Signal",
    "Interrupted",
    "RngRegistry",
    "derive_seed",
    "ShardedSimulator",
    "ShardEngine",
    "partition_topology",
    "compute_lookahead",
    "Tracer",
    "TraceRecord",
]
