"""The discrete-event simulation engine.

:class:`Simulator` is a classic event-heap kernel: callbacks are
scheduled at future simulated times and executed in (time, priority,
insertion) order. It also hosts the cross-cutting services every
simulation needs — deterministic RNG streams (:mod:`repro.sim.rng`),
structured tracing (:mod:`repro.sim.trace`) and a tiny topic-based
pub/sub bus that metrics collectors subscribe to.

The engine replaces the NS-2 kernel the paper's authors built on; the
paper measures everything in "average session times", so no packet-level
fidelity is needed — only ordered delivery of timestamped callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError
from .events import DEFAULT_PRIORITY, Event, EventHandle, next_sequence
from .rng import RngRegistry
from .trace import Tracer

#: Result strings returned by :meth:`Simulator.run`.
RUN_EXHAUSTED = "exhausted"  # no events left
RUN_UNTIL = "until"  # reached the time horizon
RUN_MAX_EVENTS = "max-events"  # executed the event budget
RUN_STOPPED = "stopped"  # stop() called from inside a callback

#: Compaction only kicks in past this many dead heap entries, so small
#: simulations never pay for a rebuild.
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Master seed for :attr:`rng`; every stochastic component of
            a simulation must draw from a named stream of this registry.
        trace: Optional pre-configured tracer (a fresh enabled one is
            created by default).

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(2.0, fired.append, "late")
        >>> _ = sim.schedule(1.0, fired.append, "early")
        >>> sim.run()
        'exhausted'
        >>> fired
        ['early', 'late']
    """

    def __init__(self, seed: int = 0, trace: Optional[Tracer] = None):
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer()
        self._heap: List[Event] = []
        self._pending = 0
        self._cancelled_in_heap = 0
        self._stopping = False
        self._running = False
        self.events_executed = 0
        self._subscribers: Dict[str, List[Callable[..., None]]] = {}

    # -- scheduling -----------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        return self.schedule_at(
            self.now + delay, callback, *args, priority=priority, label=label
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        handle = EventHandle(time=float(time), priority=priority, seq=next_sequence())
        event = Event(handle=handle, callback=callback, args=args, label=label)
        event.sim = self
        handle._event = event
        heapq.heappush(self._heap, event)
        self._pending += 1
        return handle

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.

        Returns:
            True if the event was pending and is now cancelled; False if
            it had already fired, was already cancelled, or belongs to a
            different simulator.
        """
        event = getattr(handle, "_event", None)
        if event is None or event.cancelled or event.sim is not self:
            return False
        event.cancelled = True
        # Release the handle -> event back-reference so retained handles
        # do not keep the callback and its arguments alive.
        handle._event = None
        self._pending -= 1
        self._cancelled_in_heap += 1
        # Cancelled events otherwise sit in the heap until their time
        # comes (session timeouts are cancelled constantly), inflating
        # every push/pop by log(dead + live). Compact once the dead
        # majority passes the threshold; heapify keeps the pop order
        # bit-identical because sort keys are unique.
        if (
            self._cancelled_in_heap > _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact_heap()
        return True

    def _compact_heap(self) -> None:
        """Drop cancelled events from the heap and restore the invariant."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def pending_count(self) -> int:
        """Number of events scheduled and not yet fired or cancelled."""
        return self._pending

    # -- pub/sub ----------------------------------------------------------

    def subscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Register ``handler(**payload)`` for :meth:`publish` on ``topic``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, **payload: Any) -> int:
        """Synchronously deliver ``payload`` to every subscriber of ``topic``.

        Returns:
            The number of handlers invoked.
        """
        handlers = self._subscribers.get(topic)
        if not handlers:
            return 0
        for handler in tuple(handlers):
            handler(**payload)
        return len(handlers)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.

        Returns:
            True if an event was executed, False if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            # Drop the handle -> event back-reference: a late cancel()
            # through the handle then reports False, and a retained
            # handle no longer keeps the fired callback and args alive.
            event.handle._event = None
            self._pending -= 1
            self.now = event.sort_key[0]
            self.events_executed += 1
            event.fire()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> str:
        """Run events until a stopping condition is met.

        Args:
            until: Stop once the next event would fire after this time;
                ``now`` is advanced to ``until`` in that case.
            max_events: Stop after executing this many events (guards
                against runaway simulations in tests).

        Returns:
            One of the ``RUN_*`` constants describing why the run ended.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        self._stopping = False
        executed = 0
        try:
            while True:
                if self._stopping:
                    return RUN_STOPPED
                if max_events is not None and executed >= max_events:
                    return RUN_MAX_EVENTS
                event = self._peek_live()
                if event is None:
                    if until is not None and until > self.now:
                        self.now = until
                    return RUN_EXHAUSTED
                if until is not None and event.sort_key[0] > until:
                    self.now = until
                    return RUN_UNTIL
                self.step()
                executed += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopping = True

    def _peek_live(self) -> Optional[Event]:
        """Return the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_in_heap -= 1
        return self._heap[0] if self._heap else None
