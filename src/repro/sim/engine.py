"""The discrete-event simulation engine.

:class:`Simulator` is a classic event-heap kernel: callbacks are
scheduled at future simulated times and executed in (time, priority,
insertion) order. It also hosts the cross-cutting services every
simulation needs — deterministic RNG streams (:mod:`repro.sim.rng`),
structured tracing (:mod:`repro.sim.trace`) and a tiny topic-based
pub/sub bus that metrics collectors subscribe to.

The heap stores plain ``(time, priority, seq, handle, callback, args)``
tuples: ordering is decided by the first three scalar elements, so every
push/pop comparison runs in C instead of ``Event.__lt__`` — the hottest
call site by count in profile runs.  ``handle`` is ``None`` for events
scheduled through the trusted :meth:`Simulator.schedule_fast` path
(kernel-originated, fire-and-forget deliveries that are never
cancelled), which also skips argument validation and handle allocation.

The engine replaces the NS-2 kernel the paper's authors built on; the
paper measures everything in "average session times", so no packet-level
fidelity is needed — only ordered delivery of timestamped callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .events import DEFAULT_PRIORITY, EventHandle, _sequence
from .rng import RngRegistry
from .trace import Tracer

#: Result strings returned by :meth:`Simulator.run`.
RUN_EXHAUSTED = "exhausted"  # no events left
RUN_UNTIL = "until"  # reached the time horizon
RUN_MAX_EVENTS = "max-events"  # executed the event budget
RUN_STOPPED = "stopped"  # stop() called from inside a callback

#: One heap element: ``(time, priority, seq, handle_or_None, callback, args)``.
HeapEntry = Tuple[float, int, int, Optional[EventHandle], Callable[..., Any], tuple]

#: Compaction only kicks in past this many dead heap entries, so small
#: simulations never pay for a rebuild.
_COMPACT_MIN_CANCELLED = 64

_heappush = heapq.heappush
_heappop = heapq.heappop


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: Master seed for :attr:`rng`; every stochastic component of
            a simulation must draw from a named stream of this registry.
        trace: Optional pre-configured tracer (a fresh enabled one is
            created by default).

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(2.0, fired.append, "late")
        >>> _ = sim.schedule(1.0, fired.append, "early")
        >>> sim.run()
        'exhausted'
        >>> fired
        ['early', 'late']
    """

    def __init__(self, seed: int = 0, trace: Optional[Tracer] = None):
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer()
        self._heap: List[HeapEntry] = []
        self._pending = 0
        self._cancelled_in_heap = 0
        self._stopping = False
        self._running = False
        self.events_executed = 0
        self._subscribers: Dict[str, List[Callable[..., None]]] = {}

    # -- scheduling -----------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        # Body duplicated from schedule_at (minus the absolute-time
        # arithmetic): session timers fire through here constantly and
        # the delegation call showed up in macro profiles.
        time = self.now + delay
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        seq = next(_sequence)
        handle = EventHandle(time=float(time), priority=priority, seq=seq)
        handle.sim = self
        _heappush(self._heap, (handle.time, priority, seq, handle, callback, args))
        self._pending += 1
        return handle

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        seq = next(_sequence)
        handle = EventHandle(time=float(time), priority=priority, seq=seq)
        handle.sim = self
        _heappush(self._heap, (handle.time, priority, seq, handle, callback, args))
        self._pending += 1
        return handle

    def schedule_fast(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Trusted internal fast path: fire-and-forget in ``delay``.

        Skips the past-time and callability validation of
        :meth:`schedule_at` and allocates no :class:`EventHandle`, so the
        scheduled event **cannot be cancelled**.  Only kernel-originated
        call sites whose arguments are correct by construction (message
        delivery in :class:`~repro.sim.network.Network`) may use it;
        everything user-facing goes through :meth:`schedule`.
        """
        _heappush(
            self._heap,
            (self.now + delay, DEFAULT_PRIORITY, next(_sequence), None, callback, args),
        )
        self._pending += 1

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.

        Returns:
            True if the event was pending and is now cancelled; False if
            it had already fired, was already cancelled, or belongs to a
            different simulator.
        """
        if (
            getattr(handle, "sim", None) is not self
            or handle.fired
            or handle.cancelled
        ):
            return False
        handle.cancelled = True
        self._pending -= 1
        self._cancelled_in_heap += 1
        # Cancelled events otherwise sit in the heap until their time
        # comes (session timeouts are cancelled constantly), inflating
        # every push/pop by log(dead + live). Compact once the dead
        # majority passes the threshold; heapify keeps the pop order
        # bit-identical because sort keys are unique.
        if (
            self._cancelled_in_heap > _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact_heap()
        return True

    def _compact_heap(self) -> None:
        """Drop cancelled events from the heap and restore the invariant."""
        self._heap = [
            entry for entry in self._heap if entry[3] is None or not entry[3].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def pending_count(self) -> int:
        """Number of events scheduled and not yet fired or cancelled."""
        return self._pending

    # -- pub/sub ----------------------------------------------------------

    def subscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Register ``handler(**payload)`` for :meth:`publish` on ``topic``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str, handler: Callable[..., None]) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, **payload: Any) -> int:
        """Synchronously deliver ``payload`` to every subscriber of ``topic``.

        Returns:
            The number of handlers invoked.
        """
        handlers = self._subscribers.get(topic)
        if not handlers:
            return 0
        for handler in tuple(handlers):
            handler(**payload)
        return len(handlers)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.

        Returns:
            True if an event was executed, False if the heap is empty.
        """
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            handle = entry[3]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                # A late cancel() through the handle then reports False.
                handle.fired = True
            self._pending -= 1
            self.now = entry[0]
            self.events_executed += 1
            entry[4](*entry[5])
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> str:
        """Run events until a stopping condition is met.

        Args:
            until: Stop once the next event would fire after this time;
                ``now`` is advanced to ``until`` in that case.
            max_events: Stop after executing this many events (guards
                against runaway simulations in tests).

        Returns:
            One of the ``RUN_*`` constants describing why the run ended.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        self._stopping = False
        executed = 0
        heap = self._heap  # rebound only by _compact_heap, handled below
        try:
            # The loop body is step() inlined: one pass over heap[0]
            # decides live-ness, the stop conditions, and execution
            # without a second peek or a method call per event.
            while True:
                if self._stopping:
                    return RUN_STOPPED
                if max_events is not None and executed >= max_events:
                    return RUN_MAX_EVENTS
                heap = self._heap
                while heap:
                    entry = heap[0]
                    handle = entry[3]
                    if handle is not None and handle.cancelled:
                        _heappop(heap)
                        self._cancelled_in_heap -= 1
                        continue
                    break
                else:
                    if until is not None and until > self.now:
                        self.now = until
                    return RUN_EXHAUSTED
                if until is not None and entry[0] > until:
                    self.now = until
                    return RUN_UNTIL
                _heappop(heap)
                if handle is not None:
                    # A late cancel() through the handle then reports False.
                    handle.fired = True
                self._pending -= 1
                self.now = entry[0]
                self.events_executed += 1
                entry[4](*entry[5])
                executed += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopping = True

    def _peek_live(self) -> Optional[HeapEntry]:
        """Return the next non-cancelled heap entry without popping it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            handle = entry[3]
            if handle is not None and handle.cancelled:
                _heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            return entry
        return None
