"""Message-passing network on top of the event engine.

:class:`Network` delivers messages between nodes along the edges of a
:class:`repro.topology.graph.Topology` with configurable latency models,
optional jitter, probabilistic loss, link/node failures and partitions.
It is the NS-2 stand-in: the paper only needs per-link propagation
delays and lossy channels, not TCP dynamics (see DESIGN.md §2).

Nodes are integers. Each node attaches a ``handler(src, message)``
callback; :meth:`Network.send` schedules the delivery event after the
link's latency. All traffic is metered (messages and bytes, per message
kind) via :class:`TrafficCounters` so protocol-overhead experiments read
measured values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import SimulationError
from .engine import Simulator

Handler = Callable[[int, object], None]


# ---------------------------------------------------------------------------
# Latency models
# ---------------------------------------------------------------------------


class LatencyModel:
    """Strategy interface giving the one-way delay of an edge."""

    def delay(self, src: int, dst: int, distance: float) -> float:
        """One-way latency for a message from ``src`` to ``dst``.

        Args:
            distance: The topology's edge weight (Euclidean distance for
                BRITE-style graphs, 1.0 when unweighted).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Every edge has the same one-way delay."""

    value: float = 0.02

    def delay(self, src: int, dst: int, distance: float) -> float:
        return self.value


@dataclass(frozen=True)
class DistanceLatency(LatencyModel):
    """Delay proportional to edge weight: ``base + scale * distance``.

    With BRITE-generated topologies the edge weight is the Euclidean
    distance in the plane, so this mirrors BRITE's propagation-delay
    assignment.
    """

    scale: float = 0.001
    base: float = 0.005

    def delay(self, src: int, dst: int, distance: float) -> float:
        return self.base + self.scale * distance


class JitteredLatency(LatencyModel):
    """Wraps another model adding uniform jitter in ``[0, jitter]``."""

    def __init__(self, inner: LatencyModel, jitter: float, rng):
        self.inner = inner
        self.jitter = jitter
        self._rng = rng

    def delay(self, src: int, dst: int, distance: float) -> float:
        return self.inner.delay(src, dst, distance) + self._rng.uniform(0, self.jitter)


class BandwidthLatency(LatencyModel):
    """Propagation plus transmission delay: ``inner + size / bandwidth``.

    Large update batches take measurably longer than the tiny
    fast-update offers — the physical reason the paper's push can beat
    a full summary exchange on the wire. The network feeds the message
    size through :meth:`delay_with_size`; plain :meth:`delay` assumes an
    empty message.
    """

    def __init__(self, inner: LatencyModel, bytes_per_time_unit: float):
        if bytes_per_time_unit <= 0:
            raise SimulationError(
                f"bandwidth must be positive, got {bytes_per_time_unit}"
            )
        self.inner = inner
        self.bytes_per_time_unit = float(bytes_per_time_unit)

    def delay(self, src: int, dst: int, distance: float) -> float:
        return self.inner.delay(src, dst, distance)

    def delay_with_size(
        self, src: int, dst: int, distance: float, size_bytes: int
    ) -> float:
        return (
            self.inner.delay(src, dst, distance)
            + size_bytes / self.bytes_per_time_unit
        )


# ---------------------------------------------------------------------------
# Traffic accounting
# ---------------------------------------------------------------------------


@dataclass
class TrafficCounters:
    """Aggregate counters of everything a network carried."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    corrupt_frames_dropped: int = 0
    duplicates_suppressed: int = 0
    reorders_applied: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    def note_send(self, kind: str, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view for result persistence."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "corrupt_frames_dropped": self.corrupt_frames_dropped,
            "duplicates_suppressed": self.duplicates_suppressed,
            "reorders_applied": self.reorders_applied,
            "by_kind": dict(self.by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
        }


def resolve_delay(
    latency: LatencyModel, src: int, dst: int, distance: float, size: int
) -> float:
    """One-way delay of a message, honouring size-aware models.

    Shared by every transport (simulated and live) so the
    ``delay_with_size`` fallback semantics cannot silently diverge
    between execution worlds.
    """
    delay_with_size = getattr(latency, "delay_with_size", None)
    if delay_with_size is not None:
        return delay_with_size(src, dst, distance, size)
    return latency.delay(src, dst, distance)


def message_kind(message: object) -> str:
    """Best-effort short name describing a message's type."""
    kind = getattr(message, "kind", None)
    if isinstance(kind, str):
        return kind
    return type(message).__name__


def message_size(message: object) -> int:
    """Size in bytes, via the message's ``size_bytes()`` if provided."""
    size_fn = getattr(message, "size_bytes", None)
    if callable(size_fn):
        return int(size_fn())
    return 0


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------


class Network:
    """Topology-constrained, lossy, latency-modelled message transport.

    Args:
        sim: The owning simulator.
        topology: Object exposing ``nodes`` (iterable of int),
            ``neighbors(node)``, ``has_edge(a, b)`` and
            ``edge_weight(a, b)`` — satisfied by
            :class:`repro.topology.graph.Topology`.
        latency: Latency model for ordinary links.
        loss: Probability that any message is dropped in flight.
        seed_stream: Name of the RNG stream used for loss and jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        topology,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        seed_stream: str = "network",
    ):
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss probability {loss} outside [0, 1)")
        self.sim = sim
        self.topology = topology
        self.latency = latency if latency is not None else FixedLatency()
        self.loss = loss
        self._rng = sim.rng.stream(seed_stream)
        self._handlers: Dict[int, Handler] = {}
        self._down_nodes: Set[int] = set()
        self._down_links: Set[Tuple[int, int]] = set()
        self._overlay: Dict[int, Dict[int, float]] = {}
        self._partition: Optional[Dict[int, int]] = None
        # Windowed packet-level faults; None until one is first applied,
        # so fault-free runs pay a single attribute check per send.
        self._packet_faults = None
        self.counters = TrafficCounters()
        #: message type -> (kind, has_size) — caches the per-message
        #: kind string and size resolution of the send hot path (message
        #: classes are few, messages are millions). Attribute lookup on
        #: the instance still runs for sizes, so instance-level
        #: overrides keep their normal precedence.
        self._type_info: Dict[type, Tuple[str, bool]] = {}
        # The latency model is fixed for the network's lifetime, so the
        # delay_with_size/delay resolution of resolve_delay() is bound
        # once here instead of via getattr per send.
        self._delay_with_size = getattr(self.latency, "delay_with_size", None)
        self._delay_plain = self.latency.delay

    # -- attachment -----------------------------------------------------

    def attach(self, node: int, handler: Handler) -> None:
        """Register the delivery callback for ``node``."""
        if node not in self.topology.nodes:
            raise SimulationError(f"node {node} not in topology")
        self._handlers[node] = handler

    def detach(self, node: int) -> None:
        """Remove a node's handler; in-flight messages to it are dropped."""
        self._handlers.pop(node, None)

    def handler_for(self, node: int) -> Optional[Handler]:
        """The currently attached handler of ``node`` (None if detached).

        Fault injectors use this to park a churned-out node's handler so
        a later re-join can restore delivery exactly as it was.
        """
        return self._handlers.get(node)

    # -- fault injection --------------------------------------------------

    def set_node_down(self, node: int) -> None:
        """Crash a node: it neither sends nor receives until restored."""
        self._down_nodes.add(node)

    def set_node_up(self, node: int) -> None:
        """Restore a crashed node."""
        self._down_nodes.discard(node)

    def node_is_up(self, node: int) -> bool:
        return node not in self._down_nodes

    @staticmethod
    def _link_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def set_link_down(self, a: int, b: int) -> None:
        """Fail the link between ``a`` and ``b`` (both directions)."""
        self._down_links.add(self._link_key(a, b))

    def set_link_up(self, a: int, b: int) -> None:
        """Restore a failed link."""
        self._down_links.discard(self._link_key(a, b))

    def link_is_up(self, a: int, b: int) -> bool:
        return self._link_key(a, b) not in self._down_links

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network: messages may only cross within a group."""
        assignment: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                assignment[int(node)] = index
        self._partition = assignment

    def heal_partition(self) -> None:
        """Remove any active partition."""
        self._partition = None

    def apply_packet_fault(self, action: str, params, duration: float) -> None:
        """Open a windowed packet-level fault on every channel.

        The :class:`~repro.runtime.linkstate.PacketFaultState` is
        created lazily (and imported lazily, keeping this module free of
        runtime-package imports) so fault-free simulations never touch
        it — the send fast path stays golden-trace-identical.
        """
        if self._packet_faults is None:
            from ..runtime.linkstate import PacketFaultState

            self._packet_faults = PacketFaultState()
        self._packet_faults.apply(action, params, duration, self.sim.now)

    # -- overlay links (island bridges, §6) -------------------------------

    def add_overlay_link(self, a: int, b: int, delay: float) -> None:
        """Add a virtual bidirectional link with a fixed one-way delay.

        Overlay links model multi-hop tunnels (e.g. between island
        leaders); they are not part of the topology and are unaffected
        by physical-link failures, but do respect node crashes and
        partitions.
        """
        self._overlay.setdefault(a, {})[b] = delay
        self._overlay.setdefault(b, {})[a] = delay

    def remove_overlay_link(self, a: int, b: int) -> None:
        self._overlay.get(a, {}).pop(b, None)
        self._overlay.get(b, {}).pop(a, None)

    def overlay_neighbors(self, node: int) -> Tuple[int, ...]:
        """Virtual neighbours of ``node`` (overlay links only)."""
        return tuple(self._overlay.get(node, {}))

    # -- topology passthrough ---------------------------------------------

    def neighbors(self, node: int) -> List[int]:
        """Physical plus overlay neighbours of ``node``."""
        physical = list(self.topology.neighbors(node))
        extra = [n for n in self._overlay.get(node, {}) if n not in physical]
        return physical + extra

    def physical_neighbors(self, node: int) -> Tuple[int, ...]:
        """Topology neighbours only (the partner-selection candidate set)."""
        return self.topology.neighbors(node)

    # -- sending ----------------------------------------------------------

    def send(self, src: int, dst: int, message: object) -> bool:
        """Send ``message`` from ``src`` to ``dst`` over one hop.

        Returns:
            True if the message entered the channel (it may still be
            lost); False if it was refused outright (no such link, a
            crashed endpoint, a failed link, or a partition boundary).
        """
        if src == dst:
            raise SimulationError(f"node {src} sending to itself")
        message_type = message.__class__
        info = self._type_info.get(message_type)
        if info is None:
            info = (
                message_kind(message),
                callable(getattr(message_type, "size_bytes", None)),
            )
            self._type_info[message_type] = info
        kind, has_size = info
        size = int(message.size_bytes()) if has_size else message_size(message)
        overlay = self._overlay.get(src)
        overlay_delay = overlay.get(dst) if overlay else None
        if overlay_delay is None:
            try:
                distance = self.topology.edge_weight(src, dst)
            except Exception:
                raise SimulationError(
                    f"no link {src}->{dst} (and no overlay)"
                ) from None
        self.counters.note_send(kind, size)
        trace = self.sim.trace
        if trace.wants("net.send"):
            trace.record(
                self.sim.now, "net.send", src=src, dst=dst, kind=kind, size=size
            )
        if not self._can_carry(src, dst):
            self._drop(src, dst, kind, "link-down")
            return False
        if self.loss and self._rng.random() < self.loss:
            self._drop(src, dst, kind, "loss")
            return True
        if overlay_delay is not None:
            delay = overlay_delay
        elif self._delay_with_size is not None:
            delay = self._delay_with_size(src, dst, distance, size)
        else:
            delay = self._delay_plain(src, dst, distance)
        packet = self._packet_faults
        if packet is not None and packet.possible:
            # Fixed draw order (corrupt, latency, reorder, duplicate) so
            # replaying the same schedule stays deterministic; a closed
            # window draws nothing.
            now = self.sim.now
            corrupt_p = packet.corrupt_probability(now)
            if corrupt_p and self._rng.random() < corrupt_p:
                self.counters.corrupt_frames_dropped += 1
                self._drop(src, dst, kind, "corrupt-frame")
                return True
            factor = packet.latency_factor(now)
            if factor != 1.0:
                delay *= factor
            reorder = packet.reorder(now)
            if reorder is not None and self._rng.random() < reorder[0]:
                delay += self._rng.uniform(0.0, reorder[1])
                self.counters.reorders_applied += 1
            dup_p = packet.duplicate_probability(now)
            if dup_p and self._rng.random() < dup_p:
                self.sim.schedule_fast(
                    delay, self._suppress_duplicate, src, dst, message
                )
        # Trusted fast path: delivery events are kernel-originated,
        # never cancelled, and their delay is non-negative by
        # construction (latency models validate their parameters).
        self.sim.schedule_fast(delay, self._deliver, src, dst, message)
        return True

    def broadcast(self, src: int, message: object) -> int:
        """Send to every physical neighbour; returns sends accepted."""
        sent = 0
        for neighbor in self.topology.neighbors(src):
            if self.send(src, neighbor, message):
                sent += 1
        return sent

    def _can_carry(self, src: int, dst: int) -> bool:
        # Fault-free fast path: nothing is down and nothing is split,
        # so the channel always carries (the overwhelmingly common case).
        if not self._down_nodes and not self._down_links and self._partition is None:
            return True
        if src in self._down_nodes or dst in self._down_nodes:
            return False
        overlay = self._overlay.get(src)
        if overlay is None or overlay.get(dst) is None:
            if not self.link_is_up(src, dst):
                return False
        if self._partition is not None:
            if self._partition.get(src) != self._partition.get(dst):
                return False
        return True

    def _drop(self, src: int, dst: int, kind: str, reason: str) -> None:
        self.counters.messages_dropped += 1
        trace = self.sim.trace
        if trace.wants("net.drop"):
            trace.record(
                self.sim.now, "net.drop", src=src, dst=dst, kind=kind, reason=reason
            )

    def _suppress_duplicate(self, src: int, dst: int, message: object) -> None:
        # The channel duplicated the frame in flight; the receiving
        # transport's dedup layer drops the copy, so the protocol never
        # sees it — only the meter moves.
        self.counters.duplicates_suppressed += 1
        trace = self.sim.trace
        if trace.wants("net.drop"):
            trace.record(
                self.sim.now,
                "net.drop",
                src=src,
                dst=dst,
                kind=message_kind(message),
                reason="duplicate-suppressed",
            )

    def _deliver(self, src: int, dst: int, message: object) -> None:
        # Failures that occurred while the message was in flight still
        # prevent delivery (the channel is not clairvoyant).
        if dst in self._down_nodes or src in self._down_nodes:
            self._drop(src, dst, message_kind(message), "crashed-in-flight")
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self._drop(src, dst, message_kind(message), "no-handler")
            return
        self.counters.messages_delivered += 1
        handler(src, message)
