"""Deterministic random-number streams.

A simulation draws randomness from many logically independent sources:
session timers on every node, link jitter, workload arrivals, topology
generation... Sharing one ``random.Random`` couples them, so adding a
draw in one component perturbs every other component and breaks
run-to-run comparisons between protocol variants.

:class:`RngRegistry` derives an independent, reproducible
``random.Random`` per *named stream* from a single master seed. Stream
seeds are derived with SHA-256, so they are stable across processes and
Python versions (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Tuple


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named, independently seeded RNG streams.

    Example:
        >>> rngs = RngRegistry(42)
        >>> a = rngs.stream("sessions", 3)   # node 3's session timer
        >>> b = rngs.stream("sessions", 4)
        >>> a is rngs.stream("sessions", 3)  # streams are cached
        True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @staticmethod
    def _key(parts: Tuple[object, ...]) -> str:
        return "/".join(str(p) for p in parts)

    def stream(self, *name_parts: object) -> random.Random:
        """Return the (cached) RNG for the stream named by ``name_parts``."""
        if not name_parts:
            raise ValueError("stream name must not be empty")
        key = self._key(name_parts)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, key))
            self._streams[key] = rng
        return rng

    def spawn(self, *name_parts: object) -> "RngRegistry":
        """Return a child registry whose master seed derives from this one.

        Useful for experiment repetitions: repetition *i* gets
        ``registry.spawn('rep', i)`` so reps are independent but the
        whole experiment is reproducible.
        """
        key = self._key(name_parts) if name_parts else "spawn"
        return RngRegistry(derive_seed(self.master_seed, key))

    def stream_names(self) -> Iterable[str]:
        """Names of all streams created so far (for diagnostics)."""
        return tuple(self._streams)
