"""Event primitives for the discrete-event engine.

Users never build these directly;
:meth:`repro.sim.engine.Simulator.schedule` returns an
:class:`EventHandle` that can be used to cancel the event before it
fires.

Events at the same timestamp are ordered by ``priority`` (lower fires
first) and then by insertion order, which makes simulations fully
deterministic for a fixed seed.

The engine's heap stores plain ``(time, priority, seq, handle,
callback, args)`` tuples rather than objects: tuple comparison runs
entirely in C and, because ``seq`` is unique, never reaches the
non-comparable tail elements.  ``EventHandle`` therefore carries only
scalars plus two state flags — it holds no reference to the callback or
its arguments, so a retained handle can never keep a fired event's
payload alive.

:class:`Event` remains as the object view of one scheduled entry (the
pre-tuple heap element).  It is still part of the public
:mod:`repro.sim` API for code that builds or inspects events standalone,
but the engine no longer allocates it on the scheduling hot path.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Tuple

#: Priority used when the caller does not specify one.
DEFAULT_PRIORITY = 0

#: Priority for engine-internal bookkeeping that must run after user events.
LATE_PRIORITY = 1_000_000

#: Process-wide insertion counter shared by every simulator, so relative
#: event order is well defined even when simulations are interleaved in
#: one process.  The engine advances it directly with ``next()``.
_sequence = itertools.count()


def next_sequence() -> int:
    """Return a process-wide monotonically increasing tie-break counter."""
    return next(_sequence)


class EventHandle:
    """Opaque handle identifying a scheduled event.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Same-time ordering key; lower fires first.
        seq: Insertion-order tie break.
        sim: The owning simulator (cancellation rejects foreign handles).
        cancelled: Set by :meth:`Simulator.cancel`.
        fired: Set by the engine when the event executes; a fired handle
            can no longer cancel anything.
    """

    __slots__ = ("time", "priority", "seq", "sim", "cancelled", "fired")

    def __init__(self, time: float, priority: int, seq: int):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.sim = None
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventHandle):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (
            other.time,
            other.priority,
            other.seq,
        )

    def __hash__(self) -> int:
        return hash((self.time, self.priority, self.seq))

    def __repr__(self) -> str:
        return (
            f"EventHandle(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r})"
        )


class Event:
    """Object view of one scheduled callback.

    Attributes:
        handle: Sort key / cancellation token for this event.
        callback: Zero-argument-compatible callable invoked at
            ``handle.time`` with ``args``.
        args: Positional arguments passed to ``callback``.
        cancelled: Cancelled events are skipped when popped.
        sort_key: The ``(time, priority, seq)`` ordering key.
    """

    __slots__ = ("handle", "callback", "args", "cancelled", "label", "sort_key", "sim")

    def __init__(
        self,
        handle: EventHandle,
        callback: Callable[..., Any],
        args: tuple,
        cancelled: bool = False,
        label: str = "",
    ):
        self.handle = handle
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.label = label
        self.sort_key: Tuple[float, int, int] = (handle.time, handle.priority, handle.seq)
        self.sim = None

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:
        return (
            f"Event(handle={self.handle!r}, label={self.label!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def fire(self) -> None:
        """Invoke the callback (the engine checks ``cancelled`` first)."""
        self.callback(*self.args)
