"""Event primitives for the discrete-event engine.

An :class:`Event` couples an activation time with a callback. Users never
build events directly; :meth:`repro.sim.engine.Simulator.schedule`
returns an :class:`EventHandle` that can be used to cancel the event
before it fires.

Events at the same timestamp are ordered by ``priority`` (lower fires
first) and then by insertion order, which makes simulations fully
deterministic for a fixed seed.

Both classes use ``__slots__``: a simulation allocates one event per
message hop and per session timer, so the per-instance dict of a plain
class is measurable overhead in large parallel sweeps.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Tuple

#: Priority used when the caller does not specify one.
DEFAULT_PRIORITY = 0

#: Priority for engine-internal bookkeeping that must run after user events.
LATE_PRIORITY = 1_000_000

_sequence = itertools.count()


def next_sequence() -> int:
    """Return a process-wide monotonically increasing tie-break counter."""
    return next(_sequence)


class EventHandle:
    """Opaque handle identifying a scheduled event.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Same-time ordering key; lower fires first.
        seq: Insertion-order tie break.
    """

    __slots__ = ("time", "priority", "seq", "_event")

    def __init__(self, time: float, priority: int, seq: int):
        self.time = time
        self.priority = priority
        self.seq = seq
        # Back-reference to the scheduled Event, set by the engine; lets
        # Simulator.cancel work without a handle -> event dict.
        self._event = None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventHandle):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (
            other.time,
            other.priority,
            other.seq,
        )

    def __hash__(self) -> int:
        return hash((self.time, self.priority, self.seq))

    def __repr__(self) -> str:
        return (
            f"EventHandle(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r})"
        )


class Event:
    """A scheduled callback inside the engine's heap.

    Attributes:
        handle: Sort key / cancellation token for this event.
        callback: Zero-argument-compatible callable invoked at
            ``handle.time`` with ``args``.
        args: Positional arguments passed to ``callback``.
        cancelled: Set by :meth:`Simulator.cancel`; cancelled events are
            skipped (lazily removed) when popped from the heap. When an
            event fires (or is cancelled) the engine clears the handle's
            back-reference instead, so a handle can never cancel an
            already-executed event.
        sort_key: Precomputed ``(time, priority, seq)`` heap key.
    """

    __slots__ = ("handle", "callback", "args", "cancelled", "label", "sort_key", "sim")

    def __init__(
        self,
        handle: EventHandle,
        callback: Callable[..., Any],
        args: tuple,
        cancelled: bool = False,
        label: str = "",
    ):
        self.handle = handle
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self.label = label
        self.sort_key: Tuple[float, int, int] = (handle.time, handle.priority, handle.seq)
        # Owning simulator, set by Simulator.schedule_at; cancel() uses it
        # to reject handles that belong to a different simulator.
        self.sim = None

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:
        return (
            f"Event(handle={self.handle!r}, label={self.label!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def fire(self) -> None:
        """Invoke the callback (the engine checks ``cancelled`` first)."""
        self.callback(*self.args)
