"""Event primitives for the discrete-event engine.

An :class:`Event` couples an activation time with a callback. Users never
build events directly; :meth:`repro.sim.engine.Simulator.schedule`
returns an :class:`EventHandle` that can be used to cancel the event
before it fires.

Events at the same timestamp are ordered by ``priority`` (lower fires
first) and then by insertion order, which makes simulations fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Priority used when the caller does not specify one.
DEFAULT_PRIORITY = 0

#: Priority for engine-internal bookkeeping that must run after user events.
LATE_PRIORITY = 1_000_000

_sequence = itertools.count()


def next_sequence() -> int:
    """Return a process-wide monotonically increasing tie-break counter."""
    return next(_sequence)


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle identifying a scheduled event.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Same-time ordering key; lower fires first.
        seq: Insertion-order tie break.
    """

    time: float
    priority: int
    seq: int

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


@dataclass
class Event:
    """A scheduled callback inside the engine's heap.

    Attributes:
        handle: Sort key / cancellation token for this event.
        callback: Zero-argument-compatible callable invoked at
            ``handle.time`` with ``args``.
        args: Positional arguments passed to ``callback``.
        cancelled: Set by :meth:`Simulator.cancel`; cancelled events are
            skipped (lazily removed) when popped from the heap.
    """

    handle: EventHandle
    callback: Callable[..., Any]
    args: tuple
    cancelled: bool = False
    label: str = ""

    sort_key: tuple = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.sort_key = (self.handle.time, self.handle.priority, self.handle.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def fire(self) -> None:
        """Invoke the callback (the engine checks ``cancelled`` first)."""
        self.callback(*self.args)
