"""Sharded simulation kernel: space-parallel conservative PDES.

A single event-heap kernel tops out near 10³-node topologies; this
module partitions the :class:`~repro.topology.graph.Topology` across
``k`` shard kernels and runs them in lock-stepped windows, the classic
conservative parallel-discrete-event-simulation recipe:

* **Partition** — nodes are split into contiguous BFS chunks
  (:func:`partition_topology`), keeping neighbourhoods together so most
  traffic stays shard-local.
* **Lookahead** — a message crossing shards takes at least ``L``, the
  minimum latency over cross-shard links (:func:`compute_lookahead`).
  Every shard can therefore safely execute all events in the half-open
  window ``[W, W+L)`` without hearing from the others: anything a peer
  sends during the window arrives at ``W+L`` or later.
* **Barrier exchange** — at each window boundary the coordinator
  collects every shard's outbox of cross-shard messages and injects
  them into the destination shards, sorted deterministically.

Determinism carries over because every stochastic protocol component
draws from per-node named RNG streams (:mod:`repro.sim.rng`) — a node's
stream is identical no matter which kernel hosts it. The two *shared*
stochastic mechanisms are therefore rejected up front: message loss and
jittered latency both consume a network-wide stream whose draw order
depends on global event interleaving.

Result identity with the single-process kernel is at the *metrics*
level — apply times, aggregated traffic counters and summed event
counts — asserted empirically by the test suite on deterministic
seeds. (Same-timestamp events on different shards may execute in a
different relative order than a single kernel's sequence numbers would
impose; on this protocol those collisions are metric-neutral.)

Shards run either in-process (``workers=None``, useful for testing and
small topologies) or on persistent worker processes via
:class:`repro.experiments.backends.ShardHostPool` (``workers="process"``),
where workers exchange cross-shard messages over a direct queue mesh
and the coordinator round carries only control data. The wall-clock
win at 10⁴ nodes needs >= ``shards`` physical cores; on fewer cores the
workers time-slice and the barrier overhead is pure loss. Each shard
tracks :attr:`ShardEngine.busy_seconds` — the max over shards is the
parallel critical path, what a sufficiently parallel machine would pay
per run — so benchmarks can report the headroom honestly either way.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import heapq
from time import process_time

from ..errors import SimulationError
from .engine import Simulator
from .network import FixedLatency, LatencyModel, Network

_heappop = heapq.heappop

#: One cross-shard message in flight: ``(arrival_time, src, dst, message)``.
Crossing = Tuple[float, int, int, object]

#: An update id as carried in watch bookkeeping.
Uid = Tuple[int, int]


# ---------------------------------------------------------------------------
# Partitioning and lookahead
# ---------------------------------------------------------------------------


def partition_topology(topology, shards: int) -> List[List[int]]:
    """Split nodes into ``shards`` contiguous BFS chunks, deterministically.

    BFS order from the smallest node id keeps neighbourhoods together,
    which minimises cross-shard edges (and with them barrier traffic);
    chunk sizes differ by at most one node.
    """
    if shards < 1:
        raise SimulationError(f"shard count must be >= 1, got {shards}")
    nodes = list(topology.nodes)
    if shards > len(nodes):
        raise SimulationError(
            f"cannot split {len(nodes)} nodes across {shards} shards"
        )
    order: List[int] = []
    seen: Set[int] = set()
    for root in sorted(nodes):
        if root in seen:
            continue
        seen.add(root)
        queue = deque((root,))
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbor in sorted(topology.neighbors(node)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
    base, rem = divmod(len(order), shards)
    chunks: List[List[int]] = []
    at = 0
    for index in range(shards):
        size = base + (1 if index < rem else 0)
        chunks.append(order[at : at + size])
        at += size
    return chunks


def compute_lookahead(
    topology, owner: Dict[int, int], latency: LatencyModel
) -> Optional[float]:
    """Minimum one-way delay over cross-shard links, or None if none exist.

    ``None`` means the shards never talk (single shard, or a partition
    that happens to cut no edges) and windows may span the whole run.
    """
    lookahead = math.inf
    for a, b, weight in topology.edges():
        if owner[a] != owner[b]:
            delay = min(
                latency.delay(a, b, weight), latency.delay(b, a, weight)
            )
            if delay < lookahead:
                lookahead = delay
    if lookahead is math.inf:
        return None
    if lookahead <= 0.0:
        raise SimulationError(
            "sharded simulation needs positive cross-shard latency for "
            f"lookahead, got {lookahead}"
        )
    return lookahead


# ---------------------------------------------------------------------------
# Shard-local network
# ---------------------------------------------------------------------------


class ShardNetwork(Network):
    """One shard's view of the global network.

    Sends whose destination is shard-local ride the ordinary in-kernel
    delivery path; sends to a remote node are accounted identically
    (counters, traces, fault checks) but buffered in :attr:`outbox` for
    the coordinator to hand to the destination shard at the next window
    barrier. The destination shard delivers through its own
    :meth:`Network._deliver`, so per-shard traffic counters sum to
    exactly the single-kernel totals.
    """

    def __init__(
        self,
        sim: Simulator,
        topology,
        local_nodes: Sequence[int],
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
    ):
        super().__init__(sim, topology, latency=latency, loss=loss)
        self.local_nodes = frozenset(local_nodes)
        self.outbox: List[Crossing] = []

    def attach(self, node: int, handler) -> None:
        if node not in self.local_nodes:
            raise SimulationError(f"node {node} is not hosted on this shard")
        super().attach(node, handler)

    def send(self, src: int, dst: int, message: object) -> bool:
        if dst in self.local_nodes:
            return super().send(src, dst, message)
        # Mirror of Network.send up to delivery scheduling (keep the two
        # in sync): the remote leg must meter and validate exactly like
        # a local one so sharded counters stay bit-identical.
        if src == dst:
            raise SimulationError(f"node {src} sending to itself")
        message_type = message.__class__
        info = self._type_info.get(message_type)
        if info is None:
            from .network import message_kind

            info = (
                message_kind(message),
                callable(getattr(message_type, "size_bytes", None)),
            )
            self._type_info[message_type] = info
        kind, has_size = info
        from .network import message_size

        size = int(message.size_bytes()) if has_size else message_size(message)
        overlay = self._overlay.get(src)
        overlay_delay = overlay.get(dst) if overlay else None
        if overlay_delay is None:
            try:
                distance = self.topology.edge_weight(src, dst)
            except Exception:
                raise SimulationError(
                    f"no link {src}->{dst} (and no overlay)"
                ) from None
        self.counters.note_send(kind, size)
        trace = self.sim.trace
        if trace.wants("net.send"):
            trace.record(
                self.sim.now, "net.send", src=src, dst=dst, kind=kind, size=size
            )
        if not self._can_carry(src, dst):
            self._drop(src, dst, kind, "link-down")
            return False
        if self.loss and self._rng.random() < self.loss:
            self._drop(src, dst, kind, "loss")
            return True
        if overlay_delay is not None:
            delay = overlay_delay
        elif self._delay_with_size is not None:
            delay = self._delay_with_size(src, dst, distance, size)
        else:
            delay = self._delay_plain(src, dst, distance)
        self.outbox.append((self.sim.now + delay, src, dst, message))
        return True


# ---------------------------------------------------------------------------
# Shard engine (one shard's world; also the process-worker payload)
# ---------------------------------------------------------------------------


class ShardEngine:
    """One shard's complete world: kernel, network and local node stacks.

    Every constructor argument is picklable, so an engine can be built
    either in-process or inside a
    :class:`~repro.experiments.backends.ShardHostPool` worker from the
    same spec dict.
    """

    def __init__(
        self,
        topology,
        demand,
        config,
        seed: int,
        local_nodes: Sequence[int],
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        index: int = 0,
    ):
        # Lazy imports: repro.core.system imports repro.sim.engine, so a
        # module-level import here would cycle through package init.
        from ..core.config import KNOWLEDGE_ADVERTISED
        from ..core.system import build_node_stack
        from ..demand.views import DemandTable
        from ..runtime.simulation import SimRuntime

        config.validate()
        self.index = index
        self.local_nodes = [int(n) for n in local_nodes]
        self.sim = Simulator(seed=seed)
        # Tracing in sharded mode would yield k partial traces with
        # kernel-local orderings; metrics are the supported output.
        self.sim.trace.disable()
        self.network = ShardNetwork(
            self.sim,
            topology,
            self.local_nodes,
            latency=latency,
            loss=loss,
        )
        self.runtime = SimRuntime(self.sim, self.network)
        self.servers: Dict[int, object] = {}
        self.nodes: Dict[int, object] = {}
        self._apply_times: Dict[Uid, Dict[int, float]] = {}
        self._watched: Set[Uid] = set()
        self._watch_hits: List[Tuple[Uid, int, float]] = []
        #: CPU seconds spent executing events (the shard's share of the
        #: parallel critical path; max over shards bounds the ideal
        #: multi-core runtime, independent of how many cores this run
        #: actually got).
        self.busy_seconds = 0.0
        tables = None
        if config.demand_knowledge == KNOWLEDGE_ADVERTISED:
            # Warm start for the local nodes only; each table depends
            # solely on the true neighbour demand at t=0, exactly as
            # bootstrap_tables computes it in the single kernel.
            tables = {}
            for node in self.local_nodes:
                table = DemandTable()
                for neighbor in topology.neighbors(node):
                    table.update(neighbor, demand.demand(neighbor, 0.0), 0.0)
                tables[node] = table
        for node in self.local_nodes:
            stack = build_node_stack(
                self.runtime,
                topology,
                demand,
                config,
                node,
                tables=tables,
                on_new_updates=lambda updates, source, sender, _node=node: (
                    self._record_applied(_node, updates)
                ),
            )
            self.servers[node] = stack.server
            self.nodes[node] = stack

    # -- convergence bookkeeping ---------------------------------------

    def _record_applied(self, node: int, updates) -> None:
        now = self.sim.now
        watched = self._watched
        for update in updates:
            times = self._apply_times.setdefault(update.uid, {})
            if node not in times:
                times[node] = now
                if update.uid in watched:
                    self._watch_hits.append((update.uid, node, now))

    def watch(self, uid: Uid) -> List[Tuple[int, float]]:
        """Start reporting applications of ``uid``; returns prior ones."""
        uid = (int(uid[0]), int(uid[1]))
        self._watched.add(uid)
        return sorted(self._apply_times.get(uid, {}).items())

    def unwatch(self, uid: Uid) -> None:
        self._watched.discard((int(uid[0]), int(uid[1])))

    # -- driving --------------------------------------------------------

    def start(self) -> None:
        for stack in self.nodes.values():
            stack.start()

    def local_write(self, node: int, key: str = "content", value: object = "v1"):
        """Client write at a hosted node; returns the Update."""
        if node not in self.servers:
            raise SimulationError(f"node {node} is not hosted on this shard")
        return self.servers[node].local_write(key, value)

    def step_window(
        self, inbox: Sequence[Crossing], end: float, inclusive: bool = False
    ) -> Tuple[List[Crossing], Optional[float], List[Tuple[Uid, int, float]]]:
        """Inject ``inbox``, run events strictly below ``end``, report.

        With ``inclusive`` events at exactly ``end`` run too (the final
        pass at a horizon, mirroring the single kernel's inclusive
        ``run(until=...)``). Returns ``(outbox, next_event_time,
        watch_hits)``.
        """
        sim = self.sim
        deliver = self.network._deliver
        for arrival, src, dst, message in inbox:
            sim.schedule_at(arrival, deliver, src, dst, message)
        bound = math.nextafter(end, math.inf) if inclusive else end
        # Simulator.run's inlined hot loop, with the horizon check
        # swapped for the window bound — the per-event cost must match
        # the single kernel's or the shards lose their head start.
        pop = _heappop
        started = process_time()
        while True:
            heap = sim._heap  # rebound only by compaction
            while heap:
                entry = heap[0]
                handle = entry[3]
                if handle is not None and handle.cancelled:
                    pop(heap)
                    sim._cancelled_in_heap -= 1
                    continue
                break
            else:
                break  # exhausted
            if entry[0] >= bound:
                break
            pop(heap)
            if handle is not None:
                handle.fired = True
            sim._pending -= 1
            sim.now = entry[0]
            sim.events_executed += 1
            entry[4](*entry[5])
        self.busy_seconds += process_time() - started
        if sim.now < end:
            sim.now = end
        outbox = self.network.outbox
        self.network.outbox = []
        entry = sim._peek_live()
        hits = self._watch_hits
        self._watch_hits = []
        return outbox, (None if entry is None else entry[0]), hits

    def next_time(self) -> Optional[float]:
        entry = self.sim._peek_live()
        return None if entry is None else entry[0]

    # -- results --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything the coordinator aggregates at collection time."""
        return {
            "apply_times": {
                uid: dict(times) for uid, times in self._apply_times.items()
            },
            "traffic": self.network.counters.snapshot(),
            "events_executed": self.sim.events_executed,
            "busy_seconds": self.busy_seconds,
            "now": self.sim.now,
        }


class ShardHost:
    """Worker-side wrapper: one engine plus the peer message mesh.

    Inside a :class:`~repro.experiments.backends.ShardHostPool` worker,
    cross-shard messages do not detour through the coordinator: each
    host puts its outbound batches straight onto the destination
    shards' inbound queues and drains exactly one batch per peer per
    window. Queue feeder threads make the puts non-blocking (no
    deadlock, and sender-side pickling overlaps the peers' compute);
    the coordinator only carries tiny control messages.

    Unknown method calls fall through to the engine, so the pool can
    drive ``start``/``watch``/``local_write``/``snapshot`` unchanged.
    """

    def __init__(self, engine: ShardEngine, owner: Dict[int, int], inbound, peers):
        self.engine = engine
        self.owner = owner
        self.inbound = inbound
        self.peers = peers  # shard index -> that shard's inbound queue
        self._pending: List[Crossing] = []
        self._window_id = 0

    def window(
        self, end: float, inclusive: bool = False
    ) -> Tuple[Optional[float], List[Tuple[Uid, int, float]]]:
        """Run one window; exchange crossings with peers directly.

        Returns ``(next_event_time, watch_hits)`` where the next time
        accounts for pending cross-shard arrivals.
        """
        self._window_id += 1
        error = None
        try:
            outbox, _, hits = self.engine.step_window(
                self._pending, end, inclusive
            )
        except BaseException as exc:  # still owe peers their batches
            outbox, hits = [], []
            error = exc
        self._pending = []
        batches: Dict[int, List[Crossing]] = {peer: [] for peer in self.peers}
        owner = self.owner
        for crossing in outbox:
            batches[owner[crossing[2]]].append(crossing)
        for peer, queue in self.peers.items():
            queue.put((self._window_id, batches[peer]))
        incoming: List[Crossing] = []
        for _ in range(len(self.peers)):
            window_id, batch = self.inbound.get(timeout=120)
            if window_id != self._window_id:
                raise SimulationError(
                    f"shard mesh desync: got window {window_id}, "
                    f"expected {self._window_id}"
                )
            incoming.extend(batch)
        if error is not None:
            raise error
        # Same sort as the serial coordinator: (arrival, src, dst) with
        # stable ties — equal keys can only come from one sender (the
        # src node pins the shard), whose batch order is preserved.
        incoming.sort(key=lambda crossing: crossing[:3])
        self._pending = incoming
        return self.next_time(), hits

    def next_time(self) -> Optional[float]:
        engine_next = self.engine.next_time()
        if self._pending:
            pending_next = self._pending[0][0]
            if engine_next is None or pending_next < engine_next:
                return pending_next
        return engine_next

    def __getattr__(self, name: str):
        return getattr(self.engine, name)


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


def _merge_traffic(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Sum per-shard traffic counter snapshots."""
    total: Dict[str, object] = {
        "messages_sent": 0,
        "messages_delivered": 0,
        "messages_dropped": 0,
        "bytes_sent": 0,
        "corrupt_frames_dropped": 0,
        "duplicates_suppressed": 0,
        "reorders_applied": 0,
        "by_kind": {},
        "bytes_by_kind": {},
    }
    for snap in snapshots:
        for key in (
            "messages_sent",
            "messages_delivered",
            "messages_dropped",
            "bytes_sent",
            "corrupt_frames_dropped",
            "duplicates_suppressed",
            "reorders_applied",
        ):
            total[key] += snap[key]
        for key in ("by_kind", "bytes_by_kind"):
            merged = total[key]
            for kind, count in snap[key].items():
                merged[kind] = merged.get(kind, 0) + count
    return total


class ShardedSimulator:
    """Run one replicated system partitioned across ``k`` shard kernels.

    The constructor arguments mirror
    :class:`~repro.core.system.ReplicationSystem`; the driving API
    (:meth:`inject_write`, :meth:`run_until`,
    :meth:`run_until_replicated`, :meth:`apply_times`, :meth:`traffic`)
    is a drop-in subset, so experiment code can swap kernels by
    swapping the class.

    Args:
        topology: The replica interconnection graph (must be connected).
        demand: Demand model.
        config: Protocol variant switches.
        seed: Master seed; per-node RNG streams derive from it by name,
            so every shard kernel reproduces the single-kernel streams.
        shards: Number of partitions.
        latency: Optional deterministic latency model (default: fixed
            ``config.link_delay``). Jittered models are rejected — their
            shared RNG stream is draw-order dependent.
        workers: ``None``/"serial" hosts every shard in-process;
            ``"process"`` gives each shard a persistent worker process
            (:class:`~repro.experiments.backends.ShardHostPool`).
    """

    def __init__(
        self,
        topology,
        demand,
        config,
        seed: int = 0,
        shards: int = 2,
        latency: Optional[LatencyModel] = None,
        loss: float = 0.0,
        workers: Optional[str] = None,
    ):
        config.validate()
        if loss:
            raise SimulationError(
                "sharded simulation requires loss=0: the loss draw consumes "
                "a network-wide RNG stream whose order depends on global "
                "event interleaving"
            )
        if latency is None:
            latency = FixedLatency(config.link_delay)
        if hasattr(latency, "_rng"):
            raise SimulationError(
                "sharded simulation requires a deterministic latency model "
                "(jitter consumes a shared RNG stream)"
            )
        if not topology.is_connected():
            raise SimulationError(
                "topology must be connected (weak consistency can only "
                "converge within a component)"
            )
        self.topology = topology
        self.shards = int(shards)
        self.partition = partition_topology(topology, self.shards)
        self._owner: Dict[int, int] = {
            node: index
            for index, part in enumerate(self.partition)
            for node in part
        }
        self.lookahead = compute_lookahead(topology, self._owner, latency)
        self._clock = 0.0
        self._inboxes: List[List[Crossing]] = [[] for _ in range(self.shards)]
        # Per-shard next-event time, refreshed by every window's results
        # so steady-state driving needs no extra control round; None
        # means stale (after start/inject) and forces one query.
        self._next_times: Optional[List[float]] = None
        self._watch_uid: Optional[Uid] = None
        self._watch_times: Dict[int, float] = {}
        specs = [
            dict(
                topology=topology,
                demand=demand,
                config=config,
                seed=seed,
                local_nodes=part,
                latency=latency,
                loss=loss,
                index=index,
            )
            for index, part in enumerate(self.partition)
        ]
        self._pool = None
        self._engines: Optional[List[ShardEngine]] = None
        if workers in (None, 0, 1, "serial"):
            self._engines = [ShardEngine(**spec) for spec in specs]
        elif workers == "process":
            from ..experiments.backends import ShardHostPool

            self._pool = ShardHostPool(specs, owner=self._owner)
        else:
            raise SimulationError(
                f"unknown workers mode {workers!r}; expected None, 'serial' "
                "or 'process'"
            )
        self._started = False

    # -- shard dispatch -------------------------------------------------

    def _call_all(self, method: str, args_per_shard=None, **kwargs) -> List[object]:
        if self._pool is not None:
            return self._pool.call_all(method, args_per_shard, **kwargs)
        out = []
        for index, engine in enumerate(self._engines):
            args = args_per_shard[index] if args_per_shard is not None else ()
            out.append(getattr(engine, method)(*args, **kwargs))
        return out

    def _call_one(self, shard: int, method: str, *args, **kwargs) -> object:
        if self._pool is not None:
            return self._pool.call_one(shard, method, *args, **kwargs)
        return getattr(self._engines[shard], method)(*args, **kwargs)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start every node's periodic activity on every shard."""
        self._started = True
        self._next_times = None
        self._call_all("start")

    def close(self) -> None:
        """Shut down worker processes (no-op for in-process shards)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardedSimulator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- driving --------------------------------------------------------

    def shard_of(self, node: int) -> int:
        """Which shard hosts ``node``."""
        try:
            return self._owner[node]
        except KeyError:
            raise SimulationError(f"unknown node {node}") from None

    def inject_write(self, node: int, key: str = "content", value: object = "v1"):
        """Perform a client write at ``node`` right now."""
        self._next_times = None
        return self._call_one(self.shard_of(node), "local_write", node, key, value)

    def run_until(self, time: float) -> None:
        """Advance every shard to ``time`` (events at ``time`` included,
        matching the single kernel's inclusive ``run(until=...)``)."""
        self._advance(float(time))

    def run_until_replicated(
        self, uid: Uid, max_time: float = 100.0
    ) -> Optional[float]:
        """Run until ``uid`` reached every node; return that time.

        Returns None if ``max_time`` expires first. The early stop lands
        on a window boundary, so a few extra events beyond convergence
        may execute (converged-at itself is exact); fixed-horizon
        :meth:`run_until` runs are event-identical to the single kernel.
        """
        uid = (int(uid[0]), int(uid[1]))
        self._watch_uid = uid
        self._watch_times = {}
        for pairs in self._call_all("watch", [(uid,)] * self.shards):
            for node, time in pairs:
                self._watch_times[node] = time
        total = self.topology.num_nodes
        try:
            if len(self._watch_times) < total:
                self._advance(
                    float(max_time),
                    stop_check=lambda: len(self._watch_times) >= total,
                )
        finally:
            self._call_all("unwatch", [(uid,)] * self.shards)
            self._watch_uid = None
        if len(self._watch_times) >= total:
            return max(self._watch_times.values())
        return None

    def _advance(
        self, horizon: float, stop_check: Optional[Callable[[], bool]] = None
    ) -> None:
        lookahead = self.lookahead
        while True:
            upcoming = self._next_event_time()
            if math.isinf(upcoming) or upcoming > horizon:
                break
            start = upcoming if upcoming > self._clock else self._clock
            if lookahead is None:
                end = horizon
            else:
                end = start + lookahead
                if end > horizon:
                    end = horizon
            if end <= start:
                break  # only events at exactly `horizon` remain
            self._window(end, inclusive=False)
            if stop_check is not None and stop_check():
                return
        # Final inclusive pass picks up events at exactly `horizon`;
        # their sends arrive >= horizon + lookahead, beyond this run.
        self._window(horizon, inclusive=True)
        self._clock = horizon

    def _next_event_time(self) -> float:
        """Earliest pending event across shards (inboxes included)."""
        cached = self._next_times
        if cached is None:
            cached = [
                math.inf if time is None else time
                for time in self._call_all("next_time")
            ]
            if self._pool is None:
                # In-process engines do not see their coordinator-held
                # inboxes; worker hosts fold pending arrivals in
                # themselves.
                for index, inbox in enumerate(self._inboxes):
                    if inbox and inbox[0][0] < cached[index]:
                        cached[index] = inbox[0][0]
            self._next_times = cached
        return min(cached)

    def _note_hits(self, hits: Sequence[Tuple[Uid, int, float]]) -> None:
        watch_uid = self._watch_uid
        if watch_uid is None or not hits:
            return
        times = self._watch_times
        for uid, node, time in hits:
            if uid == watch_uid and node not in times:
                times[node] = time

    def _window(self, end: float, inclusive: bool) -> None:
        if self._pool is not None:
            # Worker hosts exchange crossings over their own mesh; the
            # control round only carries (next_time, watch_hits) back.
            results = self._pool.call_all(
                "window", [(end, inclusive)] * self.shards
            )
            self._next_times = [
                math.inf if next_time is None else next_time
                for next_time, _hits in results
            ]
            for _next_time, hits in results:
                self._note_hits(hits)
        else:
            results = self._call_all(
                "step_window",
                [(inbox, end, inclusive) for inbox in self._inboxes],
            )
            inboxes: List[List[Crossing]] = [[] for _ in range(self.shards)]
            for outbox, _next_time, hits in results:
                for crossing in outbox:
                    inboxes[self._owner[crossing[2]]].append(crossing)
                self._note_hits(hits)
            # Deterministic injection order: sort by (arrival, src, dst);
            # list.sort is stable, so same-key messages keep shard order.
            for inbox in inboxes:
                inbox.sort(key=lambda crossing: crossing[:3])
            self._inboxes = inboxes
            self._next_times = [
                min(
                    math.inf if next_time is None else next_time,
                    inboxes[index][0][0] if inboxes[index] else math.inf,
                )
                for index, (_outbox, next_time, _hits) in enumerate(results)
            ]
        self._clock = end

    # -- results --------------------------------------------------------

    def snapshots(self) -> List[Dict[str, object]]:
        """Raw per-shard snapshots (apply times, traffic, event counts)."""
        return self._call_all("snapshot")

    def apply_times(self, uid: Uid) -> Dict[int, float]:
        """First-application time per node for ``uid``, across shards."""
        uid = (int(uid[0]), int(uid[1]))
        merged: Dict[int, float] = {}
        for snap in self.snapshots():
            merged.update(snap["apply_times"].get(uid, {}))
        return merged

    def all_apply_times(self) -> Dict[Uid, Dict[int, float]]:
        """Apply times for every update, across shards."""
        merged: Dict[Uid, Dict[int, float]] = {}
        for snap in self.snapshots():
            for uid, times in snap["apply_times"].items():
                merged.setdefault(uid, {}).update(times)
        return merged

    def traffic(self) -> Dict[str, object]:
        """Aggregated traffic counters, summed over shards."""
        return _merge_traffic([snap["traffic"] for snap in self.snapshots()])

    @property
    def events_executed(self) -> int:
        """Total events executed across all shard kernels."""
        return sum(snap["events_executed"] for snap in self.snapshots())

    @property
    def now(self) -> float:
        """The coordinator clock (last completed window boundary)."""
        return self._clock
