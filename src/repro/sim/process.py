"""Generator-based processes on top of the event engine.

Some agents are most naturally written as sequential loops ("sleep for
the advertisement period, broadcast, repeat") rather than callback
chains. :class:`Process` runs a generator inside the simulator: the
generator yields either a number (sleep for that many time units) or a
:class:`Signal` (park until the signal is triggered).

Example:
    >>> from repro.sim.engine import Simulator
    >>> sim = Simulator()
    >>> ticks = []
    >>> def clock():
    ...     while True:
    ...         yield 1.0
    ...         ticks.append(sim.now)
    >>> _ = Process(sim, clock(), name="clock")
    >>> _ = sim.run(until=3.5)
    >>> ticks
    [1.0, 2.0, 3.0]
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Union

from ..errors import SimulationError
from .engine import Simulator
from .events import EventHandle


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Signal:
    """A broadcast condition processes can wait on.

    ``yield signal`` parks the process; :meth:`trigger` wakes every
    waiter at the current simulated time, delivering ``value`` as the
    result of the ``yield`` expression.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self._sim = sim
        self.name = name
        self._waiters: List["Process"] = []
        self.trigger_count = 0

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def trigger(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        self.trigger_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            # Resume via the event queue so wakeups interleave
            # deterministically with other same-time events.
            self._sim.schedule(0.0, process._resume, value)
        return len(waiters)


YieldValue = Union[int, float, Signal]


class Process:
    """Drives a generator as a simulated sequential process.

    The generator may yield:

    * a non-negative number — sleep for that many simulated time units;
    * a :class:`Signal` — park until the signal triggers.

    The process finishes when the generator returns; the return value is
    stored in :attr:`result`. :meth:`interrupt` raises
    :class:`Interrupted` inside the generator at the current time.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[YieldValue, Any, Any],
        name: str = "process",
    ):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        self._sim = sim
        self._gen = generator
        self.name = name
        self.alive = True
        self.result: Any = None
        self._pending_event: Optional[EventHandle] = None
        self._waiting_on: Optional[Signal] = None
        self.finished_at: Optional[float] = None
        # Start at the current instant (still through the queue so that
        # creation order decides same-time interleaving).
        self._pending_event = sim.schedule(0.0, self._resume, None)

    # -- lifecycle ------------------------------------------------------

    def _resume(self, send_value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._waiting_on = None
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupted:
            self._finish(None)
            return
        self._park(yielded)

    def _park(self, yielded: YieldValue) -> None:
        if isinstance(yielded, Signal):
            self._waiting_on = yielded
            yielded._add_waiter(self)
            return
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._crash(SimulationError(f"process {self.name} slept {yielded}"))
                return
            self._pending_event = self._sim.schedule(float(yielded), self._resume, None)
            return
        self._crash(
            SimulationError(
                f"process {self.name} yielded {yielded!r}; expected a delay or Signal"
            )
        )

    def _crash(self, error: Exception) -> None:
        self.alive = False
        self.finished_at = self._sim.now
        raise error

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self.finished_at = self._sim.now

    # -- control --------------------------------------------------------

    def interrupt(self, cause: object = None) -> bool:
        """Raise :class:`Interrupted` inside the generator now.

        Returns:
            True if the process was alive and got interrupted.
        """
        if not self.alive:
            return False
        if self._pending_event is not None:
            self._sim.cancel(self._pending_event)
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        try:
            yielded = self._gen.throw(Interrupted(cause))
        except StopIteration as stop:
            self._finish(stop.value)
            return True
        except Interrupted:
            self._finish(None)
            return True
        self._park(yielded)
        return True

    def kill(self) -> None:
        """Terminate the process without raising inside it."""
        if not self.alive:
            return
        if self._pending_event is not None:
            self._sim.cancel(self._pending_event)
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self._gen.close()
        self._finish(None)
