"""Figure 5: CDF of number of sessions for 50 nodes.

Paper reference (§5): weak consistency needs 6.1499 sessions on average
to reach all 50 replicas; fast consistency needs 3.9261; the replica
with most demand reaches consistency in ~1 session — "up to six times
quicker".
"""

from __future__ import annotations

from repro.experiments.backends import SerialBackend
from repro.experiments.figures import PAPER, figure5
from repro.experiments.tables import format_table
from repro.viz.ascii import cdf_plot

REPS = 40


def test_fig5_cdf_50_nodes(benchmark, report):
    # figure5 runs through the declarative plan pipeline; the backend is
    # pinned so the benchmark times single-core execution.
    result = benchmark.pedantic(
        lambda: figure5(reps=REPS, seed=1, backend=SerialBackend()),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["curve (mean sessions)", "paper", "measured"],
        result.rows(),
        title=f"Fig. 5 — n=50, reps={REPS} (paper: 10,000), "
        f"mean diameter {result.mean_diameter:.2f}",
    )
    plot = cdf_plot(result.curves, result.grid, title="Fig. 5 CDF (ASCII)")
    report.add("fig5", table + "\n\n" + plot)

    means = result.means
    # Shape assertions: ordering and rough factors, not absolute values.
    assert means["fast (all replicas)"] < means["weak (all replicas)"]
    assert means["ordered-only (all)"] < means["weak (all replicas)"]
    assert means["fast (high demand)"] < means["fast (all replicas)"]
    # "an average of 1 session" for the most-demanded replica.
    assert means["fast (high demand)"] < 2.0
    # Global improvement roughly matches the paper's 6.15 -> 3.93 (~36%).
    improvement = 1 - means["fast (all replicas)"] / means["weak (all replicas)"]
    assert improvement > 0.15
    # "up to six times quicker" in high-demand zones.
    assert result.speedup_high_demand > 3.0
    # Same ballpark as the paper's absolute numbers (generous band).
    assert 4.0 < means["weak (all replicas)"] < 9.0
    assert 2.5 < means["fast (all replicas)"] < 6.5
