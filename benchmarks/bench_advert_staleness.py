"""§4 knowledge-freshness ablation: how often must demand be advertised?

The paper assumes nodes are "periodically informed of the demand of
their neighbours, in a way similar to IP routing algorithms" but leaves
the period open. Under drifting demand this benchmark sweeps the
advertisement period between the two extremes the paper discusses:
perfect knowledge (§4's oracle assumption) and a frozen snapshot
(§3's failing static algorithm), with the advert traffic measured.
"""

from __future__ import annotations

from repro.experiments.figures import staleness_experiment
from repro.experiments.tables import format_table

REPS = 30


def test_advert_staleness_sweep(benchmark, report):
    result = benchmark.pedantic(
        lambda: staleness_experiment(reps=REPS, seed=1), rounds=1, iterations=1
    )

    table = format_table(
        ["knowledge", "sessions to hottest", "sessions to all", "advert bytes"],
        result.rows(),
        title=f"§4 — demand-knowledge freshness under drifting demand (reps={REPS})",
    )
    report.add("staleness", table)

    rows = result.rows_by_variant
    # Fresh knowledge beats the frozen §3 snapshot at steering updates
    # toward the currently-hottest replica.
    assert rows["oracle"]["mean_top"] < rows["snapshot (§3)"]["mean_top"]
    assert rows["advertised/0.5"]["mean_top"] < rows["snapshot (§3)"]["mean_top"] * 1.05
    # The advert cost falls with the period (the tunable §4 trade-off).
    assert (
        rows["advertised/0.5"]["advert_bytes"]
        > rows["advertised/2"]["advert_bytes"]
        > rows["advertised/8"]["advert_bytes"]
        > 0
    )
    # Even stale knowledge keeps the fast-consistency advantage (~1-2
    # sessions to the hottest replica, versus ~5+ under weak).
    for variant, data in rows.items():
        assert data["mean_top"] < 3.0, variant
