"""Post-heal convergence under faults: fast-update vs anti-entropy only.

The paper motivates demand-driven replication with unreliable wide-area
networks but only evaluates healthy topologies. This benchmark runs the
fault-swept declarative pipeline — line topology, uniform demand,
``split_brain`` and ``poisson_churn`` regimes — and records how long
each variant needs to finish replication *after the last partition
heals* (``TrialResult.time_post_heal``). Results go to
``BENCH_faults.json`` at the repo root so the robustness trajectory is
tracked across PRs alongside ``BENCH_pipeline.json``.

The quantitative claim under test: demand-ordered fast update is never
slower than plain anti-entropy at recovering from a partition, and its
pre-split push frequently makes the post-heal phase trivial (the hot
side already converged before the brain split).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.backends import SerialBackend
from repro.experiments.plan import ExperimentPlan

REPS = 8
NODES = 16
SEED = 11
FAULTS = ("split_brain", "poisson_churn")

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def _plan() -> ExperimentPlan:
    return ExperimentPlan(
        name="faults-convergence",
        topology="line",
        demand="uniform",
        variants=("weak", "fast"),
        faults=FAULTS,
        n=NODES,
        reps=REPS,
        seed=SEED,
        max_time=200.0,
    )


def test_faults_convergence(benchmark, report):
    plan = _plan()
    result = benchmark.pedantic(lambda: plan.run(SerialBackend()), rounds=1, iterations=1)

    payload = {
        "experiment": plan.name,
        "topology": plan.topology,
        "nodes": NODES,
        "reps": REPS,
        "seed": SEED,
        "faults": list(FAULTS),
        "series": {},
    }
    for label in plan.series_labels():
        series = result.series[label]
        converged = [t for t in series.trials if t.time_all is not None]
        post_heal = series.mean_post_heal()
        payload["series"][label] = {
            "converged": len(converged),
            "trials": len(series.trials),
            "mean_time_all": (
                round(sum(t.time_all for t in converged) / len(converged), 4)
                if converged
                else None
            ),
            "mean_post_heal": None if post_heal is None else round(post_heal, 4),
            "mean_messages": round(series.mean_messages(), 1),
        }

    weak_heal = payload["series"]["weak@split_brain"]["mean_post_heal"]
    fast_heal = payload["series"]["fast@split_brain"]["mean_post_heal"]
    payload["fast_vs_weak_post_heal_ratio"] = (
        round(fast_heal / weak_heal, 4)
        if (weak_heal is not None and fast_heal is not None and weak_heal)
        else None
    )

    # Record before asserting so a red run still uploads the measured
    # numbers that diagnose it.
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # Every faulted trial must still converge: the generators keep the
    # network recoverable, so a non-convergence is a protocol bug.
    for label, row in payload["series"].items():
        assert row["converged"] == row["trials"], f"{label} failed to converge"

    # The claim: fast update's post-heal recovery is never slower than
    # plain anti-entropy's on the paired split-brain repetitions.
    assert weak_heal is not None and fast_heal is not None
    assert fast_heal <= weak_heal, (
        f"fast-update recovered slower than anti-entropy: {fast_heal} > {weak_heal}"
    )

    lines = [f"{label}: {row}" for label, row in payload["series"].items()]
    lines.append(f"fast/weak post-heal ratio: {payload['fast_vs_weak_post_heal_ratio']}")
    report.add("faults-convergence", "\n".join(lines))
