"""Ablation of §2's "two optimizations".

The paper attributes fast consistency's gain to (1) demand-ordered
partner selection and (2) immediate propagation to the highest-demand
neighbour. This benchmark separates them, and additionally probes the
design choices DESIGN.md calls out: the downhill push rule vs an
unconditional push, and the push fanout.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_experiment
from repro.experiments.tables import format_table
from repro.viz.ascii import bar_chart

REPS = 15


def test_ablation_of_the_two_optimizations(benchmark, report):
    result = benchmark.pedantic(
        lambda: ablation_experiment(reps=REPS, seed=1, n=50), rounds=1, iterations=1
    )

    table = format_table(
        ["variant", "mean sessions (all)", "mean sessions (top 10%)"],
        result.rows(),
        title=f"§2 — optimisation ablation on n=50 (reps={REPS})",
    )
    chart = bar_chart(
        {v: d["mean_top"] for v, d in result.rows_by_variant.items()},
        title="sessions to the high-demand subset (lower is better)",
    )
    report.add("ablation", table + "\n\n" + chart)

    rows = result.rows_by_variant
    # Each optimisation alone helps the high-demand subset.
    assert rows["ordered-only"]["mean_top"] < rows["weak"]["mean_top"]
    assert rows["push-only"]["mean_top"] < rows["weak"]["mean_top"]
    # The combination is at least as good as either alone.
    assert rows["fast"]["mean_top"] <= rows["ordered-only"]["mean_top"] * 1.05
    assert rows["fast"]["mean_top"] <= rows["push-only"]["mean_top"] * 1.05
    # Wider fanout can only help the high-demand subset.
    assert rows["fast-fanout2"]["mean_top"] <= rows["fast"]["mean_top"] * 1.05
    # Unconditional push floods everyone faster globally (it trades
    # traffic for latency) — it must not be *slower* than downhill.
    assert rows["fast-always"]["mean_all"] <= rows["fast"]["mean_all"] * 1.05
