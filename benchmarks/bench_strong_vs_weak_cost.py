"""§1 motivation: strong consistency is "costly, non-scalable ..., not
very reliable, generate[s] considerable latency".

The benchmark measures a synchronous primary-copy write against the
anti-entropy system: commit latency, message cost per write (3(N-1)),
and failure rate under 5% message loss.
"""

from __future__ import annotations

from repro.experiments.figures import strong_cost_experiment
from repro.experiments.tables import format_table

SIZES = (10, 25, 50)
REPS = 5


def test_strong_vs_weak_cost(benchmark, report):
    result = benchmark.pedantic(
        lambda: strong_cost_experiment(sizes=SIZES, reps=REPS, seed=1),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        [
            "nodes",
            "strong latency",
            "strong msgs/write",
            "fail rate @5% loss",
            "weak write latency",
            "weak convergence",
        ],
        result.rows(),
        title=f"§1 — synchronous vs anti-entropy, per write (reps={REPS})",
    )
    report.add("strongcost", table)

    rows = result.rows_by_size
    # Message cost scales linearly with N (3(N-1)).
    assert rows[50]["strong_messages"] > 4 * rows[10]["strong_messages"]
    for n in SIZES:
        assert rows[n]["strong_messages"] >= 3 * (n - 1)
        # Strong writes block the client; weak writes return immediately.
        assert rows[n]["strong_latency"] > 0.0
        assert rows[n]["weak_latency"] == 0.0
    # Reliability: under loss some synchronous writes fail outright.
    assert any(rows[n]["strong_fail_rate"] > 0.0 for n in SIZES)
