"""§5 scaling claim: sessions track the diameter, not the node count.

Paper reference: "as the number of nodes doubles, the number of sessions
required to propagate a change to all replicas does not grow as fast. It
seems that the number of sessions required to reach a global consistent
state is related to the diameter of the network" — hence applicable to
the whole Internet (diameter ~20).
"""

from __future__ import annotations

from repro.experiments.backends import SerialBackend
from repro.experiments.figures import scaling_experiment
from repro.experiments.tables import format_table

SIZES = (25, 50, 100)
REPS = 15


def test_scaling_sessions_vs_diameter(benchmark, report):
    # Each size expands to one declarative ExperimentPlan; the backend
    # is pinned so the benchmark times single-core execution.
    result = benchmark.pedantic(
        lambda: scaling_experiment(sizes=SIZES, reps=REPS, seed=1, backend=SerialBackend()),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["nodes", "diameter", "weak mean", "fast mean", "fast top-10% mean"],
        result.rows(),
        title=f"§5 — sessions-to-consistency vs size (reps={REPS})",
    )
    report.add("scaling", table)

    rows = result.rows_by_size
    for small, large in zip(SIZES, SIZES[1:]):
        node_growth = large / small  # 2x
        weak_growth = rows[large]["weak_mean"] / rows[small]["weak_mean"]
        fast_growth = rows[large]["fast_mean"] / rows[small]["fast_mean"]
        # Doubling nodes grows sessions far less than 2x.
        assert weak_growth < 0.8 * node_growth
        assert fast_growth < 0.8 * node_growth
        # Diameter also grows slowly — the shared cause.
        diameter_growth = rows[large]["diameter"] / rows[small]["diameter"]
        assert diameter_growth < 0.8 * node_growth
    # Paper's concrete deltas: 50->100 adds <1 session for fast
    # (3.93 -> 4.78) and <1 for weak (6.15 -> 6.98); allow 2x slack.
    assert rows[100]["fast_mean"] - rows[50]["fast_mean"] < 2.0
    assert rows[100]["weak_mean"] - rows[50]["weak_mean"] < 2.0
