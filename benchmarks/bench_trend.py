"""Cross-PR perf trend: diff the BENCH_*.json artifacts against git.

Every perf-bearing benchmark in this directory writes a ``BENCH_*.json``
at the repo root and commits it, so ``git show HEAD:BENCH_x.json`` is
the previous PR's measurement of this machine-shaped workload. This
module walks both JSON trees, pairs up the numeric leaves, and prints a
table of the deltas — making perf regressions visible in CI without
gating on them (absolute numbers move with runner hardware; the gating
ratios live inside the benchmarks themselves).

Direction is inferred from the metric name: throughput-like keys
(``*_per_s``, ``*speedup*``) regress when they drop, cost-like keys
(``seconds``, ``*_s``, ``*_kb``, latencies) regress when they rise, and
anything else is reported as informational. Changes smaller than
``TOLERANCE`` are noise on a shared runner and reported as steady.

Run directly (``python benchmarks/bench_trend.py [--strict]``) or via
pytest; both write ``BENCH_trend.md`` at the repo root. ``--strict``
exits non-zero on regressions for local use; CI stays informational.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_trend.md"
BASELINE_REF = "HEAD"
#: Relative change below which a delta is considered runner noise.
TOLERANCE = 0.10

HIGHER_IS_BETTER = ("_per_s", "per_s", "speedup", "ops_s")
LOWER_IS_BETTER = ("seconds", "busy_max_s", "busy_sum_s", "busy_s", "_kb", "_ms", "latency", "p50", "p99")


def numeric_leaves(tree: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf in a JSON tree."""
    if isinstance(tree, bool):
        return
    if isinstance(tree, (int, float)):
        yield prefix, float(tree)
    elif isinstance(tree, dict):
        for key, value in tree.items():
            yield from numeric_leaves(value, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(tree, list):
        for index, value in enumerate(tree):
            yield from numeric_leaves(value, f"{prefix}[{index}]")


def direction(path: str) -> Optional[bool]:
    """True = higher is better, False = lower is better, None = info only."""
    leaf = path.rsplit(".", 1)[-1]
    if any(mark in leaf for mark in HIGHER_IS_BETTER):
        return True
    if any(leaf.endswith(mark) or mark in leaf for mark in LOWER_IS_BETTER):
        return False
    return None


def baseline_json(name: str, ref: str = BASELINE_REF) -> Optional[Dict]:
    """The artifact as committed at ``ref``, or None if absent there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_artifact(name: str, ref: str = BASELINE_REF) -> List[Dict[str, object]]:
    """Per-metric rows comparing the working-tree artifact to ``ref``."""
    current_path = REPO_ROOT / name
    if not current_path.exists():
        return []
    current = json.loads(current_path.read_text(encoding="utf-8"))
    previous = baseline_json(name, ref)
    if previous is None:
        return [{"artifact": name, "metric": "(no baseline)", "verdict": "new"}]

    old = dict(numeric_leaves(previous))
    rows: List[Dict[str, object]] = []
    for path, value in numeric_leaves(current):
        if path not in old:
            continue
        before = old[path]
        if before == 0:
            continue
        change = (value - before) / abs(before)
        better = direction(path)
        if better is None:
            verdict = "info"
        elif abs(change) <= TOLERANCE:
            verdict = "steady"
        elif (change > 0) == better:
            verdict = "improved"
        else:
            verdict = "REGRESSION"
        rows.append(
            {
                "artifact": name,
                "metric": path,
                "before": before,
                "after": value,
                "change_pct": round(change * 100, 1),
                "verdict": verdict,
            }
        )
    return rows


def render(rows: List[Dict[str, object]], ref: str) -> str:
    lines = [
        f"# BENCH trend vs `{ref}`",
        "",
        "| artifact | metric | before | after | Δ% | verdict |",
        "|---|---|---:|---:|---:|---|",
    ]
    # Regressions first so they survive table truncation in CI logs;
    # steady metrics and unmoved info rows are summarised, not listed.
    order = {"REGRESSION": 0, "improved": 1, "new": 2, "info": 3}
    shown = [
        row
        for row in rows
        if row["verdict"] in ("REGRESSION", "improved", "new")
        or (
            row["verdict"] == "info"
            and abs(row.get("change_pct", 0.0)) > TOLERANCE * 100
        )
    ]
    for row in sorted(shown, key=lambda r: order.get(str(r["verdict"]), 5)):
        if row["verdict"] == "new":
            lines.append(f"| {row['artifact']} | {row['metric']} | | | | new |")
            continue
        lines.append(
            f"| {row['artifact']} | {row['metric']} | {row['before']:g} "
            f"| {row['after']:g} | {row['change_pct']:+.1f} | {row['verdict']} |"
        )
    if not shown:
        lines.append("| | (no metric moved) | | | | |")
    regressions = sum(1 for r in rows if r["verdict"] == "REGRESSION")
    improved = sum(1 for r in rows if r["verdict"] == "improved")
    quiet = len(rows) - len(shown)
    lines += [
        "",
        f"{regressions} regression(s), {improved} improved, {quiet} "
        f"steady/unmoved not listed (tolerance ±{TOLERANCE:.0%}).",
        "",
    ]
    return "\n".join(lines)


def run_trend(ref: str = BASELINE_REF) -> Tuple[List[Dict[str, object]], str]:
    rows: List[Dict[str, object]] = []
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        rows.extend(diff_artifact(path.name, ref))
    report = render(rows, ref)
    REPORT_PATH.write_text(report, encoding="utf-8")
    return rows, report


#: The telemetry bench's O(1)-memory claim, re-checked from the
#: committed artifact: streaming status peak may grow by at most this
#: factor across the artifact's rungs (10^3 -> 10^5 trials). A ratio
#: gate is runner-independent, so unlike the absolute deltas above it
#: is enforced, not informational.
TELEMETRY_FLAT_FACTOR = 4.0


def telemetry_flat_violation(tree: Dict) -> Optional[str]:
    """None if the artifact's streaming peaks are flat, else a message."""
    results = tree.get("results", {})
    peaks = {
        int(rung): float(row["streaming_peak_kb"])
        for rung, row in results.items()
        if isinstance(row, dict) and "streaming_peak_kb" in row
    }
    if len(peaks) < 2:
        return "artifact carries fewer than two rungs"
    smallest, largest = min(peaks), max(peaks)
    if peaks[largest] > TELEMETRY_FLAT_FACTOR * max(peaks[smallest], 1.0):
        return (
            f"streaming peak grew {peaks[smallest]:.0f} KiB @ {smallest} -> "
            f"{peaks[largest]:.0f} KiB @ {largest} trials "
            f"(limit {TELEMETRY_FLAT_FACTOR}x)"
        )
    return None


def test_telemetry_memory_stays_flat():
    """Gate: the committed telemetry artifact still shows O(1) status."""
    path = REPO_ROOT / "BENCH_telemetry.json"
    if not path.exists():
        return  # bench not yet run on this checkout; nothing to gate
    tree = json.loads(path.read_text(encoding="utf-8"))
    violation = telemetry_flat_violation(tree)
    assert violation is None, violation


def test_trend_report(report):
    """Informational in CI: print the table, never fail the build on it
    (absolute perf moves with the runner; in-bench ratio gates do the
    enforcement)."""
    rows, rendered = run_trend()
    report.add("trend", rendered)
    # The report must at least have produced rows for the artifacts
    # that exist both here and at the baseline.
    assert REPORT_PATH.exists()
    assert isinstance(rows, list)


def main(argv: List[str]) -> int:
    strict = "--strict" in argv
    ref = BASELINE_REF
    for arg in argv:
        if arg.startswith("--ref="):
            ref = arg.split("=", 1)[1]
    rows, rendered = run_trend(ref)
    print(rendered)
    regressions = [r for r in rows if r["verdict"] == "REGRESSION"]
    if strict and regressions:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
