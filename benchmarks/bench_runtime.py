"""Live-runtime latency benches: serving (fast vs weak) and chaos SLOs.

Every other benchmark measures the protocol in virtual time.  This one
exercises the *wall-clock* execution world: a :class:`ReplicaCluster`
on the asyncio runtime serves a stream of client ``put``\\ s and we
measure sustained ops/s plus the p50/p99 wall-clock latency from the
``put`` call until (a) the top-10%-demand replicas and (b) every
replica absorbed the write.  Results go to ``BENCH_runtime.json`` at
the repo root so the live-serving trajectory is tracked across PRs
alongside ``BENCH_pipeline.json`` / ``BENCH_faults.json``.

Four experiments share that file:

* ``serving`` — the paper's headline transplanted to real time:
  demand-ordered fast update reaches the high-demand subset far sooner
  than plain anti-entropy.  Wall timings vary with machine load, so
  the gate is deliberately loose (fast p50-to-hot-set must beat weak
  by at least 2x; the paper-scale gap is an order of magnitude).
* ``chaos`` — the same cluster serving *through* an injected fault
  schedule (``rolling_restart``, ``flapping_links``,
  ``corrupt_storm``).  Gates: every accepted put converges after the
  schedule heals, puts addressed to a crashed node fail cleanly (never
  hang), the p99 put-to-replicated latency stays under a loose SLO,
  and the corrupt storm visibly drops frames without ever breaking
  convergence.
* ``packet_parity`` — the same schedule object carrying all four
  packet-level actions must account identically (applied/skipped) in
  virtual time and on the wall clock.
* ``hub_failover`` — a TCP cluster with a standby hub loses its
  primary hub mid-traffic; nodes re-register with the standby and
  every accepted put still converges under the SLO (the no-SPOF gate).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.errors import ReplicationError
from repro.experiments.cdf import EmpiricalCdf
from repro.experiments.scenarios import VARIANTS, build_faults
from repro.experiments.tables import format_table
from repro.runtime.cluster import ReplicaCluster
from repro.topology.brite import internet_like

NODES = 12
PUTS = 40
SEED = 7
TIME_SCALE = 0.02  # 50 protocol units per wall second
VARIANT_NAMES = ("fast", "weak")

CHAOS_NODES = 8
CHAOS_SCHEDULES = ("rolling_restart", "flapping_links", "corrupt_storm")
#: Very loose: a healthy run sits well under 200 ms; the SLO only
#: catches convergence pathologies, not machine-load jitter.
CHAOS_P99_SLO_MS = 1500.0

#: The hub-failover gate's TCP cluster (spawned OS processes, so small).
FAILOVER_NODES = 6

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _write_section(section: str, payload: Dict[str, object]) -> None:
    """Merge one experiment's payload into BENCH_runtime.json.

    The serving and chaos benches run as separate tests (possibly
    filtered to one of them), so each merges its own section instead of
    overwriting the whole file.
    """
    data: Dict[str, object] = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = None
        # The pre-chaos layout was one flat experiment dict; replace it.
        if isinstance(existing, dict) and "experiment" not in existing:
            data = existing
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def _hot_set(cluster: ReplicaCluster) -> List[int]:
    snapshot = cluster.demand.snapshot(cluster.topology.nodes, 0.0)
    count = max(1, len(snapshot) // 10)
    return sorted(snapshot, key=lambda n: -snapshot[n])[:count]


def _serve_one(variant: str) -> Dict[str, object]:
    config = VARIANTS[variant]()
    with ReplicaCluster(
        nodes=NODES, config=config, seed=SEED, time_scale=TIME_SCALE
    ) as cluster:
        hot = _hot_set(cluster)
        node_ids = sorted(cluster.servers)
        uids = []
        started = time.monotonic()
        for sequence in range(PUTS):
            node = node_ids[sequence % len(node_ids)]
            uids.append(cluster.put("content", f"v{sequence}", node=node).uid)
            time.sleep(0.01)
        for uid in uids:
            cluster.wait_replicated(uid, timeout=30.0)
        elapsed = time.monotonic() - started
        all_latencies: List[float] = []
        hot_latencies: List[float] = []
        for uid in uids:
            latency = cluster.replication_latency(uid)
            if latency is not None:
                all_latencies.append(latency)
            times = cluster.apply_times(uid)
            if all(node in times for node in hot):
                t0 = min(times.values())  # origin applies at put time
                hot_latencies.append(
                    (max(times[node] for node in hot) - t0) * TIME_SCALE
                )
        stats = cluster.stats()
    # Every put must have fully replicated before percentiles mean
    # anything; assert here so a timeout fails with context, not an
    # empty-sample error further down.
    assert len(all_latencies) == PUTS, (variant, len(all_latencies))
    assert len(hot_latencies) == PUTS, (variant, len(hot_latencies))
    all_cdf = EmpiricalCdf(all_latencies)
    hot_cdf = EmpiricalCdf(hot_latencies)
    return {
        "variant": variant,
        "replicated": len(all_latencies),
        "ops_per_s": PUTS / elapsed,
        "p50_all_ms": 1000 * all_cdf.quantile(0.5),
        "p99_all_ms": 1000 * all_cdf.quantile(0.99),
        "p50_hot_ms": 1000 * hot_cdf.quantile(0.5),
        "p99_hot_ms": 1000 * hot_cdf.quantile(0.99),
        "messages": stats["traffic"]["messages_sent"],
        "handler_errors": stats["handler_errors"],
    }


def test_runtime_serving(benchmark, report):
    results: Dict[str, Dict[str, object]] = {}

    def run_all() -> None:
        for variant in VARIANT_NAMES:
            results[variant] = _serve_one(variant)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    fast, weak = results["fast"], results["weak"]
    # Every put must have fully replicated in both worlds.
    assert fast["replicated"] == PUTS, fast
    assert weak["replicated"] == PUTS, weak
    assert fast["handler_errors"] == 0 and weak["handler_errors"] == 0
    # The paper's claim on the wall clock: the demand-directed push
    # reaches the hot subset much sooner than session-paced anti-entropy.
    assert fast["p50_hot_ms"] * 2 <= weak["p50_hot_ms"], (fast, weak)

    payload = {
        "experiment": "runtime-serving",
        "nodes": NODES,
        "puts": PUTS,
        "seed": SEED,
        "time_scale": TIME_SCALE,
        "results": results,
    }
    _write_section("serving", payload)

    rows = [
        (
            variant,
            f"{results[variant]['ops_per_s']:.1f}",
            f"{results[variant]['p50_hot_ms']:.1f}",
            f"{results[variant]['p50_all_ms']:.1f}",
            f"{results[variant]['p99_all_ms']:.1f}",
            results[variant]["messages"],
        )
        for variant in VARIANT_NAMES
    ]
    report.add(
        "live runtime — put-to-replicated latency (wall-clock ms)",
        format_table(
            ["variant", "ops/s", "p50 hot", "p50 all", "p99 all", "msgs"],
            rows,
            title=f"ReplicaCluster n={NODES}, {PUTS} puts, "
            f"time_scale={TIME_SCALE}",
        ),
    )


def _serve_through_chaos(name: str) -> Dict[str, object]:
    """Serve puts while ``name``'s fault schedule replays; measure SLOs."""
    topology = internet_like(CHAOS_NODES, seed=SEED)
    schedule = build_faults(name, topology, seed=SEED)
    config = VARIANTS["fast"]()
    with ReplicaCluster(
        topology,
        config=config,
        seed=SEED,
        time_scale=TIME_SCALE,
        faults=schedule,
    ) as cluster:
        node_ids = cluster.node_ids
        uids = []
        refused = 0
        # Serve for the whole schedule plus a post-heal tail.  Packet
        # windows outlive their triggering event by their duration, so
        # the horizon covers the last window's expiry too.
        window_end = schedule.last_packet_window_end() or 0.0
        horizon = (max(schedule.duration, window_end) + 2.0) * TIME_SCALE
        started = time.monotonic()
        sequence = 0
        while time.monotonic() - started < horizon:
            node = node_ids[sequence % len(node_ids)]
            try:
                uids.append(cluster.put("content", f"v{sequence}", node=node).uid)
            except ReplicationError:
                # The target is crashed right now; a clean refusal is
                # the contract (a hang here would blow the bench gate).
                refused += 1
            sequence += 1
            time.sleep(0.01)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status = cluster.chaos_status()
            if status is not None and status["done"]:
                break
            time.sleep(0.05)
        chaos = cluster.chaos_status() or {}
        converged = sum(
            1 for uid in uids if cluster.wait_replicated(uid, timeout=30.0)
        )
        # p50/p99 read from the cluster's streaming latency sketch (the
        # same series `repro chaos --report` and the metrics emitter
        # see) — no per-put latency list, and the numbers keep covering
        # puts even after their per-uid records are evicted.
        p50 = cluster.replication_latency_quantile(0.5)
        p99 = cluster.replication_latency_quantile(0.99)
        stats = cluster.stats()
    traffic = stats["traffic"]
    return {
        "schedule": name,
        "puts_accepted": len(uids),
        "puts_refused": refused,
        "converged": converged,
        "fault_events_applied": chaos.get("applied", 0),
        "fault_events_total": chaos.get("total", 0),
        "p50_all_ms": 1000 * p50 if p50 is not None else None,
        "p99_all_ms": 1000 * p99 if p99 is not None else None,
        "post_heal_seconds": stats["post_heal_seconds"],
        "messages": traffic["messages_sent"],
        "corrupt_frames_dropped": traffic.get("corrupt_frames_dropped", 0),
        "duplicates_suppressed": traffic.get("duplicates_suppressed", 0),
        "reorders_applied": traffic.get("reorders_applied", 0),
        "handler_errors": stats["handler_errors"],
    }


def test_runtime_chaos(benchmark, report):
    results: Dict[str, Dict[str, object]] = {}

    def run_all() -> None:
        for name in CHAOS_SCHEDULES:
            results[name] = _serve_through_chaos(name)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for name in CHAOS_SCHEDULES:
        result = results[name]
        # Every scheduled fault fired, and every put the cluster
        # accepted converged once the schedule healed.
        assert result["fault_events_applied"] == result["fault_events_total"], result
        assert result["puts_accepted"] > 0, result
        assert result["converged"] == result["puts_accepted"], result
        assert result["handler_errors"] == 0, result
        assert result["p99_all_ms"] is not None, result
        assert result["p99_all_ms"] <= CHAOS_P99_SLO_MS, result
        if name == "corrupt_storm":
            # The packet storm must actually bite on the live channel
            # (and still never break convergence, per the gates above).
            assert result["corrupt_frames_dropped"] > 0, result

    payload = {
        "experiment": "runtime-chaos",
        "nodes": CHAOS_NODES,
        "seed": SEED,
        "time_scale": TIME_SCALE,
        "p99_slo_ms": CHAOS_P99_SLO_MS,
        "results": results,
    }
    _write_section("chaos", payload)

    rows = [
        (
            name,
            results[name]["puts_accepted"],
            results[name]["puts_refused"],
            f"{results[name]['converged']}/{results[name]['puts_accepted']}",
            f"{results[name]['p50_all_ms']:.1f}",
            f"{results[name]['p99_all_ms']:.1f}",
            f"{results[name]['fault_events_applied']}"
            f"/{results[name]['fault_events_total']}",
        )
        for name in CHAOS_SCHEDULES
    ]
    report.add(
        "live runtime — serving through chaos (wall-clock ms)",
        format_table(
            ["schedule", "puts", "refused", "converged", "p50", "p99", "faults"],
            rows,
            title=f"ReplicaCluster n={CHAOS_NODES}, fast variant, "
            f"time_scale={TIME_SCALE}, p99 SLO {CHAOS_P99_SLO_MS:.0f} ms",
        ),
    )


def test_runtime_packet_parity(report):
    """sim == live: the four packet actions account identically.

    The very same schedule object — one window of each packet-level
    action — replays through ``FaultProcess`` (virtual time) and
    ``FaultReplayer`` (wall clock on the queue cluster); the gate is
    bit-identical applied/skipped accounting.
    """
    from repro.experiments.scenarios import build_system
    from repro.faults import FaultProcess, FaultSchedule
    from repro.faults.schedule import (
        corrupt_frame,
        latency_shock,
        packet_duplicate,
        packet_reorder,
    )
    from repro.topology.simple import line

    topology = line(4)
    schedule = FaultSchedule(
        events=(
            latency_shock(0.2, 2.0, 1.0),
            packet_reorder(0.3, 0.4, 0.5, 1.0),
            packet_duplicate(0.4, 0.4, 1.0),
            corrupt_frame(0.5, 0.2, 1.0),
        ),
        name="packet-mix",
    ).validate()

    system = build_system(topology="line", n=4, variant="fast", seed=SEED)
    process = FaultProcess(system, schedule)
    system.start()
    system.run_until(schedule.duration + 1.0)
    sim_stats = dict(process.stats)
    sim_skipped = len(process.skipped)

    with ReplicaCluster(topology, seed=SEED, time_scale=TIME_SCALE) as cluster:
        replayer = cluster.inject_faults(schedule)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not replayer.done:
            time.sleep(0.02)
        live_stats = dict(replayer.stats)
        live_skipped = len(replayer.skipped)

    payload = {
        "experiment": "packet-parity",
        "seed": SEED,
        "sim_stats": sim_stats,
        "live_stats": live_stats,
        "sim_skipped": sim_skipped,
        "live_skipped": live_skipped,
    }
    _write_section("packet_parity", payload)

    assert sim_stats == live_stats == {
        "latency_shock": 1,
        "packet_reorder": 1,
        "packet_duplicate": 1,
        "corrupt_frame": 1,
    }, payload
    assert sim_skipped == live_skipped == 0, payload

    report.add(
        "packet-fault parity (sim vs live)",
        f"applied {sim_stats} in both worlds, skipped 0/0",
    )


def test_runtime_hub_failover(benchmark, report):
    """Kill the hub mid-traffic on a TCP cluster; no put is stranded.

    The no-SPOF gate: a spawn-per-node TCP cluster with one standby hub
    serves a put stream, the primary hub dies mid-stream, nodes
    re-register with the standby, and every accepted put still
    converges with p99 under the chaos SLO.
    """
    result: Dict[str, object] = {}

    def run() -> None:
        with ReplicaCluster(
            nodes=FAILOVER_NODES,
            config=VARIANTS["fast"](),
            seed=SEED,
            time_scale=TIME_SCALE,
            transport="tcp",
            standby_hubs=1,
        ) as cluster:
            node_ids = cluster.node_ids
            uids = []
            refused = 0
            killed = False
            started = time.monotonic()
            sequence = 0
            # ~2 s of traffic; the hub dies a quarter of the way in.
            while time.monotonic() - started < 2.0:
                if not killed and time.monotonic() - started > 0.5:
                    cluster.kill_hub()
                    killed = True
                node = node_ids[sequence % len(node_ids)]
                try:
                    uids.append(
                        cluster.put("content", f"v{sequence}", node=node).uid
                    )
                except ReplicationError:
                    # The control channel flaps while its node
                    # re-registers with the standby; refusals must be
                    # clean and bounded, never hangs.
                    refused += 1
                sequence += 1
                time.sleep(0.01)
            converged = sum(
                1 for uid in uids if cluster.wait_replicated(uid, timeout=30.0)
            )
            p99 = cluster.replication_latency_quantile(0.99)
            stats = cluster.stats()
            result.update(
                {
                    "puts_accepted": len(uids),
                    "puts_refused": refused,
                    "converged": converged,
                    "hub_killed": killed,
                    "hubs": len(cluster.hub_addresses),
                    "p99_all_ms": 1000 * p99 if p99 is not None else None,
                    "post_heal_seconds": stats["post_heal_seconds"],
                    "handler_errors": stats["handler_errors"],
                }
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    payload = {
        "experiment": "runtime-hub-failover",
        "nodes": FAILOVER_NODES,
        "seed": SEED,
        "time_scale": TIME_SCALE,
        "p99_slo_ms": CHAOS_P99_SLO_MS,
        "result": result,
    }
    _write_section("hub_failover", payload)

    assert result["hub_killed"], result
    assert result["puts_accepted"] > 0, result
    # The headline gate: every put the cluster accepted — before,
    # during, and after the failover — converged on every replica.
    assert result["converged"] == result["puts_accepted"], result
    assert result["handler_errors"] == 0, result
    assert result["p99_all_ms"] is not None, result
    assert result["p99_all_ms"] <= CHAOS_P99_SLO_MS, result

    report.add(
        "live runtime — hub failover (TCP, standby hub)",
        f"{result['puts_accepted']} puts ({result['puts_refused']} refused "
        f"during failover), {result['converged']} converged, "
        f"p99 {result['p99_all_ms']:.1f} ms, "
        f"post-heal {result['post_heal_seconds']}",
    )
