"""Live-runtime throughput and put-to-replicated latency: fast vs weak.

Every other benchmark measures the protocol in virtual time.  This one
exercises the *wall-clock* execution world: a :class:`ReplicaCluster`
on the asyncio runtime serves a stream of client ``put``\\ s and we
measure sustained ops/s plus the p50/p99 wall-clock latency from the
``put`` call until (a) the top-10%-demand replicas and (b) every
replica absorbed the write.  Results go to ``BENCH_runtime.json`` at
the repo root so the live-serving trajectory is tracked across PRs
alongside ``BENCH_pipeline.json`` / ``BENCH_faults.json``.

The quantitative claim under test is the paper's headline, transplanted
to real time: demand-ordered fast update reaches the high-demand subset
far sooner than plain anti-entropy, and is no slower overall.  Exact
wall timings vary with machine load, so the gate is deliberately loose
(fast p50-to-hot-set must beat weak by at least 2x; the paper-scale gap
is an order of magnitude).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

from repro.experiments.cdf import EmpiricalCdf
from repro.experiments.scenarios import VARIANTS
from repro.experiments.tables import format_table
from repro.runtime.cluster import ReplicaCluster

NODES = 12
PUTS = 40
SEED = 7
TIME_SCALE = 0.02  # 50 protocol units per wall second
VARIANT_NAMES = ("fast", "weak")

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _hot_set(cluster: ReplicaCluster) -> List[int]:
    snapshot = cluster.demand.snapshot(cluster.topology.nodes, 0.0)
    count = max(1, len(snapshot) // 10)
    return sorted(snapshot, key=lambda n: -snapshot[n])[:count]


def _serve_one(variant: str) -> Dict[str, object]:
    config = VARIANTS[variant]()
    with ReplicaCluster(
        nodes=NODES, config=config, seed=SEED, time_scale=TIME_SCALE
    ) as cluster:
        hot = _hot_set(cluster)
        node_ids = sorted(cluster.servers)
        uids = []
        started = time.monotonic()
        for sequence in range(PUTS):
            node = node_ids[sequence % len(node_ids)]
            uids.append(cluster.put("content", f"v{sequence}", node=node).uid)
            time.sleep(0.01)
        for uid in uids:
            cluster.wait_replicated(uid, timeout=30.0)
        elapsed = time.monotonic() - started
        all_latencies: List[float] = []
        hot_latencies: List[float] = []
        for uid in uids:
            latency = cluster.replication_latency(uid)
            if latency is not None:
                all_latencies.append(latency)
            times = cluster.apply_times(uid)
            if all(node in times for node in hot):
                t0 = min(times.values())  # origin applies at put time
                hot_latencies.append(
                    (max(times[node] for node in hot) - t0) * TIME_SCALE
                )
        stats = cluster.stats()
    # Every put must have fully replicated before percentiles mean
    # anything; assert here so a timeout fails with context, not an
    # empty-sample error further down.
    assert len(all_latencies) == PUTS, (variant, len(all_latencies))
    assert len(hot_latencies) == PUTS, (variant, len(hot_latencies))
    all_cdf = EmpiricalCdf(all_latencies)
    hot_cdf = EmpiricalCdf(hot_latencies)
    return {
        "variant": variant,
        "replicated": len(all_latencies),
        "ops_per_s": PUTS / elapsed,
        "p50_all_ms": 1000 * all_cdf.quantile(0.5),
        "p99_all_ms": 1000 * all_cdf.quantile(0.99),
        "p50_hot_ms": 1000 * hot_cdf.quantile(0.5),
        "p99_hot_ms": 1000 * hot_cdf.quantile(0.99),
        "messages": stats["traffic"]["messages_sent"],
        "handler_errors": stats["handler_errors"],
    }


def test_runtime_serving(benchmark, report):
    results: Dict[str, Dict[str, object]] = {}

    def run_all() -> None:
        for variant in VARIANT_NAMES:
            results[variant] = _serve_one(variant)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    fast, weak = results["fast"], results["weak"]
    # Every put must have fully replicated in both worlds.
    assert fast["replicated"] == PUTS, fast
    assert weak["replicated"] == PUTS, weak
    assert fast["handler_errors"] == 0 and weak["handler_errors"] == 0
    # The paper's claim on the wall clock: the demand-directed push
    # reaches the hot subset much sooner than session-paced anti-entropy.
    assert fast["p50_hot_ms"] * 2 <= weak["p50_hot_ms"], (fast, weak)

    payload = {
        "experiment": "runtime-serving",
        "nodes": NODES,
        "puts": PUTS,
        "seed": SEED,
        "time_scale": TIME_SCALE,
        "results": results,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    rows = [
        (
            variant,
            f"{results[variant]['ops_per_s']:.1f}",
            f"{results[variant]['p50_hot_ms']:.1f}",
            f"{results[variant]['p50_all_ms']:.1f}",
            f"{results[variant]['p99_all_ms']:.1f}",
            results[variant]["messages"],
        )
        for variant in VARIANT_NAMES
    ]
    report.add(
        "live runtime — put-to-replicated latency (wall-clock ms)",
        format_table(
            ["variant", "ops/s", "p50 hot", "p50 all", "p99 all", "msgs"],
            rows,
            title=f"ReplicaCluster n={NODES}, {PUTS} puts, "
            f"time_scale={TIME_SCALE}",
        ),
    )
