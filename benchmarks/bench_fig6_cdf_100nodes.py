"""Figure 6: CDF of number of sessions for 100 nodes.

Paper reference (§5): weak 6.982 sessions to all replicas, fast 4.78117,
most-demanded replica ~1 session. Crucially, doubling the node count
from Fig. 5 adds less than one session (the diameter effect).
"""

from __future__ import annotations

from repro.experiments.backends import SerialBackend
from repro.experiments.figures import figure6
from repro.experiments.tables import format_table
from repro.viz.ascii import cdf_plot

REPS = 30


def test_fig6_cdf_100_nodes(benchmark, report):
    # figure6 runs through the declarative plan pipeline; the backend is
    # pinned so the benchmark times single-core execution.
    result = benchmark.pedantic(
        lambda: figure6(reps=REPS, seed=1, backend=SerialBackend()),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["curve (mean sessions)", "paper", "measured"],
        result.rows(),
        title=f"Fig. 6 — n=100, reps={REPS} (paper: 10,000), "
        f"mean diameter {result.mean_diameter:.2f}",
    )
    plot = cdf_plot(result.curves, result.grid, title="Fig. 6 CDF (ASCII)")
    report.add("fig6", table + "\n\n" + plot)

    means = result.means
    assert means["fast (all replicas)"] < means["weak (all replicas)"]
    assert means["fast (high demand)"] < 2.0
    assert result.speedup_high_demand > 3.0
    assert 4.5 < means["weak (all replicas)"] < 10.0
    assert 3.0 < means["fast (all replicas)"] < 7.0
