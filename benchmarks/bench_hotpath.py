"""Simulation-kernel hot-path benchmark: the events/s trajectory.

Not a paper artefact — this is the perf floor every experiment stands
on. Three measurements, written to ``BENCH_hotpath.json`` at the repo
root so regressions show up across PRs:

* **kernel**: raw engine events/s on a schedule/cancel/fire mix (the
  session-timeout pattern that used to leave cancelled events rotting
  in the heap);
* **log diff**: anti-entropy "what does the partner lack" operations/s
  at log sizes 10², 10³ and 10⁴, for the indexed :class:`WriteLog`
  *and* for a reference implementation with the pre-index semantics
  (full scan + sort per call, kept below). The gate — indexed must be
  ≥ 2× the reference at 10⁴ entries — compares two in-process
  implementations on the same machine in the same run, so it is
  load-tolerant by construction;
* **macro**: an n=100 fast-vs-weak convergence run end to end, plus the
  cost of tracing (full vs metrics-only vs disabled) on the same
  workload — the number that justifies ``build_system``'s
  ``trace="metrics"`` default;
* **macro scale ladder**: the same convergence macro at n=10³ and n=10⁴
  (fast variant), single kernel vs
  :class:`~repro.sim.sharded.ShardedSimulator`. Each sharded row
  asserts exact result identity and records wall seconds, per-shard
  busy CPU seconds and the core count. Sharding splits the *same*
  total event work across kernels, so on a one-core runner no mode can
  win wall-clock — the parallel claim is carried by the CPU-time
  critical path: ``single busy / busy_max_s``, the speedup a ≥k-core
  machine would realise. Wall-clock gates therefore apply only when
  the runner actually has ≥k cores; what every machine must show is
  the ≥2x projected speedup at k=4 and bounded windowing overhead on
  the in-process (serial) rows. The timed legs run with the cyclic GC
  paused: with several 10⁴-node object graphs resident, gen-2 scans
  otherwise dominate and scale with how many contenders the *bench*
  holds — a measurement artefact, not kernel cost.

Set ``BENCH_HOTPATH_QUICK=1`` (the CI perf-smoke job does) to shrink
the kernel and macro portions and drop the n=10⁴ ladder rung; the 10⁴
log-diff gate always runs at full size.
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.experiments.scenarios import build_system
from repro.replica.log import Update, WriteLog
from repro.replica.timestamps import Timestamp
from repro.replica.versions import SummaryVector
from repro.sim.engine import Simulator
from repro.sim.sharded import ShardedSimulator
from repro.topology.brite import internet_like

QUICK = os.environ.get("BENCH_HOTPATH_QUICK", "") not in ("", "0")

KERNEL_EVENTS = 30_000 if QUICK else 150_000
DIFF_LOG_SIZES = (100, 1_000, 10_000)
DIFF_ORIGINS = 32
DIFF_MISSING = 40
MACRO_NODES = 100
SESSIONS_GATE = 2.0
#: (nodes, horizon, [(shards, workers), ...]) rungs of the scale
#: ladder; each horizon sits just past that size's convergence time so
#: a fixed-horizon run covers the whole macro.
SCALE_RUNGS = (
    [(1_000, 6.2, [(2, "serial"), (2, "process")])]
    if QUICK
    else [
        (1_000, 6.2, [(2, "serial"), (2, "process")]),
        (10_000, 7.6, [(2, "serial"), (4, "serial"), (4, "process")]),
    ]
)
#: Interleaving granularity for the ladder's wall-clock measurements.
SCALE_LEGS = 8
#: The rung whose speedup gates apply (the headline 10⁴ macro).
SHARD_WALL_GATE_NODES = 10_000
#: k=4 critical-path (single busy / busy_max) floor at 10⁴ nodes.
SHARD_PROJECTED_GATE = 2.0
#: Serial sharding re-runs the same events through k kernels plus the
#: window protocol in one process; its wall time may trail the single
#: kernel but the overhead must stay bounded.
SHARD_SERIAL_FLOOR = 0.5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


# ---------------------------------------------------------------------------
# Reference implementation: the pre-index WriteLog diff (scan + sort)
# ---------------------------------------------------------------------------


class ReferenceScanLog:
    """``updates_since`` exactly as the log computed it before indexing:
    a full scan of every stored entry plus a sort per session."""

    def __init__(self, updates: List[Update]):
        self._entries = {u.uid: u for u in updates}

    def updates_since(self, peer_summary: SummaryVector) -> List[Update]:
        missing = [
            u for u in self._entries.values() if u.seq > peer_summary.get(u.origin)
        ]
        missing.sort(key=lambda u: (u.origin, u.seq))
        return missing


def _make_updates(total: int, origins: int) -> List[Update]:
    per_origin = total // origins
    updates = []
    for origin in range(origins):
        for seq in range(1, per_origin + 1):
            updates.append(
                Update(
                    origin=origin,
                    seq=seq,
                    timestamp=Timestamp(seq, origin),
                    key=f"k{seq % 7}",
                    value=None,
                    payload_bytes=0,
                )
            )
    return updates


def _ops_per_second(fn, min_seconds: float = 0.2, min_ops: int = 3) -> float:
    """Wall-clock throughput of ``fn`` (at least min_seconds of work)."""
    # Warm-up outside the timed window.
    fn()
    ops = 0
    start = time.perf_counter()
    while True:
        fn()
        ops += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and ops >= min_ops:
            return ops / elapsed


def _bench_log_diff(total: int) -> Dict[str, float]:
    updates = _make_updates(total, DIFF_ORIGINS)
    indexed = WriteLog()
    indexed.add_all(updates)
    reference = ReferenceScanLog(updates)
    # The peer lags DIFF_MISSING writes behind, spread over the origins
    # — the steady-state session shape: almost everything is shared,
    # the transfer is the small new suffix.
    per_origin = total // DIFF_ORIGINS
    lag, remainder = divmod(DIFF_MISSING, DIFF_ORIGINS)
    peer = SummaryVector(
        {
            origin: max(0, per_origin - lag - (1 if origin < remainder else 0))
            for origin in range(DIFF_ORIGINS)
        }
    )
    expected = [u.uid for u in reference.updates_since(peer)]
    got = [u.uid for u in indexed.updates_since(peer)]
    assert got == expected, "indexed diff diverged from reference"
    indexed_ops = _ops_per_second(lambda: indexed.updates_since(peer))
    reference_ops = _ops_per_second(lambda: reference.updates_since(peer))
    return {
        "log_size": total,
        "missing": len(expected),
        "indexed_diffs_per_s": round(indexed_ops, 1),
        "reference_diffs_per_s": round(reference_ops, 1),
        "speedup": round(indexed_ops / reference_ops, 2),
    }


# ---------------------------------------------------------------------------
# Kernel: schedule / cancel / fire mix
# ---------------------------------------------------------------------------


def _bench_kernel(n_events: int) -> Dict[str, float]:
    sim = Simulator(seed=1)
    sim.trace.disable()
    pending: List[object] = []

    def tick() -> None:
        # Each fire schedules two timers and cancels an older one — the
        # session-timeout pattern (every completed session cancels its
        # timeout), which exercises heap compaction.
        pending.append(sim.schedule(5.0, lambda: None))
        if sim.events_executed < n_events:
            sim.schedule(0.001, tick)
        if len(pending) > 1:
            sim.cancel(pending.pop(0))

    for _ in range(100):
        sim.schedule(0.001, tick)
    start = time.perf_counter()
    sim.run(max_events=n_events)
    elapsed = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "seconds": round(elapsed, 4),
        "events_per_s": round(sim.events_executed / elapsed, 1),
        "heap_left": len(sim._heap),
    }


# ---------------------------------------------------------------------------
# Macro: n=100 fast vs weak + tracing cost
# ---------------------------------------------------------------------------


def _run_macro(config, trace_mode: str = "off") -> Dict[str, object]:
    system = ReplicationSystem(
        topology=internet_like(MACRO_NODES, seed=3),
        demand=UniformRandomDemand(seed=3),
        config=config,
        seed=5,
    )
    if trace_mode == "off":
        system.sim.trace.disable()
    system.start()
    update = system.inject_write(node=0)
    start = time.perf_counter()
    done = system.run_until_replicated(update.uid, max_time=80.0)
    elapsed = time.perf_counter() - start
    return {
        "converged_at": None if done is None else round(done, 3),
        "seconds": round(elapsed, 4),
        "events": system.sim.events_executed,
        "events_per_s": round(system.sim.events_executed / elapsed, 1),
        "trace_records": len(system.sim.trace),
    }


# ---------------------------------------------------------------------------
# Macro scale ladder: single kernel vs sharded at n=10^3 / n=10^4
# ---------------------------------------------------------------------------


def _macro_scale_rung(nodes: int, horizon: float, shard_configs) -> Dict[str, object]:
    """One ladder rung: the fast-variant macro at ``nodes``, single vs
    sharded, with exact result-identity checks on every sharded row.

    The single kernel and every sharded contender advance through the
    same horizon in ``SCALE_LEGS`` alternating legs, so each wall-clock
    ratio compares time slices measured seconds apart under the same
    machine load — the same trick that makes the log-diff gate
    load-tolerant. The legs run with the cyclic GC paused (see the
    module docstring). Fixed-horizon runs are *event-identical* across
    kernels, so identity covers apply times, traffic totals and exact
    event counts.
    """
    topology = internet_like(nodes, seed=3)
    config = fast_consistency()

    single = ReplicationSystem(
        topology=topology,
        demand=UniformRandomDemand(seed=3),
        config=config,
        seed=5,
    )
    single.sim.trace.disable()
    single.start()
    single_update = single.inject_write(node=0)

    contenders = []  # [shards, workers, simulator, update, seconds]
    for shards, workers in shard_configs:
        sharded = ShardedSimulator(
            topology,
            UniformRandomDemand(seed=3),
            config,
            seed=5,
            shards=shards,
            workers=workers,
        )
        sharded.start()
        contenders.append([shards, workers, sharded, sharded.inject_write(0), 0.0])

    single_s = 0.0
    single_busy = 0.0
    gc_was_enabled = gc.isenabled()
    try:
        gc.collect()
        gc.disable()
        for leg in range(1, SCALE_LEGS + 1):
            until = horizon * leg / SCALE_LEGS
            start = time.perf_counter()
            cpu_start = time.process_time()
            single.run_until(until)
            single_busy += time.process_time() - cpu_start
            single_s += time.perf_counter() - start
            for entry in contenders:
                start = time.perf_counter()
                entry[2].run_until(until)
                entry[4] += time.perf_counter() - start

        base_apply = single.apply_times(single_update.uid)
        base_traffic = single.traffic()
        base_events = single.sim.events_executed
        converged = max(base_apply.values()) if len(base_apply) == nodes else None

        rows = []
        lookahead = None
        for shards, workers, sharded, update, seconds in contenders:
            busy = [snap["busy_seconds"] for snap in sharded.snapshots()]
            identical = (
                sharded.apply_times(update.uid) == base_apply
                and sharded.traffic() == base_traffic
                and sharded.events_executed == base_events
            )
            lookahead = sharded.lookahead
            rows.append(
                {
                    "shards": shards,
                    "workers": workers,
                    "seconds": round(seconds, 4),
                    "busy_max_s": round(max(busy), 4),
                    "busy_sum_s": round(sum(busy), 4),
                    "identical": identical,
                    "speedup_vs_single": round(single_s / seconds, 2),
                    # CPU-time critical path: what a machine with >= k
                    # idle cores would realise, independent of how many
                    # cores this runner has or how loaded it is.
                    "projected_parallel_speedup": round(
                        single_busy / max(busy), 2
                    ),
                }
            )
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
        for entry in contenders:
            entry[2].close()
    return {
        "nodes": nodes,
        "horizon": horizon,
        "cores": len(os.sched_getaffinity(0)),
        "lookahead": lookahead,
        "single": {
            "seconds": round(single_s, 4),
            "busy_s": round(single_busy, 4),
            "converged_at": None if converged is None else round(converged, 6),
            "events": base_events,
            "events_per_s": round(base_events / single_s, 1),
        },
        "sharded": rows,
    }


def _bench_macro_scale() -> Dict[str, object]:
    return {
        f"macro_n{nodes}": _macro_scale_rung(nodes, horizon, shard_configs)
        for nodes, horizon, shard_configs in SCALE_RUNGS
    }


def _bench_trace_modes() -> Dict[str, object]:
    """Time + peak memory of one sweep-shaped run per trace mode."""
    horizon = 10.0 if QUICK else 20.0
    out: Dict[str, object] = {}
    for mode in ("full", "metrics", "off"):
        tracemalloc.start()
        start = time.perf_counter()
        system = build_system(
            topology="ba", variant="fast", n=50, seed=3, trace=mode
        )
        system.start()
        system.inject_write(list(system.topology.nodes)[0])
        system.run_until(horizon)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out[mode] = {
            "seconds": round(elapsed, 4),
            "peak_kb": round(peak / 1024, 1),
            "trace_records": len(system.sim.trace),
        }
    return out


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------


def test_hotpath_suite(report):
    kernel = _bench_kernel(KERNEL_EVENTS)
    diffs = [_bench_log_diff(size) for size in DIFF_LOG_SIZES]
    macro = {
        "fast": _run_macro(fast_consistency()),
        "weak": _run_macro(weak_consistency()),
    }
    scale = _bench_macro_scale()
    trace_modes = _bench_trace_modes()

    payload = {
        "quick_mode": QUICK,
        "kernel": kernel,
        "log_diff": diffs,
        "sessions_gate": {
            "log_size": DIFF_LOG_SIZES[-1],
            "required_speedup": SESSIONS_GATE,
            "measured_speedup": diffs[-1]["speedup"],
        },
        "macro_n100": macro,
        **scale,
        "trace_modes": trace_modes,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"kernel events/s: {kernel['events_per_s']:.0f} "
        f"({kernel['events']} events, heap left {kernel['heap_left']})",
    ]
    for row in diffs:
        lines.append(
            f"log diff @ {row['log_size']:>6}: indexed "
            f"{row['indexed_diffs_per_s']:.0f}/s vs reference "
            f"{row['reference_diffs_per_s']:.0f}/s ({row['speedup']}x)"
        )
    for variant, row in macro.items():
        lines.append(
            f"macro n={MACRO_NODES} {variant}: {row['events_per_s']:.0f} events/s, "
            f"converged at {row['converged_at']}"
        )
    for key, rung in scale.items():
        lines.append(
            f"{key}: single {rung['single']['seconds']}s wall / "
            f"{rung['single']['busy_s']}s cpu "
            f"({rung['single']['events']} events, cores={rung['cores']})"
        )
        for row in rung["sharded"]:
            lines.append(
                f"  sharded k={row['shards']} {row['workers']}: "
                f"{row['seconds']}s ({row['speedup_vs_single']}x wall, "
                f"busy max {row['busy_max_s']}s -> "
                f"{row['projected_parallel_speedup']}x projected, "
                f"identical={row['identical']})"
            )
    for mode, row in trace_modes.items():
        lines.append(
            f"trace={mode}: {row['seconds']}s, peak {row['peak_kb']} KiB, "
            f"{row['trace_records']} records"
        )
    report.add("hotpath", "\n".join(lines))

    # The tentpole gate: at the largest log the indexed diff must beat
    # the scan-and-sort reference by at least 2x. Both run in-process
    # back to back, so machine load cancels out of the ratio.
    assert diffs[-1]["speedup"] >= SESSIONS_GATE, (
        f"indexed WriteLog only {diffs[-1]['speedup']}x the reference at "
        f"{DIFF_LOG_SIZES[-1]} entries (gate: {SESSIONS_GATE}x)"
    )
    # Sanity: both protocol variants actually converged at n=100.
    assert macro["fast"]["converged_at"] is not None
    assert macro["weak"]["converged_at"] is not None
    # Scale ladder: every sharded row must reproduce the single kernel's
    # results exactly — a fast wrong kernel is worthless.
    for key, rung in scale.items():
        assert rung["single"]["converged_at"] is not None, key
        for row in rung["sharded"]:
            assert row["identical"], (
                f"{key} k={row['shards']} {row['workers']}: sharded results "
                "diverged from the single kernel"
            )
        if rung["nodes"] == SHARD_WALL_GATE_NODES:
            for row in rung["sharded"]:
                # The scale-up claim, in core-count-independent terms:
                # at k=4 the per-shard CPU critical path must sit at
                # least 2x under the single kernel's CPU time.
                if row["shards"] >= 4:
                    assert (
                        row["projected_parallel_speedup"]
                        >= SHARD_PROJECTED_GATE
                    ), (
                        f"k={row['shards']} {row['workers']} critical path "
                        f"only {row['projected_parallel_speedup']}x the "
                        f"single kernel (gate: {SHARD_PROJECTED_GATE}x)"
                    )
                # Wall-clock is gated only where the hardware can pay
                # it: sharding re-runs the same events split across k
                # kernels, so with < k cores there is no win to demand.
                if rung["cores"] >= row["shards"]:
                    assert row["speedup_vs_single"] > 1.0, (
                        f"k={row['shards']} {row['workers']} sharding lost "
                        f"wall-clock with {rung['cores']} cores available"
                    )
                elif row["workers"] == "serial":
                    # Short of cores the serial rows still bound the
                    # window-protocol overhead.
                    assert row["speedup_vs_single"] >= SHARD_SERIAL_FLOOR, (
                        f"k={row['shards']} serial overhead out of bounds: "
                        f"{row['speedup_vs_single']}x vs the single kernel "
                        f"(floor: {SHARD_SERIAL_FLOOR}x)"
                    )
    # The metrics-only default must not store more records than full
    # tracing (it stores strictly fewer on any fast-update workload).
    assert (
        trace_modes["metrics"]["trace_records"]
        < trace_modes["full"]["trace_records"]
    )
    assert trace_modes["off"]["trace_records"] == 0
