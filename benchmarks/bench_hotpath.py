"""Simulation-kernel hot-path benchmark: the events/s trajectory.

Not a paper artefact — this is the perf floor every experiment stands
on. Three measurements, written to ``BENCH_hotpath.json`` at the repo
root so regressions show up across PRs:

* **kernel**: raw engine events/s on a schedule/cancel/fire mix (the
  session-timeout pattern that used to leave cancelled events rotting
  in the heap);
* **log diff**: anti-entropy "what does the partner lack" operations/s
  at log sizes 10², 10³ and 10⁴, for the indexed :class:`WriteLog`
  *and* for a reference implementation with the pre-index semantics
  (full scan + sort per call, kept below). The gate — indexed must be
  ≥ 2× the reference at 10⁴ entries — compares two in-process
  implementations on the same machine in the same run, so it is
  load-tolerant by construction;
* **macro**: an n=100 fast-vs-weak convergence run end to end, plus the
  cost of tracing (full vs metrics-only vs disabled) on the same
  workload — the number that justifies ``build_system``'s
  ``trace="metrics"`` default.

Set ``BENCH_HOTPATH_QUICK=1`` (the CI perf-smoke job does) to shrink
the kernel and macro portions; the 10⁴ gate always runs at full size.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List

from repro.core.system import ReplicationSystem
from repro.core.variants import fast_consistency, weak_consistency
from repro.demand.static import UniformRandomDemand
from repro.experiments.scenarios import build_system
from repro.replica.log import Update, WriteLog
from repro.replica.timestamps import Timestamp
from repro.replica.versions import SummaryVector
from repro.sim.engine import Simulator
from repro.topology.brite import internet_like

QUICK = os.environ.get("BENCH_HOTPATH_QUICK", "") not in ("", "0")

KERNEL_EVENTS = 30_000 if QUICK else 150_000
DIFF_LOG_SIZES = (100, 1_000, 10_000)
DIFF_ORIGINS = 32
DIFF_MISSING = 40
MACRO_NODES = 100
SESSIONS_GATE = 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


# ---------------------------------------------------------------------------
# Reference implementation: the pre-index WriteLog diff (scan + sort)
# ---------------------------------------------------------------------------


class ReferenceScanLog:
    """``updates_since`` exactly as the log computed it before indexing:
    a full scan of every stored entry plus a sort per session."""

    def __init__(self, updates: List[Update]):
        self._entries = {u.uid: u for u in updates}

    def updates_since(self, peer_summary: SummaryVector) -> List[Update]:
        missing = [
            u for u in self._entries.values() if u.seq > peer_summary.get(u.origin)
        ]
        missing.sort(key=lambda u: (u.origin, u.seq))
        return missing


def _make_updates(total: int, origins: int) -> List[Update]:
    per_origin = total // origins
    updates = []
    for origin in range(origins):
        for seq in range(1, per_origin + 1):
            updates.append(
                Update(
                    origin=origin,
                    seq=seq,
                    timestamp=Timestamp(seq, origin),
                    key=f"k{seq % 7}",
                    value=None,
                    payload_bytes=0,
                )
            )
    return updates


def _ops_per_second(fn, min_seconds: float = 0.2, min_ops: int = 3) -> float:
    """Wall-clock throughput of ``fn`` (at least min_seconds of work)."""
    # Warm-up outside the timed window.
    fn()
    ops = 0
    start = time.perf_counter()
    while True:
        fn()
        ops += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and ops >= min_ops:
            return ops / elapsed


def _bench_log_diff(total: int) -> Dict[str, float]:
    updates = _make_updates(total, DIFF_ORIGINS)
    indexed = WriteLog()
    indexed.add_all(updates)
    reference = ReferenceScanLog(updates)
    # The peer lags DIFF_MISSING writes behind, spread over the origins
    # — the steady-state session shape: almost everything is shared,
    # the transfer is the small new suffix.
    per_origin = total // DIFF_ORIGINS
    lag, remainder = divmod(DIFF_MISSING, DIFF_ORIGINS)
    peer = SummaryVector(
        {
            origin: max(0, per_origin - lag - (1 if origin < remainder else 0))
            for origin in range(DIFF_ORIGINS)
        }
    )
    expected = [u.uid for u in reference.updates_since(peer)]
    got = [u.uid for u in indexed.updates_since(peer)]
    assert got == expected, "indexed diff diverged from reference"
    indexed_ops = _ops_per_second(lambda: indexed.updates_since(peer))
    reference_ops = _ops_per_second(lambda: reference.updates_since(peer))
    return {
        "log_size": total,
        "missing": len(expected),
        "indexed_diffs_per_s": round(indexed_ops, 1),
        "reference_diffs_per_s": round(reference_ops, 1),
        "speedup": round(indexed_ops / reference_ops, 2),
    }


# ---------------------------------------------------------------------------
# Kernel: schedule / cancel / fire mix
# ---------------------------------------------------------------------------


def _bench_kernel(n_events: int) -> Dict[str, float]:
    sim = Simulator(seed=1)
    sim.trace.disable()
    pending: List[object] = []

    def tick() -> None:
        # Each fire schedules two timers and cancels an older one — the
        # session-timeout pattern (every completed session cancels its
        # timeout), which exercises heap compaction.
        pending.append(sim.schedule(5.0, lambda: None))
        if sim.events_executed < n_events:
            sim.schedule(0.001, tick)
        if len(pending) > 1:
            sim.cancel(pending.pop(0))

    for _ in range(100):
        sim.schedule(0.001, tick)
    start = time.perf_counter()
    sim.run(max_events=n_events)
    elapsed = time.perf_counter() - start
    return {
        "events": sim.events_executed,
        "seconds": round(elapsed, 4),
        "events_per_s": round(sim.events_executed / elapsed, 1),
        "heap_left": len(sim._heap),
    }


# ---------------------------------------------------------------------------
# Macro: n=100 fast vs weak + tracing cost
# ---------------------------------------------------------------------------


def _run_macro(config, trace_mode: str = "off") -> Dict[str, object]:
    system = ReplicationSystem(
        topology=internet_like(MACRO_NODES, seed=3),
        demand=UniformRandomDemand(seed=3),
        config=config,
        seed=5,
    )
    if trace_mode == "off":
        system.sim.trace.disable()
    system.start()
    update = system.inject_write(node=0)
    start = time.perf_counter()
    done = system.run_until_replicated(update.uid, max_time=80.0)
    elapsed = time.perf_counter() - start
    return {
        "converged_at": None if done is None else round(done, 3),
        "seconds": round(elapsed, 4),
        "events": system.sim.events_executed,
        "events_per_s": round(system.sim.events_executed / elapsed, 1),
        "trace_records": len(system.sim.trace),
    }


def _bench_trace_modes() -> Dict[str, object]:
    """Time + peak memory of one sweep-shaped run per trace mode."""
    horizon = 10.0 if QUICK else 20.0
    out: Dict[str, object] = {}
    for mode in ("full", "metrics", "off"):
        tracemalloc.start()
        start = time.perf_counter()
        system = build_system(
            topology="ba", variant="fast", n=50, seed=3, trace=mode
        )
        system.start()
        system.inject_write(list(system.topology.nodes)[0])
        system.run_until(horizon)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out[mode] = {
            "seconds": round(elapsed, 4),
            "peak_kb": round(peak / 1024, 1),
            "trace_records": len(system.sim.trace),
        }
    return out


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------


def test_hotpath_suite(report):
    kernel = _bench_kernel(KERNEL_EVENTS)
    diffs = [_bench_log_diff(size) for size in DIFF_LOG_SIZES]
    macro = {
        "fast": _run_macro(fast_consistency()),
        "weak": _run_macro(weak_consistency()),
    }
    trace_modes = _bench_trace_modes()

    payload = {
        "quick_mode": QUICK,
        "kernel": kernel,
        "log_diff": diffs,
        "sessions_gate": {
            "log_size": DIFF_LOG_SIZES[-1],
            "required_speedup": SESSIONS_GATE,
            "measured_speedup": diffs[-1]["speedup"],
        },
        "macro_n100": macro,
        "trace_modes": trace_modes,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"kernel events/s: {kernel['events_per_s']:.0f} "
        f"({kernel['events']} events, heap left {kernel['heap_left']})",
    ]
    for row in diffs:
        lines.append(
            f"log diff @ {row['log_size']:>6}: indexed "
            f"{row['indexed_diffs_per_s']:.0f}/s vs reference "
            f"{row['reference_diffs_per_s']:.0f}/s ({row['speedup']}x)"
        )
    for variant, row in macro.items():
        lines.append(
            f"macro n={MACRO_NODES} {variant}: {row['events_per_s']:.0f} events/s, "
            f"converged at {row['converged_at']}"
        )
    for mode, row in trace_modes.items():
        lines.append(
            f"trace={mode}: {row['seconds']}s, peak {row['peak_kb']} KiB, "
            f"{row['trace_records']} records"
        )
    report.add("hotpath", "\n".join(lines))

    # The tentpole gate: at the largest log the indexed diff must beat
    # the scan-and-sort reference by at least 2x. Both run in-process
    # back to back, so machine load cancels out of the ratio.
    assert diffs[-1]["speedup"] >= SESSIONS_GATE, (
        f"indexed WriteLog only {diffs[-1]['speedup']}x the reference at "
        f"{DIFF_LOG_SIZES[-1]} entries (gate: {SESSIONS_GATE}x)"
    )
    # Sanity: both protocol variants actually converged at n=100.
    assert macro["fast"]["converged_at"] is not None
    assert macro["weak"]["converged_at"] is not None
    # The metrics-only default must not store more records than full
    # tracing (it stores strictly fewer on any fast-update workload).
    assert (
        trace_modes["metrics"]["trace_records"]
        < trace_modes["full"]["trace_records"]
    )
    assert trace_modes["off"]["trace_records"] == 0
