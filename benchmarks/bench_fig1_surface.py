"""Figure 1: the hills-and-valleys demand landscape.

Paper reference (§1): plotting replica demand over the plane yields
"an image of hills and valleys in which the valleys ... are the areas of
greater demand". The benchmark builds the two-valley field used by the
§6 experiments, renders it, and checks the landscape has the right
shape (valley floors are the demand maxima; ridges are low).
"""

from __future__ import annotations

from repro.demand.field import SurfaceDemand, Valley
from repro.viz.surface import render_surface

VALLEYS = [
    Valley(center=(25.0, 25.0), peak=100.0, radius=12.0),
    Valley(center=(75.0, 70.0), peak=80.0, radius=10.0),
]


def build_and_render() -> str:
    field = SurfaceDemand(
        positions={0: (0.0, 0.0), 1: (100.0, 100.0)}, valleys=VALLEYS, base=1.0
    )
    return render_surface(field, bounds=(0.0, 0.0, 100.0, 100.0), width=60, height=24)


def test_fig1_demand_surface(benchmark, report):
    art = benchmark.pedantic(build_and_render, rounds=1, iterations=1)
    report.add("fig1", "Fig. 1 — demand landscape (valleys = high demand)\n\n" + art)

    field = SurfaceDemand(
        positions={0: (0.0, 0.0), 1: (100.0, 100.0)}, valleys=VALLEYS, base=1.0
    )
    # Valley floors dominate the landscape.
    assert field.demand_at((25.0, 25.0)) > 100.0
    assert field.demand_at((75.0, 70.0)) > 80.0
    # The ridge between them is near base level.
    assert field.demand_at((50.0, 47.5)) < 30.0
    # Corners are hills.
    assert field.demand_at((0.0, 100.0)) < 3.0
    # The rendering marks the deepest valley with the densest glyph.
    assert "@" in art
