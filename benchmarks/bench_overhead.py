"""§8 overhead claims: "requires few additional bytes in the exchange of
messages between replicas", "does not cause traffic overload".

Weak and fast run on identical topologies/demands/seeds for a fixed
window; the benchmark compares measured bytes and messages.
"""

from __future__ import annotations

from repro.experiments.figures import overhead_experiment
from repro.experiments.tables import format_table

REPS = 8


def test_overhead_few_additional_bytes(benchmark, report):
    result = benchmark.pedantic(
        lambda: overhead_experiment(reps=REPS, seed=1, n=50, horizon=10.0),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["variant", "messages", "bytes", "fast bytes", "fast share", "t(top 10%)"],
        result.rows(),
        title=f"§8 — traffic over a fixed 10-session window (reps={REPS})",
    )
    report.add("overhead", table)

    weak = result.rows_by_variant["weak"]
    fast = result.rows_by_variant["fast"]
    # Few additional bytes: the fast machinery adds a small fraction.
    assert fast["bytes"] < weak["bytes"] * 1.3
    assert fast["fast_share"] < 0.2
    # No traffic overload: message count stays in the same ballpark.
    assert fast["messages"] < weak["messages"] * 1.5
    # And it buys a large latency win for high-demand replicas.
    assert fast["time_top"] < 0.75 * weak["time_top"]
