"""Serial vs parallel execution of one declarative experiment plan.

The repetition grid of every paper experiment is embarrassingly
parallel: scenarios are picklable (registry keys + derived seeds) and
every trial is deterministic given its seeds, so a process pool must
return results *bit-identical* to the serial loop — only wall-clock may
differ. This benchmark asserts the identity and records both timings in
``BENCH_pipeline.json`` at the repo root so the perf trajectory is
tracked across PRs.

Note: the recorded speedup is honest hardware-dependent data — on a
single-core CI runner the pool's fork/IPC overhead can make it < 1.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.plan import ExperimentPlan

REPS = 12
NODES = 30
WORKERS = 2

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _plan() -> ExperimentPlan:
    return ExperimentPlan(
        name="pipeline-bench",
        topology="ba",
        demand="uniform",
        variants=("weak", "ordered", "fast"),
        n=NODES,
        reps=REPS,
        seed=7,
    )


def test_pipeline_parallel_bit_identical(benchmark, report):
    plan = _plan()

    t0 = time.perf_counter()
    serial_result = plan.run(SerialBackend())
    t_serial = time.perf_counter() - t0

    # Backends now keep their pool alive across runs; close it here so
    # the benchmark process does not carry idle workers around.
    with ProcessPoolBackend(max_workers=WORKERS) as parallel_backend:
        t0 = time.perf_counter()
        parallel_result = benchmark.pedantic(
            lambda: plan.run(parallel_backend), rounds=1, iterations=1
        )
        t_parallel = time.perf_counter() - t0

    # The acceptance bar: a process pool is an implementation detail,
    # not a source of noise. Compare the full serialised payloads.
    serial_dict = serial_result.to_dict()
    parallel_dict = parallel_result.to_dict()
    assert serial_dict["series"] == parallel_dict["series"]
    assert serial_dict["params"] == parallel_dict["params"]

    cpu_count = os.cpu_count() or 1
    speedup = round(t_serial / t_parallel, 3) if t_parallel else None
    payload = {
        "experiment": plan.name,
        "trials": plan.total_trials(),
        "nodes": NODES,
        "reps": REPS,
        "workers": WORKERS,
        "cpu_count": cpu_count,
        "serial_seconds": round(t_serial, 4),
        "parallel_seconds": round(t_parallel, 4),
        "speedup": speedup,
        "speedup_asserted": cpu_count >= 2,
        "bit_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # On a single-core runner the pool's fork/IPC overhead legitimately
    # makes speedup < 1 — recorded as honest data, not a failure. With
    # real parallel hardware the gate only catches pathology (a pool
    # markedly slower than serial, e.g. pickling regressions): the
    # workload is sub-second, so scheduler noise on contended CI runners
    # makes a tight >1.0 bar flaky. The honest speedup number is always
    # recorded in BENCH_pipeline.json for trend tracking.
    if cpu_count >= 2:
        assert speedup is not None and speedup > 0.75, (
            f"process pool pathologically slower than serial on "
            f"{cpu_count} cores: speedup={speedup}"
        )

    lines = [f"{key}: {value}" for key, value in payload.items()]
    report.add("pipeline-parallel", "\n".join(lines))
