"""§1 motivation: weak consistency "withstand[s] segmentation".

The network splits in two for the first five session times. Anti-entropy
(weak or fast) converges within the writer's side, finishes the far side
shortly after the partition heals, and never fails; a synchronous
(strong-consistency) write attempted during the partition can never
commit — measured, not asserted from the paper's text.
"""

from __future__ import annotations

from repro.experiments.figures import partition_experiment
from repro.experiments.tables import format_kv, format_table

REPS = 12


def test_partition_tolerance(benchmark, report):
    result = benchmark.pedantic(
        lambda: partition_experiment(reps=REPS, seed=1), rounds=1, iterations=1
    )

    table = format_table(
        ["variant", "writer side consistent", "all replicas", "after heal"],
        result.rows(),
        title=f"§1 — convergence across a partition healing at "
        f"t={result.heal_time:.0f} (reps={REPS})",
    )
    notes = format_kv(
        "strong consistency",
        [
            (
                "commit rate for writes during the partition",
                f"{100 * result.strong_commit_rate_during_partition:.0f}%",
            )
        ],
    )
    report.add("partition", table + "\n" + notes)

    rows = result.rows_by_variant
    for variant in ("weak", "fast"):
        # Eventual convergence despite segmentation.
        assert rows[variant]["time_all"] > result.heal_time
        # The far side is caught up within a normal convergence time
        # after healing (no lasting damage).
        assert rows[variant]["after_heal"] < 8.0
    # Synchronous replication cannot make progress while partitioned.
    assert result.strong_commit_rate_during_partition == 0.0
