"""Figure 3: requests satisfied with consistent content vs sessions.

Paper reference (§2): on the five-replica slope (A=4, B=6, C=3, D=8,
E=7; B holds the update) the worst visit order serves 9, 13, 20, 28
cumulative requests per session and the optimal order 14, 21, 25, 28 —
and fast consistency "works even better than the optimal case".
"""

from __future__ import annotations

from repro.experiments.figures import PAPER, figure3
from repro.experiments.tables import format_table

REPS = 50


def test_fig3_request_satisfaction(benchmark, report):
    result = benchmark.pedantic(
        lambda: figure3(reps=REPS, seed=1), rounds=1, iterations=1
    )

    table = format_table(
        ["session", "worst case", "optimal case", "fast consistency (sim)"],
        result.rows(),
        title=f"Fig. 3 — requests satisfied with consistent content (reps={REPS})",
    )
    report.add("fig3", table)

    assert result.worst == PAPER["fig3_worst"]
    assert result.optimal == PAPER["fig3_optimal"]
    # Fast consistency beats the optimal case in the first session
    # (the push to D happens at link speed, before any session).
    assert result.fast_simulated[0] > result.optimal[0]
    # And saturates total demand (28 requests/unit) by the end.
    assert result.fast_simulated[-1] > 27.0
    # Never below the analytic optimal at any step.
    for fast, optimal in zip(result.fast_simulated, result.optimal):
        assert fast >= optimal - 0.5
